"""The simulated replay engine: Figure 4's client system on the testbed.

``SimReplayEngine`` deploys a controller and N client instances (each a
host running one distributor and several querier processes) on a
simulated network, then replays a trace toward a server with the §2.6
timing discipline:

* the controller broadcasts a time-sync message at the first record,
* each record is dispatched sticky-by-source down the tree,
* the querier schedules a timer at ΔT = Δt̄ − Δt (or sends immediately
  when input processing has fallen behind),
* optional calibrated timer jitter stands in for the OS noise the live
  path measures for real (see :mod:`repro.replay.timing`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..netsim import EventLoop, Host, LatencyModel, Network
from ..perf import PerfCounters
from ..telemetry import Telemetry
from ..trace import Trace
from .distributor import Controller, Distributor, DistributionStats
from .querier import QuerierConfig, SimQuerier
from .result import ReplayResult, SentQuery
from .timing import TimerJitterModel, TimingController


@dataclass
class ReplayConfig:
    """Knobs of the distributed query system."""

    client_instances: int = 2
    queriers_per_instance: int = 6
    same_source_affinity: bool = True    # ablation: sticky routing off
    track_timing: bool = True            # False = replay as fast as possible
    input_window: int = 1000
    input_delay_per_record: float = 2e-6
    jitter: Optional[TimerJitterModel] = None
    querier: QuerierConfig = field(default_factory=QuerierConfig)
    client_address_base: str = "10.250.0."
    start_delay: float = 0.5             # settle time before first query
    fast_replay_rate: Optional[float] = None  # cap for track_timing=False
    # Group records landing on the same (querier, instant) into one
    # batched send (on by default; a no-op when send times never
    # coincide).  ``batch_window`` additionally quantizes fast-replay
    # send times up to the next multiple of the window so bursts *do*
    # coincide — an explicit opt-in, since it changes send timestamps.
    batch_sends: bool = True
    batch_window: Optional[float] = None
    # §2.5: "at lower query rates, we could manipulate a live query
    # stream in near real time" — a QueryMutator applied per record on
    # the dispatch path rather than ahead of time.
    live_mutator: Optional[object] = None


class SimReplayEngine:
    """Builds the client tree on a network and replays traces."""

    def __init__(self, network: Network,
                 config: Optional[ReplayConfig] = None,
                 perf: Optional[PerfCounters] = None,
                 telemetry: Optional[Telemetry] = None):
        self.network = network
        self.loop: EventLoop = network.loop
        self.config = config if config is not None else ReplayConfig()
        self.perf = perf if perf is not None else PerfCounters()
        self.telemetry = telemetry
        self.stats = DistributionStats()
        self.client_hosts: List[Host] = []
        self.queriers: List[SimQuerier] = []
        self.result = ReplayResult()
        self._build_clients()
        if telemetry is not None:
            telemetry.attach_loop(self.loop)
            telemetry.attach_network(network)
            if telemetry.per_query:
                for querier in self.queriers:
                    querier.telemetry = telemetry
            telemetry.add_probe(
                "replay.queries_sent", lambda: len(self.result.sent))
            telemetry.add_probe(
                "replay.answered",
                lambda: sum(1 for e in self.result.sent
                            if e.answered_at is not None))
            telemetry.add_probe(
                "loop.events_processed",
                lambda: self.loop.events_processed)

    def _build_clients(self) -> None:
        distributors = []
        for instance in range(self.config.client_instances):
            address = f"{self.config.client_address_base}{instance + 1}"
            host = self.network.add_host(f"client-{instance + 1}", address)
            self.client_hosts.append(host)
            instance_queriers = [
                SimQuerier(instance * self.config.queriers_per_instance + q,
                           host, self.result, self.config.querier)
                for q in range(self.config.queriers_per_instance)
            ]
            self.queriers.extend(instance_queriers)
            distributors.append(
                Distributor(instance, instance_queriers,
                            sticky=self.config.same_source_affinity,
                            stats=self.stats))
        self.controller = Controller(
            distributors, sticky=self.config.same_source_affinity,
            input_window=self.config.input_window,
            input_delay_per_record=self.config.input_delay_per_record)

    # -- replay ---------------------------------------------------------

    def schedule_trace(self, trace: Trace) -> ReplayResult:
        """Schedule every record; caller then runs the event loop."""
        if not trace.records:
            return self.result
        with self.perf.timed("replay.schedule"):
            scheduler = _StreamScheduler(self, trace.records[0].timestamp)
            for record in trace.records:
                scheduler.schedule(record)
            scheduler.flush()
            self.perf.incr("replay.queries_scheduled", scheduler.scheduled)
        return self.result

    def _group_entry(self, querier: SimQuerier, send_at: float, items: List):
        """One scheduler entry for a run of same-(querier, time) records."""
        if len(items) == 1:
            index, record, at = items[0]
            return (send_at, self._dispatch_send,
                    (querier, index, record, at))
        return (send_at, self._dispatch_send_batch, (querier, items))

    # -- failover ---------------------------------------------------------

    def _dispatch_send_batch(self, querier: SimQuerier, items: List) -> None:
        """Batched counterpart of :meth:`_dispatch_send`.

        The crash-failover case degrades to per-record dispatch; the
        normal case hands the whole run to the querier in one call.
        """
        if querier.host.down:
            for index, record, send_at in items:
                self._dispatch_send(querier, index, record, send_at)
            return
        querier.send_batch(items)

    def _dispatch_send(self, querier: SimQuerier, index: int, record,
                       send_at: float) -> None:
        """Send via ``querier`` unless its host crashed; then fail over.

        With no fault injection this is a plain pass-through at the same
        sim time, so fault-free replays are unchanged.
        """
        if querier.host.down:
            replacement = self._reassign(querier, record.src)
            if replacement is None:
                self.result.send_failures += 1
                return
            self.result.reassigned_queries += 1
            querier = replacement
        querier.send(index, record, send_at)

    def _reassign(self, dead: SimQuerier, source: str) \
            -> Optional[SimQuerier]:
        """Route ``source`` to a live querier, evicting crashed ones."""
        self._evict(dead)
        for _ in range(len(self.queriers) + 1):
            if not self.controller.assigner.entities:
                return None
            candidate = self.controller.dispatch(source)
            if not candidate.host.down:
                return candidate
            self._evict(candidate)
        return None

    def _evict(self, dead: SimQuerier) -> None:
        """Remove a crashed querier from the distribution tree."""
        for distributor in self.controller.distributors:
            if distributor.retire(dead):
                if not distributor.queriers:
                    self.controller.assigner.remove(distributor)
                return

    def replay(self, trace: Trace, extra_time: float = 10.0) -> ReplayResult:
        """Schedule and run to completion (plus settle time)."""
        result = self.schedule_trace(trace)
        if trace.records:
            end = (self.loop.now + self.config.start_delay
                   + trace.duration() + extra_time)
            events_before = self.loop.events_processed
            with self.perf.timed("replay.run"):
                self.loop.run_until(end)
            self.perf.incr("replay.events_processed",
                           self.loop.events_processed - events_before)
        self._canonicalize()
        return result

    def _canonicalize(self) -> None:
        """Present ``result.sent`` in trace order.

        Per-querier batching coalesces same-instant sends, so append
        order within a tied instant depends on how records were chunked
        into the scheduler.  Sorting by trace index makes the result
        independent of that artifact — the streamed and in-memory paths
        then produce literally identical results.
        """
        if not self.result.aggregate:
            self.result.sent.sort(key=lambda entry: entry.index)

    def replay_stream(self, records, extra_time: float = 10.0,
                      chunk_records: int = 4096) -> ReplayResult:
        """Replay a record *stream* with bounded scheduling memory.

        :meth:`replay` schedules the whole trace before running — fine
        at 10⁴ queries, impossible at 10⁸ (the event queue would hold
        every send).  This path interleaves: schedule ``chunk_records``
        records, run the loop up to the next record's earliest possible
        send time, schedule the next chunk, and so on.  The event queue
        holds one chunk of pending sends plus in-flight responses,
        independent of stream length.

        Timestamps must be nondecreasing (every streaming source here
        — generators, shard files, mutated streams — guarantees it), so
        a chunk's sends never land before the barrier the loop already
        ran to.  Scheduling and accounting go through the same
        machinery as :meth:`replay`; replaying the same records through
        either path yields the same :class:`ReplayResult`.
        """
        iterator = iter(records)
        pending = next(iterator, None)
        if pending is None:
            return self.result
        events_before = self.loop.events_processed
        scheduler = _StreamScheduler(self, pending.timestamp)
        first_ts = pending.timestamp
        last_ts = first_ts
        while pending is not None:
            with self.perf.timed("replay.schedule"):
                count = 0
                while pending is not None and count < chunk_records:
                    last_ts = pending.timestamp
                    scheduler.schedule(pending)
                    count += 1
                    pending = next(iterator, None)
                scheduler.flush()
            if pending is not None:
                barrier = scheduler.send_floor(pending)
                if barrier > self.loop.now:
                    with self.perf.timed("replay.run"):
                        self.loop.run_until(barrier)
        self.perf.incr("replay.queries_scheduled", scheduler.scheduled)
        end = scheduler.start_clock + (last_ts - first_ts) + extra_time
        with self.perf.timed("replay.run"):
            self.loop.run_until(max(end, self.loop.now))
        self.perf.incr("replay.events_processed",
                       self.loop.events_processed - events_before)
        self._canonicalize()
        return self.result

    # -- introspection ------------------------------------------------------

    def total_sockets(self) -> int:
        return sum(q.socket_count() for q in self.queriers)

    def open_connections(self) -> int:
        return sum(q.open_connections() for q in self.queriers)


class _StreamScheduler:
    """Incremental record scheduling shared by trace and stream replay.

    Owns the cross-record state of the §2.6 timing discipline — the
    time-sync anchor, the running input index, and the same-instant
    batching groups — so records can arrive one at a time.  Records due
    at the same instant coalesce per querier into one batched-send
    event.  Send times are nondecreasing, so one open instant
    (``group_at``) suffices; within it each querier keeps its items in
    record order, and groups close in first-seen querier order when the
    instant advances (or at a :meth:`flush`, which may split a group
    that straddles a stream chunk boundary — per-record semantics are
    unchanged, the batch merely leaves in two calls).
    """

    def __init__(self, engine: SimReplayEngine, trace_start: float):
        self.engine = engine
        config = engine.config
        self.start_clock = engine.loop.now + config.start_delay
        self.timing = TimingController()
        self.timing.synchronize(trace_start, self.start_clock)
        engine.controller.broadcast_time_sync()
        engine.result.start_clock = self.start_clock
        engine.result.trace_start = trace_start
        self.jitter = config.jitter
        self.fast_gap = (1.0 / config.fast_replay_rate
                         if config.fast_replay_rate else 0.0)
        self.window = (config.batch_window
                       if not config.track_timing else None)
        self.index = 0
        self.scheduled = 0
        self.batch: List = []
        self.group_at: Optional[float] = None
        self.groups: dict = {}

    def send_floor(self, record) -> float:
        """A lower bound on ``record``'s eventual send time.

        Used as the run barrier between stream chunks: the loop may
        process events up to this time before the record is scheduled,
        because its send lands at or after it (availability and the
        ``loop.now`` clamp only push sends later; negative timer jitter
        is clamped to the barrier by ``call_at``).
        """
        if self.engine.config.track_timing:
            return self.timing.target_clock_time(record.timestamp)
        return self.start_clock + self.index * self.fast_gap

    def schedule(self, record) -> None:
        engine = self.engine
        config = engine.config
        index = self.index
        self.index += 1
        if config.live_mutator is not None:
            record = config.live_mutator.apply_record(record)
            if record is None:
                return
        querier = engine.controller.dispatch(record.src)
        available = engine.controller.availability_time(index,
                                                        self.start_clock)
        if config.track_timing:
            target = self.timing.target_clock_time(record.timestamp)
            if self.jitter is not None:
                target += self.jitter.draw()
            send_at = max(available, target, engine.loop.now)
        else:
            send_at = max(available,
                          self.start_clock + index * self.fast_gap)
            if self.window:
                # Quantize *up*: never earlier than unquantized.
                send_at = math.ceil(send_at / self.window) * self.window
        self.scheduled += 1
        if not config.batch_sends:
            self.batch.append((send_at, engine._dispatch_send,
                               (querier, index, record, send_at)))
            return
        if send_at != self.group_at:
            self._close_groups()
            self.group_at = send_at
        entry = self.groups.get(id(querier))
        if entry is None:
            self.groups[id(querier)] = (querier,
                                        [(index, record, send_at)])
        else:
            entry[1].append((index, record, send_at))

    def _close_groups(self) -> None:
        for grouped, items in self.groups.values():
            self.batch.append(self.engine._group_entry(grouped,
                                                       self.group_at, items))
        self.groups.clear()

    def flush(self) -> None:
        """Hand everything scheduled so far to the event loop."""
        self._close_groups()
        self.group_at = None
        if self.batch:
            self.engine.loop.call_at_many(self.batch)
            self.batch = []
