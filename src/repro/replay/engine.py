"""The simulated replay engine: Figure 4's client system on the testbed.

``SimReplayEngine`` deploys a controller and N client instances (each a
host running one distributor and several querier processes) on a
simulated network, then replays a trace toward a server with the §2.6
timing discipline:

* the controller broadcasts a time-sync message at the first record,
* each record is dispatched sticky-by-source down the tree,
* the querier schedules a timer at ΔT = Δt̄ − Δt (or sends immediately
  when input processing has fallen behind),
* optional calibrated timer jitter stands in for the OS noise the live
  path measures for real (see :mod:`repro.replay.timing`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..netsim import EventLoop, Host, LatencyModel, Network
from ..perf import PerfCounters
from ..telemetry import Telemetry
from ..trace import Trace
from .distributor import Controller, Distributor, DistributionStats
from .querier import QuerierConfig, SimQuerier
from .result import ReplayResult, SentQuery
from .timing import TimerJitterModel, TimingController


@dataclass
class ReplayConfig:
    """Knobs of the distributed query system."""

    client_instances: int = 2
    queriers_per_instance: int = 6
    same_source_affinity: bool = True    # ablation: sticky routing off
    track_timing: bool = True            # False = replay as fast as possible
    input_window: int = 1000
    input_delay_per_record: float = 2e-6
    jitter: Optional[TimerJitterModel] = None
    querier: QuerierConfig = field(default_factory=QuerierConfig)
    client_address_base: str = "10.250.0."
    start_delay: float = 0.5             # settle time before first query
    fast_replay_rate: Optional[float] = None  # cap for track_timing=False
    # Group records landing on the same (querier, instant) into one
    # batched send (on by default; a no-op when send times never
    # coincide).  ``batch_window`` additionally quantizes fast-replay
    # send times up to the next multiple of the window so bursts *do*
    # coincide — an explicit opt-in, since it changes send timestamps.
    batch_sends: bool = True
    batch_window: Optional[float] = None
    # §2.5: "at lower query rates, we could manipulate a live query
    # stream in near real time" — a QueryMutator applied per record on
    # the dispatch path rather than ahead of time.
    live_mutator: Optional[object] = None


class SimReplayEngine:
    """Builds the client tree on a network and replays traces."""

    def __init__(self, network: Network,
                 config: Optional[ReplayConfig] = None,
                 perf: Optional[PerfCounters] = None,
                 telemetry: Optional[Telemetry] = None):
        self.network = network
        self.loop: EventLoop = network.loop
        self.config = config if config is not None else ReplayConfig()
        self.perf = perf if perf is not None else PerfCounters()
        self.telemetry = telemetry
        self.stats = DistributionStats()
        self.client_hosts: List[Host] = []
        self.queriers: List[SimQuerier] = []
        self.result = ReplayResult()
        self._build_clients()
        if telemetry is not None:
            telemetry.attach_loop(self.loop)
            telemetry.attach_network(network)
            if telemetry.per_query:
                for querier in self.queriers:
                    querier.telemetry = telemetry
            telemetry.add_probe(
                "replay.queries_sent", lambda: len(self.result.sent))
            telemetry.add_probe(
                "replay.answered",
                lambda: sum(1 for e in self.result.sent
                            if e.answered_at is not None))
            telemetry.add_probe(
                "loop.events_processed",
                lambda: self.loop.events_processed)

    def _build_clients(self) -> None:
        distributors = []
        for instance in range(self.config.client_instances):
            address = f"{self.config.client_address_base}{instance + 1}"
            host = self.network.add_host(f"client-{instance + 1}", address)
            self.client_hosts.append(host)
            instance_queriers = [
                SimQuerier(instance * self.config.queriers_per_instance + q,
                           host, self.result, self.config.querier)
                for q in range(self.config.queriers_per_instance)
            ]
            self.queriers.extend(instance_queriers)
            distributors.append(
                Distributor(instance, instance_queriers,
                            sticky=self.config.same_source_affinity,
                            stats=self.stats))
        self.controller = Controller(
            distributors, sticky=self.config.same_source_affinity,
            input_window=self.config.input_window,
            input_delay_per_record=self.config.input_delay_per_record)

    # -- replay ---------------------------------------------------------

    def schedule_trace(self, trace: Trace) -> ReplayResult:
        """Schedule every record; caller then runs the event loop."""
        if not trace.records:
            return self.result
        start_clock = self.loop.now + self.config.start_delay
        trace_start = trace.records[0].timestamp
        timing = TimingController()
        timing.synchronize(trace_start, start_clock)
        self.controller.broadcast_time_sync()
        self.result.start_clock = start_clock
        self.result.trace_start = trace_start

        jitter = self.config.jitter
        fast_gap = (1.0 / self.config.fast_replay_rate
                    if self.config.fast_replay_rate else 0.0)

        window = (self.config.batch_window
                  if not self.config.track_timing else None)
        with self.perf.timed("replay.schedule"):
            scheduled = 0
            batch = []
            # Records due at the same instant coalesce per querier into
            # one batched-send event.  Send times are nondecreasing, so
            # one open instant (``group_at``) suffices; within it each
            # querier keeps its items in record order, and groups flush
            # in first-seen querier order when the instant advances.
            group_at = None
            groups: dict = {}
            for index, record in enumerate(trace.records):
                if self.config.live_mutator is not None:
                    record = self.config.live_mutator.apply_record(record)
                    if record is None:
                        continue
                querier = self.controller.dispatch(record.src)
                available = self.controller.availability_time(index,
                                                              start_clock)
                if self.config.track_timing:
                    target = timing.target_clock_time(record.timestamp)
                    if jitter is not None:
                        target += jitter.draw()
                    send_at = max(available, target, self.loop.now)
                else:
                    send_at = max(available, start_clock + index * fast_gap)
                    if window:
                        # Quantize *up*: never earlier than unquantized.
                        send_at = math.ceil(send_at / window) * window
                scheduled += 1
                if not self.config.batch_sends:
                    batch.append((send_at, self._dispatch_send,
                                  (querier, index, record, send_at)))
                    continue
                if send_at != group_at:
                    for grouped, items in groups.values():
                        batch.append(self._group_entry(grouped, group_at,
                                                       items))
                    groups.clear()
                    group_at = send_at
                entry = groups.get(id(querier))
                if entry is None:
                    groups[id(querier)] = (querier,
                                           [(index, record, send_at)])
                else:
                    entry[1].append((index, record, send_at))
            for grouped, items in groups.values():
                batch.append(self._group_entry(grouped, group_at, items))
            self.loop.call_at_many(batch)
            self.perf.incr("replay.queries_scheduled", scheduled)
        return self.result

    def _group_entry(self, querier: SimQuerier, send_at: float, items: List):
        """One scheduler entry for a run of same-(querier, time) records."""
        if len(items) == 1:
            index, record, at = items[0]
            return (send_at, self._dispatch_send,
                    (querier, index, record, at))
        return (send_at, self._dispatch_send_batch, (querier, items))

    # -- failover ---------------------------------------------------------

    def _dispatch_send_batch(self, querier: SimQuerier, items: List) -> None:
        """Batched counterpart of :meth:`_dispatch_send`.

        The crash-failover case degrades to per-record dispatch; the
        normal case hands the whole run to the querier in one call.
        """
        if querier.host.down:
            for index, record, send_at in items:
                self._dispatch_send(querier, index, record, send_at)
            return
        querier.send_batch(items)

    def _dispatch_send(self, querier: SimQuerier, index: int, record,
                       send_at: float) -> None:
        """Send via ``querier`` unless its host crashed; then fail over.

        With no fault injection this is a plain pass-through at the same
        sim time, so fault-free replays are unchanged.
        """
        if querier.host.down:
            replacement = self._reassign(querier, record.src)
            if replacement is None:
                self.result.send_failures += 1
                return
            self.result.reassigned_queries += 1
            querier = replacement
        querier.send(index, record, send_at)

    def _reassign(self, dead: SimQuerier, source: str) \
            -> Optional[SimQuerier]:
        """Route ``source`` to a live querier, evicting crashed ones."""
        self._evict(dead)
        for _ in range(len(self.queriers) + 1):
            if not self.controller.assigner.entities:
                return None
            candidate = self.controller.dispatch(source)
            if not candidate.host.down:
                return candidate
            self._evict(candidate)
        return None

    def _evict(self, dead: SimQuerier) -> None:
        """Remove a crashed querier from the distribution tree."""
        for distributor in self.controller.distributors:
            if distributor.retire(dead):
                if not distributor.queriers:
                    self.controller.assigner.remove(distributor)
                return

    def replay(self, trace: Trace, extra_time: float = 10.0) -> ReplayResult:
        """Schedule and run to completion (plus settle time)."""
        result = self.schedule_trace(trace)
        if trace.records:
            end = (self.loop.now + self.config.start_delay
                   + trace.duration() + extra_time)
            events_before = self.loop.events_processed
            with self.perf.timed("replay.run"):
                self.loop.run_until(end)
            self.perf.incr("replay.events_processed",
                           self.loop.events_processed - events_before)
        return result

    # -- introspection ------------------------------------------------------

    def total_sockets(self) -> int:
        return sum(q.socket_count() for q in self.queriers)

    def open_connections(self) -> int:
        return sum(q.open_connections() for q in self.queriers)
