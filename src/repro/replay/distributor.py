"""Query distribution: controller → distributors → queriers (§2.6, §3).

The controller runs a Reader (input, pre-loading a window of queries)
and a Postman (distribution).  Distributors fan queries out to querier
processes.  Every tier keeps a sticky source-address map so queries from
the same original source always land on the same downstream entity —
the invariant connection reuse depends on: "each distributor either
picks the next entity based on a recent query source address in record,
or selects randomly otherwise".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class StickyAssigner(Generic[T]):
    """Sticky source→entity assignment with round-robin for new sources."""

    def __init__(self, entities: Sequence[T],
                 sticky: bool = True, allow_empty: bool = False):
        if not entities and not allow_empty:
            raise ValueError("need at least one entity")
        self.entities = list(entities)
        self.sticky = sticky
        self._assignments: Dict[str, T] = {}
        self._next = 0

    def assign(self, source: str) -> T:
        if self.sticky:
            entity = self._assignments.get(source)
            if entity is not None:
                return entity
        entity = self.entities[self._next % len(self.entities)]
        self._next += 1
        if self.sticky:
            self._assignments[source] = entity
        return entity

    def remove(self, entity: T) -> None:
        """Forget a dead entity: sticky routes to it are re-assigned."""
        self.entities = [e for e in self.entities if e is not entity]
        self._assignments = {
            src: ent for src, ent in self._assignments.items()
            if ent is not entity}

    def add(self, entity: T) -> None:
        """Bring a (re)spawned entity into rotation.

        Only *new* sources land on it at first; sources sticky to live
        entities stay put, preserving connection reuse, while sources
        orphaned by an earlier :meth:`remove` rebalance onto it.
        """
        if not any(existing is entity for existing in self.entities):
            self.entities.append(entity)

    def assignment_count(self) -> int:
        return len(self._assignments)


@dataclass
class DistributionStats:
    """Message counts across the distribution tree (for ablations)."""

    controller_to_distributor: int = 0
    distributor_to_querier: int = 0
    time_sync_broadcasts: int = 0


class Distributor:
    """One distributor: routes records to its querier processes."""

    def __init__(self, distributor_id: int, queriers: Sequence,
                 sticky: bool = True,
                 stats: Optional[DistributionStats] = None):
        self.distributor_id = distributor_id
        self.queriers = list(queriers)
        self.assigner = StickyAssigner(self.queriers, sticky=sticky)
        self.stats = stats if stats is not None else DistributionStats()
        self.records_routed = 0

    def route(self, source: str):
        """Pick the querier for a record from ``source``."""
        self.records_routed += 1
        self.stats.distributor_to_querier += 1
        return self.assigner.assign(source)

    def retire(self, querier) -> bool:
        """Drop a dead/stalled querier from this distributor's routing.

        Sticky sources assigned to it are forgotten so the next record
        from each fails over to a live querier.  Returns True when the
        querier belonged to this distributor.
        """
        if querier not in self.queriers:
            return False
        self.queriers.remove(querier)
        self.assigner.remove(querier)
        return True


class Controller:
    """Reader + Postman: feeds distributors, broadcasting time sync.

    The Reader "pre-loads a window of queries to avoid falling behind
    real time" (§3); the window size and the per-record processing cost
    are modelled explicitly so the input-delay ablation can vary them.
    """

    def __init__(self, distributors: Sequence[Distributor],
                 sticky: bool = True, input_window: int = 1000,
                 input_delay_per_record: float = 2e-6):
        self.distributors = list(distributors)
        self.assigner = StickyAssigner(self.distributors, sticky=sticky)
        self.input_window = input_window
        self.input_delay_per_record = input_delay_per_record
        self.stats = (self.distributors[0].stats if self.distributors
                      else DistributionStats())
        self.records_read = 0

    def broadcast_time_sync(self) -> None:
        self.stats.time_sync_broadcasts += len(self.distributors)

    def availability_time(self, index: int, start_clock: float) -> float:
        """When record ``index`` emerges from the input pipeline.

        Records inside the pre-load window are available immediately at
        start; later ones pay the cumulative input-processing cost.
        """
        if index < self.input_window:
            return start_clock
        return start_clock + (index - self.input_window + 1) \
            * self.input_delay_per_record

    def dispatch(self, source: str):
        """Route one record: controller tier, then distributor tier."""
        self.records_read += 1
        self.stats.controller_to_distributor += 1
        distributor = self.assigner.assign(source)
        return distributor.route(source)
