"""repro — a full reproduction of LDplayer (Zhu & Heidemann):
trace-driven DNS experimentation at scale.

Subpackages
-----------

``repro.dns``
    From-scratch DNS: wire codec, records, zones, DNSSEC synthesis.
``repro.netsim``
    Discrete-event network simulator: UDP/TCP/TLS, TUN + netfilter,
    calibrated server resource models (the testbed substitute).
``repro.server``
    Authoritative engine with split-horizon views, recursive resolver,
    transport hosting.
``repro.proxy``
    The recursive/authoritative address-rewriting proxies (Figure 2).
``repro.hierarchy``
    Meta-DNS-server hierarchy emulation and the simulated Internet.
``repro.trace``
    Trace formats (pcap/text/binary), the query mutator, synthetic
    workloads, statistics.
``repro.zonegen``
    Zone construction from captured traffic (§2.3).
``repro.replay``
    The distributed query engine: controller → distributors → queriers,
    timing discipline, live loopback replay.
``repro.telemetry``
    Observability: per-query lifecycle tracing, histogram metrics,
    periodic load sampling, Chrome-trace/JSON/CSV exporters.
``repro.experiments``
    One harness per paper table/figure; the ``ldplayer`` CLI.

Quickstart
----------

>>> from repro.netsim import EventLoop, Network
>>> from repro.hierarchy import HierarchyEmulation
>>> from repro.trace import make_hierarchy_zones
>>> loop = EventLoop(); net = Network(loop)
>>> emu = HierarchyEmulation(net, make_hierarchy_zones())
>>> emu.view_count() > 1
True
"""

__version__ = "1.0.0"

from . import dns, experiments, hierarchy, netsim, proxy, replay, server, \
    telemetry, trace, zonegen

__all__ = ["dns", "experiments", "hierarchy", "netsim", "proxy", "replay",
           "server", "telemetry", "trace", "zonegen", "__version__"]
