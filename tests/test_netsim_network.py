"""Tests for hosts, links, netfilter diversion, TUN devices, meters."""

import pytest

from repro.netsim import (EventLoop, FilterRule, LatencyModel, Network,
                          NetworkError, UdpSegment, make_udp_packet)


@pytest.fixture
def net():
    loop = EventLoop()
    network = Network(loop)
    network.add_host("a", "10.0.0.1")
    network.add_host("b", "10.0.0.2")
    return loop, network


class TestUdpDelivery:
    def test_one_way_latency(self, net):
        loop, network = net
        network.latency.set_rtt("a", "b", 0.050)
        received = []
        network.host("b").bind_udp("10.0.0.2", 5000,
                                   lambda s, d, a, p: received.append(
                                       (loop.now, d, a, p)))
        sender = network.host("a").bind_udp("10.0.0.1", 0)
        sender.sendto(b"ping", "10.0.0.2", 5000)
        loop.run()
        assert received[0][1] == b"ping"
        assert abs(received[0][0] - 0.025) < 1e-9  # half the RTT

    def test_reply_addressing(self, net):
        loop, network = net
        network.host("b").bind_udp(
            "10.0.0.2", 53,
            lambda s, d, a, p: s.sendto(b"re:" + d, a, p))
        got = []
        sock = network.host("a").bind_udp("10.0.0.1", 0,
                                          lambda s, d, a, p: got.append(d))
        sock.sendto(b"q", "10.0.0.2", 53)
        loop.run()
        assert got == [b"re:q"]

    def test_unbound_port_drops(self, net):
        loop, network = net
        sock = network.host("a").bind_udp("10.0.0.1", 0)
        sock.sendto(b"x", "10.0.0.2", 9999)
        loop.run()
        assert network.host("b").counters.unreachable_drops == 1

    def test_no_route_drop(self, net):
        loop, network = net
        sock = network.host("a").bind_udp("10.0.0.1", 0)
        sock.sendto(b"x", "203.0.113.99", 53)
        loop.run()
        assert network.dropped_no_route == 1
        assert network.host("a").counters.no_route_drops == 1

    def test_loopback_delivery(self, net):
        loop, network = net
        got = []
        network.host("a").bind_udp("10.0.0.1", 777,
                                   lambda s, d, a, p: got.append(loop.now))
        sock = network.host("a").bind_udp("10.0.0.1", 0)
        sock.sendto(b"self", "10.0.0.1", 777)
        loop.run()
        assert got and got[0] < 0.001  # loopback is fast

    def test_wildcard_bind(self, net):
        loop, network = net
        got = []
        network.host("b").bind_udp("0.0.0.0", 53,
                                   lambda s, d, a, p: got.append(d))
        # 0.0.0.0 bind needs host to own it? we allow the wildcard key
        # only via direct demux; sending to the host's real address:
        sock = network.host("a").bind_udp("10.0.0.1", 0)
        sock.sendto(b"w", "10.0.0.2", 53)
        loop.run()
        assert got == [b"w"]


class TestChecksums:
    def test_bad_checksum_dropped(self, net):
        loop, network = net
        got = []
        network.host("b").bind_udp("10.0.0.2", 53,
                                   lambda s, d, a, p: got.append(d))
        packet = make_udp_packet("10.0.0.1", 40000, "10.0.0.2", 53, b"ok")
        corrupted = packet.rewritten(src="10.0.0.9",
                                     recompute_checksum=False)
        network.host("a").send_packet(corrupted)
        loop.run()
        assert got == []
        assert network.host("b").counters.checksum_drops == 1

    def test_rewrite_with_recompute_accepted(self, net):
        loop, network = net
        got = []
        network.host("b").bind_udp("10.0.0.2", 53,
                                   lambda s, d, a, p: got.append(a))
        packet = make_udp_packet("10.0.0.1", 40000, "10.0.0.9", 53, b"ok")
        fixed = packet.rewritten(dst="10.0.0.2")  # recompute by default
        network.host("a").send_packet(fixed)
        loop.run()
        assert got == ["10.0.0.1"]


class TestNetfilterAndTun:
    def test_output_rule_diverts(self, net):
        loop, network = net
        host_a = network.host("a")
        tun = host_a.create_tun()
        captured = []
        tun.set_reader(captured.append)
        host_a.netfilter.add_rule(FilterRule(chain="output", protocol="udp",
                                             dport=53, divert_to=tun))
        sock = host_a.bind_udp("10.0.0.1", 0)
        sock.sendto(b"dns", "10.0.0.2", 53)
        sock.sendto(b"web", "10.0.0.2", 80)
        loop.run()
        assert len(captured) == 1
        assert captured[0].segment.dport == 53
        assert tun.packets_diverted == 1
        # The port-80 packet went through normally.
        assert network.host("b").counters.unreachable_drops == 1

    def test_tun_write_bypasses_output_chain(self, net):
        loop, network = net
        host_a = network.host("a")
        tun = host_a.create_tun()
        got = []
        network.host("b").bind_udp("10.0.0.2", 53,
                                   lambda s, d, a, p: got.append(d))
        host_a.netfilter.add_rule(FilterRule(chain="output", protocol="udp",
                                             dport=53, divert_to=tun))
        # A reader that reinjects the same packet must not loop forever.
        tun.set_reader(lambda packet: tun.write(packet))
        sock = host_a.bind_udp("10.0.0.1", 0)
        sock.sendto(b"once", "10.0.0.2", 53)
        loop.run()
        assert got == [b"once"]
        assert tun.packets_diverted == 1
        assert tun.packets_written == 1

    def test_input_rule(self, net):
        loop, network = net
        host_b = network.host("b")
        tun = host_b.create_tun()
        seen = []
        tun.set_reader(seen.append)
        host_b.netfilter.add_rule(FilterRule(chain="input", protocol="udp",
                                             sport=4242, divert_to=tun))
        sock = network.host("a").bind_udp("10.0.0.1", 4242)
        sock.sendto(b"in", "10.0.0.2", 53)
        loop.run()
        assert len(seen) == 1
        assert host_b.counters.packets_in == 0  # diverted before counting

    def test_unattached_tun_drops(self, net):
        loop, network = net
        host_a = network.host("a")
        tun = host_a.create_tun()
        host_a.netfilter.add_rule(FilterRule(chain="output", divert_to=tun))
        sock = host_a.bind_udp("10.0.0.1", 0)
        sock.sendto(b"gone", "10.0.0.2", 53)
        loop.run()
        assert tun.packets_diverted == 1
        assert network.host("b").counters.packets_in == 0


class TestMetersAndAddressing:
    def test_traffic_meter_buckets(self, net):
        loop, network = net
        network.host("b").bind_udp("10.0.0.2", 53, lambda *a: None)
        sock = network.host("a").bind_udp("10.0.0.1", 0)
        for i in range(5):
            loop.call_at(float(i), sock.sendto, b"x" * 10, "10.0.0.2", 53)
        loop.run()
        series = network.host("b").meter_in.series()
        assert len(series) == 5
        assert all(packets == 1 for _s, _b, packets in series)

    def test_duplicate_address_rejected(self, net):
        _loop, network = net
        with pytest.raises(NetworkError):
            network.add_host("c", "10.0.0.1")

    def test_duplicate_name_rejected(self, net):
        _loop, network = net
        with pytest.raises(NetworkError):
            network.add_host("a", "10.0.0.99")

    def test_port_allocation_unique(self, net):
        _loop, network = net
        host = network.host("a")
        ports = {host.allocate_port() for _ in range(100)}
        assert len(ports) == 100

    def test_wraparound_skips_bound_udp_port(self, net):
        _loop, network = net
        host = network.host("a")
        sock = host.bind_udp("10.0.0.1", host.EPHEMERAL_FIRST)
        host._next_ephemeral = host.EPHEMERAL_LAST
        assert host.allocate_port() == host.EPHEMERAL_LAST
        # The wrap lands on a still-bound port; it must be skipped.
        assert host.allocate_port() == host.EPHEMERAL_FIRST + 1
        sock.close()
        host._next_ephemeral = host.EPHEMERAL_FIRST
        assert host.allocate_port() == host.EPHEMERAL_FIRST

    def test_wraparound_skips_live_tcp_port(self, net):
        from repro.netsim import TcpStack
        _loop, network = net
        host = network.host("a")
        stack = TcpStack(host)
        conn = stack.connect("10.0.0.1", "10.0.0.2", 53,
                             local_port=host.EPHEMERAL_FIRST)
        host._next_ephemeral = host.EPHEMERAL_FIRST
        assert host.allocate_port() == host.EPHEMERAL_FIRST + 1

    def test_exhausted_range_raises(self, net):
        _loop, network = net
        host = network.host("a")
        # Shrink the span (instance attributes shadow the class ones).
        host.EPHEMERAL_FIRST = 40000
        host.EPHEMERAL_LAST = 40001
        host._next_ephemeral = 40000
        host.bind_udp("10.0.0.1", 40000)
        host.bind_udp("10.0.0.1", 40001)
        with pytest.raises(NetworkError):
            host.allocate_port()

    def test_bind_foreign_address_rejected(self, net):
        _loop, network = net
        with pytest.raises(NetworkError):
            network.host("a").bind_udp("10.0.0.2", 0)

    def test_double_bind_rejected(self, net):
        _loop, network = net
        network.host("a").bind_udp("10.0.0.1", 53)
        with pytest.raises(NetworkError):
            network.host("a").bind_udp("10.0.0.1", 53)

    def test_close_unbinds(self, net):
        _loop, network = net
        sock = network.host("a").bind_udp("10.0.0.1", 53)
        sock.close()
        network.host("a").bind_udp("10.0.0.1", 53)  # rebind works


class TestLatencyModel:
    def test_symmetric(self):
        model = LatencyModel(default_rtt=0.1)
        model.set_rtt("x", "y", 0.2)
        assert model.rtt("x", "y") == model.rtt("y", "x") == 0.2
        assert model.rtt("x", "z") == 0.1

    def test_jitter_bounded_and_deterministic(self):
        a = LatencyModel(default_rtt=0.1, jitter_fraction=0.2, seed=1)
        b = LatencyModel(default_rtt=0.1, jitter_fraction=0.2, seed=1)
        delays_a = [a.one_way("x", "y") for _ in range(50)]
        delays_b = [b.one_way("x", "y") for _ in range(50)]
        assert delays_a == delays_b
        assert all(0.04 <= d <= 0.06 for d in delays_a)


class TestBandwidth:
    """Optional link serialization (the testbed's 1 Gb/s, Figure 5)."""

    def test_serialization_delay_queues_packets(self, net):
        loop, network = net
        sender = network.host("a")
        sender.egress_bandwidth_bps = 8000.0  # 1000 bytes/second
        arrivals = []
        network.host("b").bind_udp("10.0.0.2", 53,
                                   lambda s, d, a, p: arrivals.append(
                                       loop.now))
        sock = sender.bind_udp("10.0.0.1", 0)
        payload = b"x" * (500 - 28)  # 500 bytes on the wire
        sock.sendto(payload, "10.0.0.2", 53)   # 0.5 s to serialize
        sock.sendto(payload, "10.0.0.2", 53)   # queued behind the first
        loop.run()
        assert len(arrivals) == 2
        assert arrivals[0] == pytest.approx(0.5, abs=0.01)
        assert arrivals[1] == pytest.approx(1.0, abs=0.01)

    def test_no_bandwidth_means_no_serialization(self, net):
        loop, network = net
        arrivals = []
        network.host("b").bind_udp("10.0.0.2", 53,
                                   lambda s, d, a, p: arrivals.append(
                                       loop.now))
        sock = network.host("a").bind_udp("10.0.0.1", 0)
        sock.sendto(b"a" * 400, "10.0.0.2", 53)
        sock.sendto(b"b" * 400, "10.0.0.2", 53)
        loop.run()
        assert arrivals[0] == pytest.approx(arrivals[1])

    def test_link_idles_between_bursts(self, net):
        loop, network = net
        sender = network.host("a")
        sender.egress_bandwidth_bps = 8000.0
        arrivals = []
        network.host("b").bind_udp("10.0.0.2", 53,
                                   lambda s, d, a, p: arrivals.append(
                                       loop.now))
        sock = sender.bind_udp("10.0.0.1", 0)
        payload = b"x" * (100 - 28)  # 100 bytes -> 0.1 s serialization
        sock.sendto(payload, "10.0.0.2", 53)
        loop.call_at(5.0, sock.sendto, payload, "10.0.0.2", 53)
        loop.run()
        # Second packet pays only its own serialization, not a queue.
        assert arrivals[1] == pytest.approx(5.1, abs=0.01)
