"""Tests for the overload-control subsystem (admission queue + RRL)."""

import pytest

from repro.dns import (DNS_PORT, Edns, Flag, Message, Name, RRType, Rcode,
                       read_zone)
from repro.netsim import EventLoop, Network
from repro.perf import PerfCounters
from repro.server import (AdmissionQueue, AuthoritativeServer,
                          HostedDnsServer, OverloadConfig, OverloadControl,
                          ResponseRateLimiter, RrlConfig, TokenBucket,
                          TransportConfig, minimal_wire, subnet_of)

ZONE = """
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 10.5.0.2
www 300 IN A 192.0.2.80
"""


def make_query(qname="www.example.com.", msg_id=7):
    return Message.make_query(Name.from_text(qname), RRType.A,
                              msg_id=msg_id, edns=Edns())


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        assert [bucket.take(0.0) for _ in range(4)] \
            == [True, True, True, False]

    def test_refills_with_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        bucket.take(0.0), bucket.take(0.0)
        assert not bucket.take(0.0)
        assert bucket.take(0.5)   # 0.5 s * 2/s = 1 token back

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        assert [bucket.take(100.0) for _ in range(3)] \
            == [True, True, False]


class TestSubnetOf:
    def test_slash_24(self):
        assert subnet_of("192.0.2.77", 24) == "192.0.2.0/24"

    def test_slash_16(self):
        assert subnet_of("10.128.37.200", 16) == "10.128.0.0/16"

    def test_whole_internet(self):
        assert subnet_of("1.2.3.4", 0) == "0.0.0.0/0"

    def test_non_ipv4_individual(self):
        assert subnet_of("not-an-ip", 24) == "not-an-ip"


class TestResponseRateLimiter:
    def make(self, **kwargs):
        return ResponseRateLimiter(RrlConfig(**kwargs), PerfCounters())

    def test_allows_under_rate(self):
        rrl = self.make(responses_per_second=5.0, window=2.0)
        verdicts = [rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)
                    for _ in range(10)]
        assert verdicts == [ResponseRateLimiter.ALLOW] * 10  # burst = 10

    def test_drops_and_slips_over_rate(self):
        rrl = self.make(responses_per_second=1.0, window=1.0, slip=2)
        assert rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0) \
            == ResponseRateLimiter.ALLOW
        over = [rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)
                for _ in range(4)]
        # Every 2nd suppressed response slips as a TC stub.
        assert over == [ResponseRateLimiter.DROP, ResponseRateLimiter.SLIP,
                        ResponseRateLimiter.DROP, ResponseRateLimiter.SLIP]

    def test_leak_passes_full_response(self):
        rrl = self.make(responses_per_second=1.0, window=1.0, slip=0,
                        leak=3)
        rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)
        over = [rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)
                for _ in range(6)]
        assert over.count(ResponseRateLimiter.LEAK) == 2
        assert ResponseRateLimiter.SLIP not in over

    def test_keys_isolate_subnets_and_qnames(self):
        rrl = self.make(responses_per_second=1.0, window=1.0)
        rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)
        assert rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0) \
            != ResponseRateLimiter.ALLOW
        # Same qname, other /24: fresh bucket.
        assert rrl.decide("198.51.100.1", "q.example.com.", 0, 0.0) \
            == ResponseRateLimiter.ALLOW
        # Same subnet, other qname: fresh bucket.
        assert rrl.decide("192.0.2.9", "other.example.com.", 0, 0.0) \
            == ResponseRateLimiter.ALLOW

    def test_early_drop_follows_debt(self):
        rrl = self.make(responses_per_second=1.0, window=1.0,
                        suppression_window=1.0)
        # No debt yet: queries pass.
        assert not rrl.should_early_drop("192.0.2.1", "q.example.com.", 0.0)
        rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)
        rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)  # suppressed
        assert rrl.should_early_drop("192.0.2.1", "q.example.com.", 0.5)
        # Another source in the same /24 is covered too.
        assert rrl.should_early_drop("192.0.2.200", "q.example.com.", 0.5)
        # ...but other qnames are not.
        assert not rrl.should_early_drop("192.0.2.1", "x.example.com.", 0.5)

    def test_early_drop_debt_expires(self):
        rrl = self.make(responses_per_second=1.0, window=1.0,
                        suppression_window=1.0)
        rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)
        rrl.decide("192.0.2.1", "q.example.com.", 0, 0.0)
        # Matching queries refresh the suppression while the flood lasts.
        assert rrl.should_early_drop("192.0.2.1", "q.example.com.", 0.9)
        # Once the flood pauses past the window, the debt is forgotten.
        assert not rrl.should_early_drop("192.0.2.1", "q.example.com.", 3.0)

    def test_table_bounded(self):
        rrl = self.make(max_table_size=10)
        for i in range(50):
            rrl.decide(f"10.{i}.0.1", "q.example.com.", 0, 0.0)
        assert rrl.table_size() <= 10


class TestAdmissionQueue:
    def make(self, limit, policy, rate=10.0):
        loop = EventLoop()
        return loop, AdmissionQueue(loop, limit, policy, rate,
                                    PerfCounters())

    def test_inline_without_service_rate(self):
        loop = EventLoop()
        queue = AdmissionQueue(loop, 5, "drop-oldest", None,
                               PerfCounters())
        ran = []
        queue.submit(lambda: ran.append(1), lambda: ran.append("shed"))
        assert ran == [1]

    def test_drains_at_service_rate(self):
        loop, queue = self.make(limit=None, policy="drop-oldest",
                                rate=10.0)
        ran = []
        for i in range(5):
            queue.submit(lambda i=i: ran.append((i, loop.now)),
                         lambda: None)
        loop.run(max_time=2.0)
        assert [i for i, _t in ran] == [0, 1, 2, 3, 4]
        gaps = [b[1] - a[1] for a, b in zip(ran, ran[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_drop_oldest_evicts_head(self):
        loop, queue = self.make(limit=2, policy="drop-oldest")
        ran = []
        for i in range(4):
            queue.submit(lambda i=i: ran.append(i), lambda: None)
        loop.run(max_time=2.0)
        # 0 and 1 were evicted to make room for 2 and 3.
        assert ran == [2, 3]

    def test_drop_newest_refuses_tail(self):
        loop, queue = self.make(limit=2, policy="drop-newest")
        ran = []
        for i in range(4):
            queue.submit(lambda i=i: ran.append(i), lambda: None)
        loop.run(max_time=2.0)
        assert ran == [0, 1]

    def test_servfail_shed_answers_overflow(self):
        loop, queue = self.make(limit=1, policy="servfail-shed")
        ran, shed = [], []
        for i in range(3):
            queue.submit(lambda i=i: ran.append(i),
                         lambda i=i: shed.append(i))
        loop.run(max_time=2.0)
        assert ran == [0]
        assert shed == [1, 2]

    def test_peak_depth_tracked(self):
        loop, queue = self.make(limit=10, policy="drop-oldest", rate=1.0)
        for _ in range(7):
            queue.submit(lambda: None, lambda: None)
        assert queue.peak_depth == 7


class TestConfig:
    def test_defaults_disabled(self):
        assert not OverloadConfig().enabled()

    def test_any_knob_enables(self):
        assert OverloadConfig(queue_limit=10).enabled()
        assert OverloadConfig(service_rate=100.0).enabled()
        assert OverloadConfig(rrl=RrlConfig()).enabled()

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            OverloadControl(OverloadConfig(queue_limit=1,
                                           queue_policy="coin-flip"),
                            EventLoop(), PerfCounters())


class TestMinimalWire:
    def test_servfail_header(self):
        query = make_query()
        wire = minimal_wire(query, rcode=Rcode.SERVFAIL)
        response = Message.from_wire(wire)
        assert response.msg_id == query.msg_id
        assert response.rcode == Rcode.SERVFAIL
        assert response.question[0].name == query.question[0].name
        assert not response.answer

    def test_tc_stub(self):
        wire = minimal_wire(make_query(), tc=True)
        assert Message.from_wire(wire).flags & Flag.TC


def deploy(overload, engine=None):
    loop = EventLoop()
    network = Network(loop)
    server_host = network.add_host("server", "10.5.0.2")
    client_host = network.add_host("client", "10.5.0.1")
    if engine is None:
        zone = read_zone(ZONE, origin=Name.from_text("example.com."))
        engine = AuthoritativeServer.single_view([zone])
    server = HostedDnsServer(server_host, engine,
                             config=TransportConfig(udp=True, tcp=True),
                             overload=overload)
    return loop, server, client_host, engine


class TestHostedIntegration:
    def test_rrl_suppresses_a_repeat_flood(self):
        loop, server, client, engine = deploy(OverloadConfig(
            rrl=RrlConfig(responses_per_second=1.0, window=1.0, slip=2,
                          early_drop=False)))
        answers = []
        sock = client.bind_udp("10.5.0.1", 0,
                               lambda s, d, a, p: answers.append(
                                   Message.from_wire(d)))
        wire = make_query().to_wire()
        for i in range(10):
            loop.call_at(0.01 * i, sock.sendto, wire, "10.5.0.2", DNS_PORT)
        loop.run(max_time=5)
        full = [m for m in answers if not m.flags & Flag.TC]
        stubs = [m for m in answers if m.flags & Flag.TC]
        assert len(full) == 1          # burst of 1, all sent at ~t=0
        assert len(stubs) > 0          # every 2nd suppressed slips TC=1
        assert len(answers) < 10
        snapshot = server.perf.snapshot()
        assert snapshot["rrl.dropped"] > 0
        assert snapshot["rrl.slipped"] == len(stubs)

    def test_early_drop_saves_the_queue(self):
        loop, server, client, engine = deploy(OverloadConfig(
            rrl=RrlConfig(responses_per_second=1.0, window=1.0, slip=0)))
        sock = client.bind_udp("10.5.0.1", 0)
        wire = make_query().to_wire()
        for i in range(20):
            loop.call_at(0.01 * i, sock.sendto, wire, "10.5.0.2", DNS_PORT)
        loop.run(max_time=5)
        snapshot = server.perf.snapshot()
        assert snapshot["rrl.early_drops"] > 0
        # Early-dropped queries never reached the engine.
        assert engine.stats.queries < 20

    def test_early_drop_refunds_cpu(self):
        loop, server, client, engine = deploy(OverloadConfig(
            rrl=RrlConfig(responses_per_second=1.0, window=1.0, slip=0)))
        sock = client.bind_udp("10.5.0.1", 0)
        wire = make_query().to_wire()
        for i in range(20):
            loop.call_at(0.01 * i, sock.sendto, wire, "10.5.0.2", DNS_PORT)
        loop.run(max_time=5)
        busy = server.resources.cpu.busy_seconds
        cost = server.resources.cpu.cost
        dropped = server.perf.snapshot()["rrl.early_drops"]
        # Shed datagrams are charged the cheap receive-and-parse cost
        # instead of the full resolution path.
        assert busy["udp_shed"] == pytest.approx(dropped * cost.udp_shed)
        assert busy["udp_query"] == pytest.approx(
            (20 - dropped) * cost.udp_query)

    def test_servfail_shed_tells_the_client(self):
        loop, server, client, engine = deploy(OverloadConfig(
            queue_limit=1, queue_policy="servfail-shed",
            service_rate=2.0))
        answers = []
        sock = client.bind_udp("10.5.0.1", 0,
                               lambda s, d, a, p: answers.append(
                                   Message.from_wire(d)))
        for i in range(5):
            wire = make_query(msg_id=i + 1).to_wire()
            loop.call_at(0.001 * i, sock.sendto, wire, "10.5.0.2",
                         DNS_PORT)
        loop.run(max_time=5)
        rcodes = sorted(m.rcode for m in answers)
        # All five arrive before the first drain tick (1/rate = 0.5 s):
        # one sits in the queue, the other four are shed immediately.
        assert rcodes.count(Rcode.SERVFAIL) == 4
        assert rcodes.count(Rcode.NOERROR) == 1
        assert engine.stats.servfails_shed == 4
        assert server.perf.snapshot()["overload.shed_servfail"] == 4

    def test_rrl_leaves_tcp_alone(self):
        from repro.server import StreamFramer, frame_message
        from repro.netsim import TcpOptions, TcpStack
        loop, server, client, engine = deploy(OverloadConfig(
            rrl=RrlConfig(responses_per_second=1.0, window=1.0)))
        stack = TcpStack(client)
        framer = StreamFramer()
        answers = []
        framer.on_message = lambda w: answers.append(Message.from_wire(w))
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_data = lambda cn, d: framer.feed(d)
        for i in range(6):
            conn.send(frame_message(make_query(msg_id=i + 1).to_wire()))
        loop.run(max_time=5)
        # TCP clients proved their address; no TCP response is limited.
        assert len(answers) == 6
        assert all(m.rcode == Rcode.NOERROR for m in answers)


class TestCounterConservation:
    """arrived == served + early-dropped + queue-dropped + shed + queued."""

    def control(self, config):
        loop = EventLoop()
        perf = PerfCounters()
        return loop, perf, OverloadControl(config, loop, perf)

    def admit_n(self, control, n, execute=None):
        for i in range(n):
            control.admit(make_query(msg_id=i), "10.0.0.1", "udp",
                          execute or (lambda: None), lambda: None)

    def test_rrl_only_inline_path_is_counted(self):
        # The queue-less branch used to execute without touching any
        # counter, leaving every query unaccounted for.
        loop, perf, control = self.control(
            OverloadConfig(rrl=RrlConfig(early_drop=False)))
        self.admit_n(control, 5)
        assert perf.count("overload.served") == 5
        assert control.check_conservation() == 0

    def test_queue_policies_conserve(self):
        for policy in ("drop-oldest", "drop-newest", "servfail-shed"):
            loop, perf, control = self.control(
                OverloadConfig(queue_limit=2, queue_policy=policy,
                               service_rate=10.0))
            self.admit_n(control, 8)
            # Mid-drain: queued items count toward the identity.
            assert control.check_conservation() == 0
            loop.run(max_time=2.0)
            assert control.check_conservation() == 0
            assert perf.gauge("overload.conservation_delta") == 0

    def test_early_drop_conserves(self):
        loop, perf, control = self.control(
            OverloadConfig(queue_limit=4, service_rate=100.0,
                           rrl=RrlConfig(responses_per_second=1.0,
                                         window=1.0)))
        # Put the key into debt via the response path, then admit more.
        for _ in range(4):
            control.filter_response(make_query(), "10.0.0.1", "udp",
                                    minimal_wire(make_query()))
        self.admit_n(control, 6)
        loop.run(max_time=2.0)
        assert perf.count("rrl.early_drops") > 0
        assert control.check_conservation() == 0

    def test_drift_raises(self):
        loop, perf, control = self.control(OverloadConfig(queue_limit=1))
        perf.incr("overload.arrived")  # a query the pipeline never saw
        with pytest.raises(AssertionError, match="conservation"):
            control.check_conservation()
        assert perf.gauge("overload.conservation_delta") == 1
