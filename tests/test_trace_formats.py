"""Tests for trace formats: record model, text, binary, pcap."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.dns import Message, Name, RRType
from repro.trace import (BinaryFormatError, PcapError, QueryRecord,
                         TextFormatError, Trace, fixed_interval_trace,
                         iter_binary, line_to_record, make_query_record,
                         read_binary, read_pcap, read_text, record_to_line,
                         write_binary, write_pcap, write_text)


@pytest.fixture
def trace():
    return fixed_interval_trace(0.01, 0.5, client_count=5, name="fmt")


class TestRecordModel:
    def test_question_extraction(self):
        record = make_query_record(1.5, "10.0.0.1", "a.example.com.",
                                   RRType.AAAA)
        name, rrtype, _rrclass = record.question()
        assert name == Name.from_text("a.example.com.")
        assert rrtype == RRType.AAAA

    def test_is_response_flag(self):
        record = make_query_record(0, "10.0.0.1", "x.example.com.")
        assert not record.is_response()
        message = record.message()
        message.set_flag(message.flags.__class__.QR)
        assert record.with_(wire=message.to_wire()).is_response()

    def test_bad_protocol_rejected(self):
        with pytest.raises(ValueError):
            QueryRecord(0, "1.2.3.4", 1, "5.6.7.8", 53, "sctp", b"x" * 12)

    def test_trace_split_and_shift(self):
        records = [make_query_record(float(i) + 100, "10.0.0.1",
                                     f"q{i}.example.com.")
                   for i in range(5)]
        trace = Trace(records)
        shifted = trace.time_shifted()
        assert shifted[0].timestamp == 0.0
        assert shifted.duration() == trace.duration()

    def test_queries_responses_partition(self):
        query = make_query_record(0, "10.0.0.1", "q.example.com.")
        message = query.message()
        message.set_flag(message.flags.__class__.QR)
        response = query.with_(wire=message.to_wire())
        trace = Trace([query, response])
        assert len(trace.queries()) == 1
        assert len(trace.responses()) == 1

    def test_clients(self, trace):
        assert len(trace.clients()) == 5


class TestTextFormat:
    def test_roundtrip(self, trace):
        buffer = io.StringIO()
        count = write_text(trace, buffer)
        assert count == len(trace)
        again = read_text(buffer.getvalue())
        assert len(again) == len(trace)
        for a, b in zip(trace, again):
            assert a.question() == b.question()
            assert abs(a.timestamp - b.timestamp) < 1e-6
            assert (a.src, a.sport, a.dst, a.dport, a.protocol) == \
                (b.src, b.sport, b.dst, b.dport, b.protocol)

    def test_line_human_readable(self):
        record = make_query_record(12.5, "10.0.0.9", "www.example.com.",
                                   protocol="tcp")
        line = record_to_line(record)
        assert "www.example.com." in line
        assert "tcp" in line
        assert "10.0.0.9" in line

    def test_editability(self):
        # The paper's point: edit a field in a text editor, reconvert.
        record = make_query_record(1.0, "10.0.0.9", "www.example.com.")
        line = record_to_line(record).replace(" udp ", " tls ")
        edited = line_to_record(line)
        assert edited.protocol == "tls"

    def test_bad_column_count(self):
        with pytest.raises(TextFormatError):
            line_to_record("1.0 10.0.0.1 53")

    def test_bad_flag(self):
        record = make_query_record(1.0, "10.0.0.9", "w.example.com.")
        line = record_to_line(record).replace(" rd ", " zz ")
        if " zz " in line:
            with pytest.raises(TextFormatError):
                line_to_record(line)

    def test_comments_ignored(self, trace):
        buffer = io.StringIO()
        write_text(trace, buffer)
        assert len(read_text(buffer.getvalue())) == len(trace)


class TestBinaryFormat:
    def test_roundtrip_exact(self, trace):
        buffer = io.BytesIO()
        write_binary(trace, buffer)
        buffer.seek(0)
        again = read_binary(buffer)
        assert [r.wire for r in again] == [r.wire for r in trace]
        assert [r.timestamp for r in again] == [r.timestamp for r in trace]

    def test_streaming_iterator(self, trace):
        buffer = io.BytesIO()
        write_binary(trace, buffer)
        buffer.seek(0)
        count = sum(1 for _ in iter_binary(buffer))
        assert count == len(trace)

    def test_bad_magic(self):
        with pytest.raises(BinaryFormatError):
            list(iter_binary(io.BytesIO(b"NOPE\x00\x01\x00\x00")))

    def test_truncated_record(self, trace):
        buffer = io.BytesIO()
        write_binary(trace, buffer)
        data = buffer.getvalue()[:-3]
        with pytest.raises(BinaryFormatError):
            list(iter_binary(io.BytesIO(data)))

    def test_empty_trace(self):
        buffer = io.BytesIO()
        write_binary(Trace(), buffer)
        buffer.seek(0)
        assert len(read_binary(buffer)) == 0


class TestPcapFormat:
    def test_udp_roundtrip(self, trace):
        buffer = io.BytesIO()
        write_pcap(trace, buffer)
        buffer.seek(0)
        again = read_pcap(buffer)
        assert [r.wire for r in again] == [r.wire for r in trace]
        assert all(r.protocol == "udp" for r in again)

    def test_tcp_and_tls_classification(self):
        records = [
            make_query_record(0.0, "10.0.0.1", "a.example.com.",
                              protocol="tcp"),
            make_query_record(0.1, "10.0.0.1", "b.example.com.",
                              protocol="tls", dport=853),
        ]
        buffer = io.BytesIO()
        write_pcap(Trace(records), buffer)
        buffer.seek(0)
        again = read_pcap(buffer)
        assert [r.protocol for r in again] == ["tcp", "tls"]

    def test_timestamps_preserved_to_microsecond(self, trace):
        buffer = io.BytesIO()
        write_pcap(trace, buffer)
        buffer.seek(0)
        again = read_pcap(buffer)
        for a, b in zip(trace, again):
            assert abs(a.timestamp - b.timestamp) < 2e-6

    def test_interoperable_global_header(self, trace):
        buffer = io.BytesIO()
        write_pcap(trace, buffer)
        header = buffer.getvalue()[:24]
        assert header[:4] == b"\xd4\xc3\xb2\xa1"  # little-endian magic

    def test_bad_magic_rejected(self):
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(b"\x00" * 24))


WIRE = st.builds(
    lambda labels, mid: Message.make_query(
        Name([l.encode() for l in labels]), RRType.A, msg_id=mid).to_wire(),
    st.lists(st.text(alphabet="abcdef", min_size=1, max_size=8),
             min_size=1, max_size=3),
    st.integers(1, 0xFFFF))

RECORDS = st.builds(
    QueryRecord,
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    src=st.builds(lambda b, c: f"10.{b}.{c}.1",
                  st.integers(0, 255), st.integers(0, 255)),
    sport=st.integers(1, 65535),
    dst=st.just("10.0.0.2"),
    dport=st.integers(1, 65535),
    protocol=st.sampled_from(["udp", "tcp", "tls"]),
    wire=WIRE)


@given(st.lists(RECORDS, min_size=0, max_size=12))
def test_property_binary_roundtrip(records):
    trace = Trace(records)
    buffer = io.BytesIO()
    write_binary(trace, buffer)
    buffer.seek(0)
    again = read_binary(buffer)
    assert [(r.src, r.sport, r.dst, r.dport, r.protocol, r.wire)
            for r in again] == \
        [(r.src, r.sport, r.dst, r.dport, r.protocol, r.wire)
         for r in records]


@given(st.lists(RECORDS, min_size=1, max_size=8))
def test_property_text_preserves_question(records):
    trace = Trace(records)
    buffer = io.StringIO()
    write_text(trace, buffer)
    again = read_text(buffer.getvalue())
    assert [r.question() for r in again] == [r.question() for r in records]


class TestTraceUtilities:
    def test_merge_sorts_by_time(self):
        a = Trace([make_query_record(2.0, "10.0.0.1", "a.example.com."),
                   make_query_record(5.0, "10.0.0.1", "b.example.com.")])
        b = Trace([make_query_record(1.0, "10.0.0.2", "c.example.com."),
                   make_query_record(3.0, "10.0.0.2", "d.example.com.")])
        merged = a.merge(b)
        assert len(merged) == 4
        assert [r.timestamp for r in merged] == [1.0, 2.0, 3.0, 5.0]
        assert len(a) == 2  # originals untouched

    def test_merge_multiple(self):
        parts = [Trace([make_query_record(float(i), "10.0.0.1",
                                          f"q{i}.example.com.")])
                 for i in range(4)]
        merged = parts[0].merge(*parts[1:])
        assert len(merged) == 4

    def test_filter(self):
        trace = fixed_interval_trace(0.5, 4.0, client_count=2)
        kept = trace.filter(lambda r: r.src.endswith(".0.1"))
        assert 0 < len(kept) < len(trace)
        assert all(r.src.endswith(".0.1") for r in kept)

    def test_split_by_client(self):
        trace = fixed_interval_trace(0.5, 4.0, client_count=2)
        groups = trace.split_by_client()
        assert len(groups) == 2
        assert sum(len(t) for t in groups.values()) == len(trace)
        for src, sub in groups.items():
            assert all(r.src == src for r in sub)
