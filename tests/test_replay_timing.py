"""Tests for replay timing: the Δt̄ − Δt discipline and the jitter model."""

import pytest

from repro.replay import TimerJitterModel, TimingController
from repro.trace import quartile_summary


class TestTimingController:
    def test_delay_is_trace_minus_clock(self):
        timing = TimingController()
        timing.synchronize(trace_time=100.0, clock_time=5.0)
        # 2 s into the trace, 0.5 s of clock already burned -> wait 1.5 s.
        assert timing.send_delay(102.0, 5.5) == pytest.approx(1.5)

    def test_negative_delay_clamped(self):
        # §2.6: "if the input processing falls behind (ΔT <= 0) LDplayer
        # sends the query immediately".
        timing = TimingController()
        timing.synchronize(100.0, 5.0)
        assert timing.send_delay(100.1, 6.0) == 0.0

    def test_target_clock_time(self):
        timing = TimingController()
        timing.synchronize(100.0, 5.0)
        assert timing.target_clock_time(107.0) == pytest.approx(12.0)

    def test_unsynchronized_raises(self):
        timing = TimingController()
        assert not timing.synchronized
        with pytest.raises(RuntimeError):
            timing.send_delay(1.0, 1.0)


class TestJitterModel:
    def test_deterministic_per_seed(self):
        a = TimerJitterModel(0.01, seed=5)
        b = TimerJitterModel(0.01, seed=5)
        assert [a.draw() for _ in range(100)] == \
            [b.draw() for _ in range(100)]

    def test_seed_changes_sequence(self):
        a = TimerJitterModel(0.01, seed=5)
        b = TimerJitterModel(0.01, seed=6)
        assert [a.draw() for _ in range(50)] != \
            [b.draw() for _ in range(50)]

    def test_clamped_to_paper_extremes(self):
        model = TimerJitterModel(0.1, seed=1)
        values = [model.draw() for _ in range(5000)]
        assert all(abs(v) <= 0.017 + 1e-12 for v in values)

    def test_stationary_quartiles_near_calibration(self):
        # The 0.1 s interarrival anomaly: quartiles near ±8 ms (Fig 6).
        model = TimerJitterModel(0.1, seed=3)
        values = [model.draw() for _ in range(20000)]
        summary = quartile_summary(values)
        assert 0.004 < summary["p75"] < 0.014
        assert -0.014 < summary["p25"] < -0.004

    def test_small_interval_small_error(self):
        fast = TimerJitterModel(0.0001, seed=2)
        slow = TimerJitterModel(0.1, seed=2)
        fast_spread = quartile_summary([fast.draw() for _ in range(5000)])
        slow_spread = quartile_summary([slow.draw() for _ in range(5000)])
        assert fast_spread["p75"] < slow_spread["p75"]

    def test_consecutive_errors_strongly_correlated(self):
        # Figures 7/8 require correlated timer error (see timing.py).
        model = TimerJitterModel(0.0001, seed=7)
        values = [model.draw() for _ in range(10000)]
        diffs = [b - a for a, b in zip(values, values[1:])]
        spread = quartile_summary(values)
        diff_spread = quartile_summary(diffs)
        assert diff_spread["p75"] < spread["p75"] * 0.5

    def test_mean_near_zero(self):
        model = TimerJitterModel(None, seed=11)
        values = [model.draw() for _ in range(20000)]
        assert abs(sum(values) / len(values)) < 0.002
