"""Tests for zone lookup semantics (RFC 1034 §4.3.2 behaviours)."""

import pytest

from repro.dns import (AnswerKind, Name, RRClass, RRType, Zone, ZoneError,
                       make_soa, read_zone)
from repro.dns import rdata as rd
from repro.dns.rrset import RR

ZONE_TEXT = """
$ORIGIN example.com.
$TTL 3600
@       IN SOA ns1 hostmaster 1 7200 900 1209600 86400
@       IN NS ns1
@       IN NS ns2
@       IN MX 10 mail
ns1     IN A 192.0.2.1
ns2     IN A 192.0.2.2
mail    IN A 192.0.2.25
www     IN A 192.0.2.80
www     IN A 192.0.2.81
alias   IN CNAME www
*.wild  IN TXT "wildcard data"
sub     IN NS ns1.sub
ns1.sub IN A 192.0.2.53
a.b.deep IN A 192.0.2.99
"""


@pytest.fixture
def zone():
    return read_zone(ZONE_TEXT)


def q(zone, name, rrtype):
    return zone.lookup(Name.from_text(name), rrtype)


class TestLookupKinds:
    def test_positive_answer(self, zone):
        result = q(zone, "www.example.com.", RRType.A)
        assert result.kind == AnswerKind.ANSWER
        assert len(result.rrsets[0]) == 2

    def test_apex_answer(self, zone):
        result = q(zone, "example.com.", RRType.MX)
        assert result.kind == AnswerKind.ANSWER

    def test_nodata(self, zone):
        result = q(zone, "www.example.com.", RRType.AAAA)
        assert result.kind == AnswerKind.NODATA

    def test_nxdomain(self, zone):
        assert q(zone, "missing.example.com.", RRType.A).kind == \
            AnswerKind.NXDOMAIN

    def test_out_of_zone(self, zone):
        assert q(zone, "example.org.", RRType.A).kind == \
            AnswerKind.OUT_OF_ZONE

    def test_cname(self, zone):
        result = q(zone, "alias.example.com.", RRType.A)
        assert result.kind == AnswerKind.CNAME

    def test_cname_direct_query(self, zone):
        result = q(zone, "alias.example.com.", RRType.CNAME)
        assert result.kind == AnswerKind.ANSWER

    def test_any_query(self, zone):
        result = q(zone, "example.com.", RRType.ANY)
        assert result.kind == AnswerKind.ANSWER
        assert len(result.rrsets) >= 3


class TestDelegation:
    def test_referral_below_cut(self, zone):
        result = q(zone, "host.sub.example.com.", RRType.A)
        assert result.kind == AnswerKind.REFERRAL
        assert result.node == Name.from_text("sub.example.com.")
        assert result.rrsets[0].rrtype == RRType.NS

    def test_referral_at_cut(self, zone):
        result = q(zone, "sub.example.com.", RRType.A)
        assert result.kind == AnswerKind.REFERRAL

    def test_ds_at_cut_answered_by_parent(self, zone):
        zone.add_rr(RR(Name.from_text("sub.example.com."), 3600, RRClass.IN,
                       rd.DS(1, 8, 2, b"\x00" * 32)))
        result = q(zone, "sub.example.com.", RRType.DS)
        assert result.kind == AnswerKind.ANSWER

    def test_glue_for(self, zone):
        result = q(zone, "x.sub.example.com.", RRType.A)
        glue = zone.glue_for(result.rrsets[0])
        assert any(g.name == Name.from_text("ns1.sub.example.com.")
                   for g in glue)

    def test_is_delegation(self, zone):
        assert zone.is_delegation(Name.from_text("sub.example.com."))
        assert not zone.is_delegation(zone.origin)


class TestWildcard:
    def test_wildcard_synthesis(self, zone):
        result = q(zone, "anything.wild.example.com.", RRType.TXT)
        assert result.kind == AnswerKind.ANSWER
        assert result.wildcard
        assert result.rrsets[0].name == \
            Name.from_text("anything.wild.example.com.")

    def test_wildcard_multilabel(self, zone):
        result = q(zone, "a.b.c.wild.example.com.", RRType.TXT)
        assert result.kind == AnswerKind.ANSWER and result.wildcard

    def test_wildcard_nodata_for_other_type(self, zone):
        result = q(zone, "x.wild.example.com.", RRType.A)
        assert result.kind == AnswerKind.NODATA

    def test_existing_name_blocks_wildcard(self, zone):
        # RFC 4592: an existing name is never wildcard-synthesized.
        zone.add_rr(RR(Name.from_text("real.wild.example.com."), 300,
                       RRClass.IN, rd.A("192.0.2.7")))
        result = q(zone, "real.wild.example.com.", RRType.TXT)
        assert result.kind == AnswerKind.NODATA
        assert not result.wildcard


class TestEmptyNonTerminal:
    def test_ent_is_nodata_not_nxdomain(self, zone):
        # b.deep exists only as an interior node of a.b.deep.
        result = q(zone, "b.deep.example.com.", RRType.A)
        assert result.kind == AnswerKind.NODATA


class TestValidation:
    def test_valid_zone_passes(self, zone):
        zone.validate()

    def test_missing_soa(self):
        z = Zone(Name.from_text("x."))
        z.add_rr(RR(Name.from_text("x."), 60, RRClass.IN,
                    rd.NS(Name.from_text("ns.x."))))
        with pytest.raises(ZoneError):
            z.validate()

    def test_cname_conflict(self, zone):
        zone.add_rr(RR(Name.from_text("alias.example.com."), 300,
                       RRClass.IN, rd.A("192.0.2.5")))
        with pytest.raises(ZoneError):
            zone.validate()

    def test_out_of_zone_record_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_rr(RR(Name.from_text("other.org."), 60, RRClass.IN,
                           rd.A("192.0.2.9")))


class TestCanonicalOrder:
    def test_covering_name(self, zone):
        covering = zone.covering_name(Name.from_text("zzz.example.com."))
        assert covering is not None
        assert covering <= Name.from_text("zzz.example.com.")

    def test_covering_existing_name_is_itself(self, zone):
        assert zone.covering_name(Name.from_text("www.example.com.")) == \
            Name.from_text("www.example.com.")

    def test_cache_invalidation_on_add(self, zone):
        zone.canonical_names()
        zone.add_rr(RR(Name.from_text("zz.example.com."), 60, RRClass.IN,
                       rd.A("192.0.2.50")))
        assert Name.from_text("zz.example.com.") in zone.canonical_names()


class TestAccessors:
    def test_record_count(self, zone):
        assert zone.record_count() == 14

    def test_iter_rrs_sorted_and_complete(self, zone):
        rrs = list(zone.iter_rrs())
        assert len(rrs) == zone.record_count()

    def test_remove(self, zone):
        zone.remove(Name.from_text("www.example.com."), RRType.A)
        assert q(zone, "www.example.com.", RRType.A).kind == \
            AnswerKind.NXDOMAIN

    def test_make_soa_is_valid(self):
        rr = make_soa(Name.from_text("test."))
        assert rr.rrtype == RRType.SOA
        assert rr.rdata.serial == 1
