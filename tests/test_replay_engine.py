"""Integration tests for the simulated replay engine."""

import pytest

from repro.dns import Name, RRType
from repro.replay import (QuerierConfig, ReplayConfig, SimReplayEngine,
                          TimerJitterModel)
from repro.server import AuthoritativeServer, HostedDnsServer, \
    TransportConfig
from repro.trace import (BRootWorkload, QueryMutator, all_protocol,
                         fixed_interval_trace, make_root_zone, retarget)
from repro.experiments import build_evaluation_topology
from repro.experiments.fig6_timing import wildcard_example_zone


def deploy(tcp_timeout=20.0):
    testbed = build_evaluation_topology()
    server = HostedDnsServer(
        testbed.server_host,
        AuthoritativeServer.single_view([wildcard_example_zone(),
                                         make_root_zone(20)]),
        config=TransportConfig(udp=True, tcp=True, tls=True,
                               tcp_idle_timeout=tcp_timeout))
    return testbed, server


def retargeted(trace, testbed):
    return QueryMutator([retarget(testbed.server_address)]).apply(trace)


class TestUdpReplay:
    def test_all_queries_answered(self):
        testbed, _server = deploy()
        trace = retargeted(fixed_interval_trace(0.01, 3.0), testbed)
        engine = SimReplayEngine(testbed.network)
        result = engine.replay(trace)
        assert len(result) == len(trace)
        assert result.answered_fraction() == 1.0

    def test_timing_tracks_trace(self):
        testbed, _server = deploy()
        trace = retargeted(fixed_interval_trace(0.05, 3.0), testbed)
        engine = SimReplayEngine(testbed.network)
        result = engine.replay(trace)
        errors = result.send_time_errors()
        # No jitter model: simulated timers are exact.
        assert max(abs(e) for e in errors) < 1e-6

    def test_jitter_produces_spread(self):
        testbed, _server = deploy()
        trace = retargeted(fixed_interval_trace(0.05, 3.0), testbed)
        engine = SimReplayEngine(
            testbed.network,
            ReplayConfig(jitter=TimerJitterModel(0.05, seed=1)))
        result = engine.replay(trace)
        errors = result.send_time_errors()
        assert max(abs(e) for e in errors) > 1e-4

    def test_same_source_same_querier(self):
        testbed, _server = deploy()
        trace = retargeted(
            BRootWorkload(duration=5.0, mean_rate=100, seed=8).generate(),
            testbed)
        engine = SimReplayEngine(testbed.network)
        result = engine.replay(trace)
        per_source = {}
        for query in result.sent:
            per_source.setdefault(query.source, set()).add(query.querier_id)
        assert all(len(ids) == 1 for ids in per_source.values())

    def test_affinity_off_spreads_sources(self):
        testbed, _server = deploy()
        trace = retargeted(
            BRootWorkload(duration=5.0, mean_rate=200, seed=8).generate(),
            testbed)
        engine = SimReplayEngine(testbed.network,
                                 ReplayConfig(same_source_affinity=False))
        result = engine.replay(trace)
        busiest = max(
            (source for source in {q.source for q in result.sent}),
            key=lambda s: sum(1 for q in result.sent if q.source == s))
        ids = {q.querier_id for q in result.sent if q.source == busiest}
        assert len(ids) > 1


class TestStreamReplay:
    def test_tcp_connection_reuse(self):
        testbed, server = deploy()
        base = BRootWorkload(duration=5.0, mean_rate=150, seed=9).generate()
        trace = QueryMutator([retarget(testbed.server_address),
                              all_protocol("tcp")]).apply(base)
        engine = SimReplayEngine(testbed.network)
        result = engine.replay(trace)
        assert result.answered_fraction() > 0.98
        assert result.reuse_fraction() > 0.3
        assert server.tcp_stack.total_accepted < len(trace)

    def test_tls_replay_answers(self):
        testbed, server = deploy()
        base = BRootWorkload(duration=4.0, mean_rate=80, seed=10).generate()
        trace = QueryMutator([retarget(testbed.server_address),
                              all_protocol("tls")]).apply(base)
        engine = SimReplayEngine(testbed.network)
        result = engine.replay(trace)
        assert result.answered_fraction() > 0.98
        assert server.resources.tls_sessions > 0

    def test_latencies_positive(self):
        testbed, _server = deploy()
        base = BRootWorkload(duration=3.0, mean_rate=80, seed=12).generate()
        trace = QueryMutator([retarget(testbed.server_address),
                              all_protocol("tcp")]).apply(base)
        engine = SimReplayEngine(testbed.network)
        result = engine.replay(trace)
        latencies = result.latencies()
        assert latencies and all(l > 0 for l in latencies)


class TestFastReplay:
    def test_fast_mode_ignores_trace_timing(self):
        testbed, _server = deploy()
        trace = retargeted(fixed_interval_trace(1.0, 60.0), testbed)
        engine = SimReplayEngine(
            testbed.network,
            ReplayConfig(track_timing=False, fast_replay_rate=10000.0))
        result = engine.schedule_trace(trace)
        testbed.loop.run(max_time=testbed.loop.now + 30)
        assert len(result) == len(trace)
        span = (max(q.sent_at for q in result.sent)
                - min(q.sent_at for q in result.sent))
        assert span < 1.0  # 60 s of trace replayed in well under a second


class TestResultAnalysis:
    def test_per_second_rates_match_input(self):
        testbed, _server = deploy()
        trace = retargeted(fixed_interval_trace(0.01, 4.0), testbed)
        engine = SimReplayEngine(testbed.network)
        result = engine.replay(trace)
        rates = dict(result.per_second_rates())
        assert rates[1] == 100
        assert rates[2] == 100

    def test_unmatched_responses_zero_in_clean_run(self):
        testbed, _server = deploy()
        trace = retargeted(fixed_interval_trace(0.02, 2.0), testbed)
        engine = SimReplayEngine(testbed.network)
        result = engine.replay(trace)
        assert result.unmatched_responses == 0


class TestLiveMutation:
    """§2.5: mutate the query stream live on the dispatch path."""

    def test_live_protocol_mutation(self):
        from repro.trace import QueryMutator, all_protocol
        testbed, server = deploy()
        trace = retargeted(fixed_interval_trace(0.02, 2.0), testbed)
        engine = SimReplayEngine(
            testbed.network,
            ReplayConfig(live_mutator=QueryMutator([all_protocol("tcp")])))
        result = engine.replay(trace)
        assert all(q.protocol == "tcp" for q in result.sent)
        assert server.tcp_stack.total_accepted > 0

    def test_live_drop_filters_records(self):
        from repro.trace import QueryMutator
        testbed, _server = deploy()
        trace = retargeted(fixed_interval_trace(0.02, 2.0), testbed)
        drop_even = QueryMutator(
            [lambda r: r if int(r.timestamp * 50) % 2 else None])
        engine = SimReplayEngine(testbed.network,
                                 ReplayConfig(live_mutator=drop_even))
        result = engine.replay(trace)
        assert 0 < len(result) < len(trace)
