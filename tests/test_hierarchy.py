"""Tests for hierarchy utilities, the simulated Internet, and emulation."""

import pytest

from repro.dns import DNS_PORT, Message, Name, RRType, Rcode
from repro.hierarchy import (HierarchyEmulation, SimulatedInternet,
                             address_to_zones, apex_nameservers,
                             nameserver_addresses, root_hints_for)
from repro.netsim import EventLoop, Network
from repro.trace import make_hierarchy_zones


@pytest.fixture(scope="module")
def zones():
    return make_hierarchy_zones(3, 4)


class TestZoneUtil:
    def test_apex_nameservers(self, zones):
        root = zones[0]
        assert Name.from_text("a.root-servers.net.") in \
            apex_nameservers(root)

    def test_nameserver_addresses_complete(self, zones):
        addresses = nameserver_addresses(zones)
        for zone in zones:
            assert addresses[zone.origin], f"no address for {zone.origin}"

    def test_root_hints(self, zones):
        hints = root_hints_for(zones)
        assert hints[Name.from_text("a.root-servers.net.")] == ["198.41.0.4"]

    def test_root_hints_require_root_zone(self, zones):
        with pytest.raises(ValueError):
            root_hints_for(zones[1:])

    def test_address_grouping(self, zones):
        grouped = address_to_zones(zones)
        # TLD nameservers are shared across TLDs in make_hierarchy_zones?
        # Every address maps to at least one zone; every zone is served.
        served = {z.origin for zl in grouped.values() for z in zl}
        assert served == {z.origin for z in zones}


class TestSimulatedInternet:
    def test_one_host_per_address(self, zones):
        loop = EventLoop()
        network = Network(loop)
        internet = SimulatedInternet(network, zones)
        assert internet.server_count() == len(address_to_zones(zones))

    def test_servers_answer_directly(self, zones):
        loop = EventLoop()
        network = Network(loop)
        internet = SimulatedInternet(network, zones)
        stub = network.add_host("stub", "10.8.0.1")
        answers = []
        sock = stub.bind_udp("10.8.0.1", 0,
                             lambda s, d, a, p: answers.append(
                                 Message.from_wire(d)))
        # Ask the root server for a TLD delegation.
        query = Message.make_query(Name.from_text("com."), RRType.NS,
                                   msg_id=1, recursion_desired=False)
        sock.sendto(query.to_wire(), "198.41.0.4", DNS_PORT)
        loop.run(max_time=2)
        assert answers and answers[0].rcode == Rcode.NOERROR


class TestHierarchyEmulation:
    def test_view_per_address(self, zones):
        loop = EventLoop()
        network = Network(loop)
        emulation = HierarchyEmulation(network, zones)
        assert emulation.view_count() == len(address_to_zones(zones))
        assert emulation.zone_count() == len(zones)

    def test_resolves_through_emulated_hierarchy(self, zones):
        loop = EventLoop()
        network = Network(loop)
        emulation = HierarchyEmulation(network, zones)
        stub = network.add_host("stub", "10.8.0.1")
        answers = []
        sock = stub.bind_udp("10.8.0.1", 0,
                             lambda s, d, a, p: answers.append(
                                 Message.from_wire(d)))
        query = Message.make_query(
            Name.from_text("host0.domain000.com."), RRType.A, msg_id=2)
        sock.sendto(query.to_wire(), emulation.recursive_address, DNS_PORT)
        loop.run(max_time=30)
        assert answers and answers[0].rcode == Rcode.NOERROR
        assert answers[0].answer

    def test_proxies_saw_traffic(self, zones):
        loop = EventLoop()
        network = Network(loop)
        emulation = HierarchyEmulation(network, zones)
        stub = network.add_host("stub", "10.8.0.1")
        sock = stub.bind_udp("10.8.0.1", 0, lambda *a: None)
        query = Message.make_query(
            Name.from_text("host1.domain001.net."), RRType.A, msg_id=3)
        sock.sendto(query.to_wire(), emulation.recursive_address, DNS_PORT)
        loop.run(max_time=30)
        # Root -> TLD -> SLD: three upstream queries through each proxy.
        assert emulation.recursive_proxy.stats.packets_rewritten == 3
        assert emulation.authoritative_proxy.stats.packets_rewritten == 3

    def test_flush_caches_forces_rewalk(self, zones):
        loop = EventLoop()
        network = Network(loop)
        emulation = HierarchyEmulation(network, zones)
        stub = network.add_host("stub", "10.8.0.1")
        sock = stub.bind_udp("10.8.0.1", 0, lambda *a: None)
        query = Message.make_query(
            Name.from_text("host0.domain000.com."), RRType.A, msg_id=4)
        sock.sendto(query.to_wire(), emulation.recursive_address, DNS_PORT)
        loop.run(max_time=30)
        first = emulation.resolver.stats.upstream_queries
        emulation.flush_caches()
        query2 = Message.make_query(
            Name.from_text("host0.domain000.com."), RRType.A, msg_id=5)
        sock.sendto(query2.to_wire(), emulation.recursive_address, DNS_PORT)
        loop.run(max_time=60)
        assert emulation.resolver.stats.upstream_queries == first * 2
