"""Tests for the multi-process replay topology (repro.replay.multiproc)."""

import os
import signal
import time

import pytest

from repro.replay import (DistributedConfig, LiveDistributedReplay,
                          LiveUdpEchoServer, ProcessTopology, ReplayWatchdog,
                          SupervisionConfig, UdpEchoServerProcess)
from repro.replay.multiproc import _WorkerHandle
from repro.replay.protocol import ROLE_QUERIER
from repro.trace import Trace, fixed_interval_trace, table1_synthetic


def process_config(**overrides):
    defaults = dict(distributors=2, queriers_per_distributor=2,
                    topology="processes", start_delay=0.05)
    defaults.update(overrides)
    return DistributedConfig(**defaults)


class TestProcessTopology:
    def test_replays_and_answers(self):
        trace = fixed_interval_trace(0.02, 1.0, client_count=16,
                                     name="mp-basic")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port), process_config())
            result = replay.replay(trace)
        assert len(result) == len(trace)
        assert result.answered_fraction() > 0.9

    def test_source_affinity_across_processes(self):
        trace = fixed_interval_trace(0.01, 1.0, client_count=12,
                                     name="mp-affinity")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port), process_config())
            result = replay.replay(trace)
        per_source = {}
        for query in result.sent:
            per_source.setdefault(query.source, set()).add(query.querier_id)
        assert all(len(ids) == 1 for ids in per_source.values())
        assert len({q.querier_id for q in result.sent}) > 1

    def test_merged_indices_unique_and_dense(self):
        trace = fixed_interval_trace(0.02, 1.0, client_count=8,
                                     name="mp-indices")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port), process_config())
            result = replay.replay(trace)
        indices = sorted(q.index for q in result.sent)
        assert indices == list(range(len(result.sent)))

    def test_cross_process_metrics_merge(self):
        trace = fixed_interval_trace(0.02, 1.0, client_count=8,
                                     name="mp-metrics")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port), process_config())
            result = replay.replay(trace)
        state = replay.metrics.to_state()
        assert state["counts"]["replay.records_sent"] == len(result.sent)
        assert state["counts"]["replay.records_routed"] == len(trace)
        latency = state["histograms"]["query.latency_s"]
        answered = sum(1 for q in result.sent if q.answered_at is not None)
        assert latency["count"] == answered

    def test_empty_trace(self):
        replay = LiveDistributedReplay(("127.0.0.1", 1), process_config())
        result = replay.replay(Trace())
        assert len(result) == 0

    def test_unknown_topology_rejected(self):
        replay = LiveDistributedReplay(
            ("127.0.0.1", 1), DistributedConfig(topology="carrier-pigeon"))
        with pytest.raises(ValueError):
            replay.replay(fixed_interval_trace(0.5, 1.0))


class TestDifferentialThreadsVsProcesses:
    def test_syn1_aggregates_match(self):
        """ISSUE acceptance: both topologies replay syn-1 to the same
        merged aggregate — same query set, same sources, all answered."""
        trace = table1_synthetic("syn-1", duration=2.0)
        results = {}
        for topology in ("threads", "processes"):
            with LiveUdpEchoServer() as server:
                replay = LiveDistributedReplay(
                    (server.address, server.port),
                    process_config(topology=topology))
                results[topology] = replay.replay(trace)
        threaded, processed = results["threads"], results["processes"]
        assert len(threaded) == len(processed) == len(trace)
        assert threaded.answered_fraction() == 1.0
        assert processed.answered_fraction() == 1.0

        def per_source(result):
            counts = {}
            for query in result.sent:
                counts[query.source] = counts.get(query.source, 0) + 1
            return counts

        assert per_source(threaded) == per_source(processed)
        assert {q.qname for q in threaded.sent} \
            == {q.qname for q in processed.sent}
        assert threaded.failure_counts() == processed.failure_counts()
        assert threaded.degradation() == processed.degradation()


class TestSupervision:
    def test_dead_querier_process_is_flagged_and_replay_finishes(self):
        """Kill one querier process mid-replay: the watchdog flags the
        dead worker and collection skips it instead of hanging."""
        trace = fixed_interval_trace(0.01, 2.0, client_count=8,
                                     name="mp-dead")
        config = process_config(
            distributors=1, queriers_per_distributor=2,
            supervision=SupervisionConfig(heartbeat_interval=0.05,
                                          stall_timeout=10.0))
        with LiveUdpEchoServer() as server:
            topology = ProcessTopology((server.address, server.port), config)
            import threading

            def assassin():
                # Wait for the tree to wire up, then kill one querier.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if topology.querier_handles:
                        victim = topology.querier_handles[0].process
                        if victim is not None and victim.pid:
                            os.kill(victim.pid, signal.SIGKILL)
                            return
                    time.sleep(0.02)

            killer = threading.Thread(target=assassin, daemon=True)
            killer.start()
            started = time.monotonic()
            result = topology.replay(trace)
            elapsed = time.monotonic() - started
            killer.join(timeout=1.0)
        # Must terminate well before the 10s stall timeout: death is
        # detected via is_alive(), not heartbeat staleness.
        assert elapsed < 9.0
        assert result.watchdog_stalls >= 1
        # The surviving querier kept answering.
        answered = sum(1 for q in result.sent if q.answered_at is not None)
        assert answered > 0

    def test_watchdog_flags_dead_worker_handle(self):
        class FakeDeadProcess:
            pid = 12345

            @staticmethod
            def is_alive():
                return False

        class FakeSocket:
            def close(self):
                pass

        handle = _WorkerHandle(ROLE_QUERIER, 0, FakeSocket(), 0)
        handle.process = FakeDeadProcess()
        flagged = []
        watchdog = ReplayWatchdog(
            SupervisionConfig(heartbeat_interval=0.02, stall_timeout=60.0),
            [handle], on_stall=flagged.append)
        watchdog.start()
        deadline = time.monotonic() + 2.0
        while not flagged and time.monotonic() < deadline:
            time.sleep(0.01)
        watchdog.stop()
        watchdog.join(timeout=1.0)
        assert flagged == [handle]

    def test_watchdog_ignores_unstarted_handle(self):
        class FakeSocket:
            def close(self):
                pass

        handle = _WorkerHandle(ROLE_QUERIER, 0, FakeSocket(), 0)
        # No process attached yet: is_alive() False but pid None.
        flagged = []
        watchdog = ReplayWatchdog(
            SupervisionConfig(heartbeat_interval=0.02, stall_timeout=60.0),
            [handle], on_stall=flagged.append)
        watchdog.start()
        time.sleep(0.15)
        watchdog.stop()
        watchdog.join(timeout=1.0)
        assert flagged == []

    def test_deadline_sheds_across_processes(self):
        """The wall-clock budget propagates as SHUTDOWN frames and the
        shed counts come back in the merged aggregate."""
        trace = fixed_interval_trace(0.05, 30.0, client_count=8,
                                     name="mp-deadline")
        config = process_config(
            distributors=1, queriers_per_distributor=2,
            supervision=SupervisionConfig(heartbeat_interval=0.05,
                                          stall_timeout=5.0,
                                          deadline=1.0))
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port), config)
            started = time.monotonic()
            result = replay.replay(trace)
            elapsed = time.monotonic() - started
        assert elapsed < 25.0           # nowhere near the 30s trace
        assert result.deadline_shed > 0
        assert len(result.sent) + result.deadline_shed <= len(trace)


class TestUdpEchoServerProcess:
    def test_start_echo_stop(self):
        import socket
        with UdpEchoServerProcess() as server:
            assert server.port
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.settimeout(2.0)
            sock.sendto(b"\x12\x34" + b"\x00" * 10,
                        (server.address, server.port))
            data, _peer = sock.recvfrom(65535)
            sock.close()
            assert data[:2] == b"\x12\x34"
        assert server._process is None
