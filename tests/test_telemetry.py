"""Unit tests for the telemetry subsystem (metrics, tracing, sampling,
exporters) and the zero-query report-renderer regressions."""

import json

import pytest

from repro.dns import Edns, Message, Name, RRType
from repro.experiments.report import (render_degradation,
                                      render_failure_counts,
                                      render_perf_counters,
                                      render_telemetry)
from repro.netsim import (EventLoop, Network, ResourceMonitor,
                          ServerResourceModel)
from repro.perf import PerfCounters
from repro.replay import ReplayResult
from repro.telemetry import (Histogram, MetricsRegistry, QueryTracer,
                             ResourceTimeline, Telemetry, TelemetryConfig,
                             TimeSeriesSampler, chrome_trace, message_key,
                             timeseries_csv, wire_question_key)
from repro.trace import percentile, quartile_summary


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean() is None
        assert h.quantile(0.5) is None

    def test_quantile_within_one_bucket(self):
        # Exact percentiles must land inside the bucket the histogram
        # reports for the same quantile — the acceptance resolution.
        h = Histogram()
        values = [0.0001 * (i + 1) for i in range(500)]
        for value in values:
            h.observe(value)
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.99):
            bounds = h.quantile_bounds(q)
            assert bounds is not None
            _rep, low, high = bounds
            exact = percentile(ordered, q)
            assert low <= exact <= high

    def test_tiny_values_share_bucket_zero(self):
        h = Histogram(min_value=1e-6)
        h.observe(0.0)
        h.observe(1e-9)
        h.observe(1e-6)
        assert h.buckets() == [(0.0, 1e-6, 3)]

    def test_representative_clamped_to_observed(self):
        h = Histogram()
        h.observe(0.004)
        assert h.quantile(0.5) == pytest.approx(0.004)

    def test_mean_is_exact(self):
        h = Histogram()
        for value in (0.001, 0.002, 0.006):
            h.observe(value)
        assert h.mean() == pytest.approx(0.003)

    def test_merge(self):
        a, b = Histogram(), Histogram()
        for value in (0.001, 0.01):
            a.observe(value)
        b.observe(0.1)
        a.merge(b)
        assert a.count == 3
        assert a.max == pytest.approx(0.1)

    def test_merge_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.25).merge(Histogram(growth=2.0))

    def test_to_dict_is_json_ready(self):
        h = Histogram()
        h.observe(0.005)
        doc = json.loads(json.dumps(h.to_dict()))
        assert doc["count"] == 1
        assert doc["p50"] is not None

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        with pytest.raises(ValueError):
            Histogram(min_value=0.0)


class TestMetricsRegistry:
    def test_histograms_lazily_created(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.01)
        registry.observe("lat", 0.02)
        assert registry.histogram("lat").count == 2

    def test_snapshot_excludes_histograms(self):
        registry = MetricsRegistry()
        registry.incr("queries")
        registry.observe("lat", 0.01)
        assert registry.snapshot() == {"queries": 1}

    def test_merge_includes_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 0.01)
        b.observe("lat", 0.02)
        b.incr("queries")
        a.merge(b)
        assert a.histogram("lat").count == 2
        assert a.count("queries") == 1

    def test_state_roundtrip_is_exact(self):
        """to_state/from_state is the cross-process METRICS snapshot;
        unlike to_dict (a summary), it must be lossless."""
        registry = MetricsRegistry()
        registry.incr("queries", 7)
        registry.add_time("replay", 1.25)
        registry.set_gauge("rate", 42.5)
        for value in (1e-7, 0.001, 0.02, 3.5):
            registry.observe("lat", value)
        wire = json.dumps(registry.to_state())   # must be JSON-safe
        restored = MetricsRegistry.from_state(json.loads(wire))
        assert restored.snapshot() == registry.snapshot()
        original, copy = registry.histogram("lat"), restored.histogram("lat")
        assert copy.count == original.count
        assert copy.total == pytest.approx(original.total)
        assert copy.min == original.min
        assert copy.max == original.max
        assert copy.buckets() == original.buckets()
        assert copy.quantile(0.9) == original.quantile(0.9)

    def test_merge_state_folds_worker_snapshot(self):
        worker = MetricsRegistry()
        worker.incr("replay.records_sent", 10)
        worker.observe("query.latency_s", 0.004)
        controller = MetricsRegistry()
        controller.incr("replay.records_sent", 5)
        controller.observe("query.latency_s", 0.002)
        controller.merge_state(json.loads(json.dumps(worker.to_state())))
        assert controller.count("replay.records_sent") == 15
        assert controller.histogram("query.latency_s").count == 2

    def test_histogram_state_roundtrip_empty(self):
        empty = Histogram(growth=1.5, min_value=1e-3)
        restored = Histogram.from_state(
            json.loads(json.dumps(empty.to_state())))
        assert restored.count == 0
        assert restored.growth == 1.5
        assert restored.min_value == 1e-3
        assert restored.mean() is None

    def test_perf_counters_is_a_registry(self):
        # The facade: old call sites keep working, new histogram API
        # available on the same object, merge accepts either direction.
        perf = PerfCounters()
        assert isinstance(perf, MetricsRegistry)
        assert perf.registry is perf
        perf.incr("hits")
        perf.observe("lat", 0.01)
        assert perf.snapshot() == {"hits": 1}
        other = MetricsRegistry()
        other.incr("hits", 2)
        perf.merge(other)
        assert perf.count("hits") == 3


class TestQueryKeys:
    @pytest.mark.parametrize("qname,qtype", [
        ("www.example.com.", RRType.A),
        ("MiXeD.Example.COM.", RRType.AAAA),
        (".", RRType.NS),
    ])
    def test_wire_key_matches_message_key(self, qname, qtype):
        message = Message.make_query(Name.from_text(qname), qtype,
                                     msg_id=77, edns=Edns())
        wire = message.to_wire()
        assert wire_question_key(wire) == \
            message_key(Message.from_wire(wire))

    def test_malformed_wire(self):
        assert wire_question_key(b"") is None
        assert wire_question_key(b"\x00" * 12) is None  # qdcount 0
        assert wire_question_key(b"\x00" * 11) is None  # short header

    def test_questionless_message(self):
        message = Message.make_query(Name.from_text("a.test."), RRType.A)
        message.question = []
        assert message_key(message) is None


class TestQueryTracer:
    def test_span_lifecycle(self):
        tracer = QueryTracer()
        tracer.begin(1.0, 3, "query", "querier-0", qname="a.test.")
        tracer.instant(1.1, 3, "server.recv", "server")
        tracer.end(1.2, 3, "query", "querier-0", outcome="answered")
        assert tracer.spans_begun == tracer.spans_ended == 1
        assert [event[1] for event in tracer.events_for(3)] == \
            ["b", "i", "e"]

    def test_double_close_ignored(self):
        tracer = QueryTracer()
        tracer.begin(1.0, 1, "query", "querier-0")
        tracer.end(1.1, 1, "query", "querier-0")
        tracer.end(1.2, 1, "query", "querier-0")
        assert tracer.spans_ended == 1
        assert len(tracer.events) == 2

    def test_sampling_skips_other_qids(self):
        tracer = QueryTracer(sample_every=10)
        for qid in range(20):
            tracer.begin(float(qid), qid, "query", "querier-0")
            tracer.end(float(qid) + 0.5, qid, "query", "querier-0")
        assert tracer.spans_begun == 2  # qids 0 and 10

    def test_coverage_accounts_for_sampling(self):
        tracer = QueryTracer(sample_every=10)
        for qid in (0, 10, 20):
            tracer.begin(0.0, qid, "query", "querier-0")
            tracer.end(1.0, qid, "query", "querier-0")
        assert tracer.coverage(answered=25) == 1.0
        assert tracer.coverage(answered=0) == 1.0

    def test_key_correlation_latest_send_wins(self):
        tracer = QueryTracer()
        key = (5, "a.test.", 1)
        tracer.register_key(key, 7)
        tracer.register_key(key, 9)   # the retry
        assert tracer.qid_for(key) == 9
        assert tracer.qid_for(None) is None
        assert tracer.qid_for((1, "other.", 1)) is None

    def test_event_cap_drops_not_grows(self):
        tracer = QueryTracer(max_events=2)
        for qid in range(5):
            tracer.instant(0.0, qid, "x", "net")
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3


class TestTimeSeriesSampler:
    def test_matches_resource_monitor_cadence(self):
        # The sampler must tick at exactly the times the old
        # ResourceMonitor sampled, so migrated figure scripts see
        # identical series.
        loop = EventLoop()
        model = ServerResourceModel(loop, cores=4)
        monitor = ResourceMonitor(loop, model, period=5.0)
        monitor.start()
        sampler = TimeSeriesSampler(loop, period=5.0)
        timeline = ResourceTimeline(sampler, model)
        sampler.start()
        loop.run_until(26.0)
        monitor.stop()
        sampler.stop()
        assert [s.time for s in monitor.samples] == \
            [s.time for s in timeline.samples]
        assert [row["time"] for row in sampler.points] == \
            [s.time for s in monitor.samples]

    def test_probe_columns_and_rates(self):
        loop = EventLoop()
        sampler = TimeSeriesSampler(loop, period=1.0)
        counter = {"sent": 0}
        loop.call_at(0.5, counter.__setitem__, "sent", 10)
        loop.call_at(1.5, counter.__setitem__, "sent", 30)
        sampler.add_probe("sent", lambda: counter["sent"])
        sampler.start()
        loop.run_until(2.5)
        sampler.stop()
        assert sampler.series("sent") == [(1.0, 10), (2.0, 30)]
        assert sampler.rate_series("sent") == [(2.0, 20.0)]
        assert sampler.columns() == ["time", "sent"]

    def test_stop_cancels_future_ticks(self):
        loop = EventLoop()
        sampler = TimeSeriesSampler(loop, period=1.0)
        sampler.start()
        loop.run_until(1.5)
        sampler.stop()
        loop.run_until(5.0)
        assert len(sampler.points) == 1

    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(EventLoop(), period=0.0)

    def test_steady_state_skips_warmup(self):
        loop = EventLoop()
        model = ServerResourceModel(loop, cores=4)
        sampler = TimeSeriesSampler(loop, period=10.0)
        timeline = ResourceTimeline(sampler, model)
        sampler.start()
        loop.run_until(101.0)
        sampler.stop()
        steady = timeline.steady_state(skip=50.0)
        assert steady and steady[0].time >= timeline.samples[0].time + 50.0
        assert ResourceTimeline(sampler, model).steady_state() == []


class TestTelemetryHub:
    def test_defaults_record_nothing(self):
        telemetry = Telemetry()
        assert not telemetry.config.enabled()
        assert not telemetry.per_query
        assert telemetry.tracer is None
        loop = EventLoop()
        telemetry.attach_loop(loop)
        assert telemetry.sampler is None
        network = Network(loop)
        telemetry.attach_network(network)
        assert network.telemetry is None

    def test_tracing_attaches_to_network(self):
        loop = EventLoop()
        network = Network(loop)
        telemetry = Telemetry(TelemetryConfig(trace=True))
        telemetry.attach_network(network)
        assert network.telemetry is telemetry

    def test_clock_follows_loop(self):
        telemetry = Telemetry()
        loop = EventLoop()
        telemetry.attach_loop(loop)
        loop.run_until(3.5)
        assert telemetry.now() == loop.now


class TestExporters:
    def _traced_telemetry(self):
        telemetry = Telemetry(TelemetryConfig(trace=True, metrics=True,
                                              timeseries_period=1.0))
        loop = EventLoop()
        telemetry.attach_loop(loop)
        telemetry.add_probe("qps", lambda: 42.0)
        tracer = telemetry.tracer
        tracer.begin(0.5, 0, "query", "querier-3", qname="a.test.")
        tracer.instant(0.6, 0, "server.recv", "server")
        tracer.instant(0.65, None, "net.fault", "net", kind="loss")
        tracer.end(0.7, 0, "query", "querier-3", outcome="answered")
        loop.run_until(2.5)
        telemetry.stop()
        return telemetry

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self._traced_telemetry())
        json.loads(json.dumps(doc))  # serializable
        events = doc["traceEvents"]
        phases = [event["ph"] for event in events]
        assert phases.count("b") == phases.count("e") == 1
        assert "M" in phases and "C" in phases
        begin = next(e for e in events if e["ph"] == "b")
        assert begin["ts"] == pytest.approx(0.5e6)  # microseconds
        assert begin["pid"] == 1 and begin["tid"] == 3
        server_evt = next(e for e in events if e["name"] == "server.recv")
        assert server_evt["ph"] == "n" and server_evt["pid"] == 2
        fault = next(e for e in events if e["name"] == "net.fault")
        assert fault["ph"] == "i" and fault["s"] == "p"
        assert "id" not in fault

    def test_timeseries_csv(self):
        telemetry = self._traced_telemetry()
        csv = timeseries_csv(telemetry.sampler)
        lines = csv.strip().splitlines()
        assert lines[0] == "time,qps"
        assert lines[1] == "1,42"

    def test_render_telemetry(self):
        text = render_telemetry(self._traced_telemetry())
        assert "trace.spans_ended" in text
        assert "timeseries: 2 samples" in text
        assert render_telemetry(Telemetry()) == \
            "(telemetry off: nothing recorded)"

    def test_render_telemetry_recovery_section(self):
        result = ReplayResult()
        result.respawns = 2
        result.redelivered_records = 40
        result.duplicate_merged = 3
        text = render_telemetry(self._traced_telemetry(), result)
        assert "recovery.respawns             2" in text
        assert "recovery.redelivered_records" in text
        assert "recovery.duplicate_merged" in text
        # Counters that never moved are omitted, and a clean run adds
        # no recovery section at all.
        assert "recovery.watchdog_stalls" not in text
        clean = render_telemetry(self._traced_telemetry(), ReplayResult())
        assert "recovery." not in clean

    def test_render_perf_counters_derived_shares(self):
        perf = PerfCounters()
        perf.incr("server.wire_cache_hits", 200)
        perf.incr("server.wire_cache_misses", 50)
        perf.incr("server.zero_copy_hits", 150)
        text = render_perf_counters(perf)
        assert "server.wire_cache_hit_rate  0.800" in text
        assert "server.zero_copy_share" in text and "0.750" in text

    def test_render_perf_counters_shard_clamp_rate(self):
        from repro.netsim import ShardCoordinator, ShardPlan
        coordinator = ShardCoordinator(ShardPlan(num_shards=2))
        coordinator.epochs_run = 10
        coordinator.fabric.handed_off = 40
        coordinator.fabric.clamped = 4
        perf = PerfCounters()
        coordinator.export_counters(perf)
        text = render_perf_counters(perf)
        assert "shard.epochs" in text
        assert "shard.fabric_handed_off" in text
        assert "shard.fabric_clamp_rate" in text and "0.100" in text


class TestZeroQueryReports:
    """Every renderer must stay well-defined on a run that sent nothing."""

    def test_failure_and_degradation_renderers(self):
        result = ReplayResult()
        assert "unanswered" in render_failure_counts(result)
        assert "servfails_observed" in render_degradation(result)

    def test_quartile_summary_empty(self):
        summary = quartile_summary([])
        assert summary["median"] == 0.0
        assert set(summary) == {"min", "p5", "p25", "median", "p75",
                                "p95", "max"}

    def test_error_summary_empty(self):
        assert ReplayResult().error_summary() == {}

    def test_perf_render_empty(self):
        assert render_perf_counters(PerfCounters()) == \
            "(no perf counters recorded)"
