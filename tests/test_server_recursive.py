"""Tests for the iterative recursive resolver."""

import pytest

from repro.dns import (DNS_PORT, Message, Name, RRType, Rcode, read_zone)
from repro.netsim import EventLoop, Network
from repro.server import (AuthoritativeServer, HostedDnsServer,
                          RecursiveResolver)

ROOT_TEXT = """
$ORIGIN .
@ 3600 IN SOA a.root-servers.net. n. 1 1800 900 604800 86400
@ 3600 IN NS a.root-servers.net.
a.root-servers.net. 3600 IN A 198.41.0.4
com. 172800 IN NS a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
"""

COM_TEXT = """
$ORIGIN com.
@ 3600 IN SOA a.gtld-servers.net. n. 1 1800 900 604800 86400
@ 3600 IN NS a.gtld-servers.net.
example.com. 172800 IN NS ns1.example.com.
ns1.example.com. 172800 IN A 192.0.2.53
noglue.com. 172800 IN NS ns.example.com.
"""

EXAMPLE_TEXT = """
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 192.0.2.53
ns IN A 192.0.2.54
www 300 IN A 192.0.2.80
alias 300 IN CNAME www
external 300 IN CNAME www.noglue.com.
"""

NOGLUE_TEXT = """
$ORIGIN noglue.com.
@ 3600 IN SOA ns.example.com. h. 1 1800 900 604800 86400
@ 3600 IN NS ns.example.com.
www 300 IN A 203.0.113.80
"""


class Deployment:
    def __init__(self, drop_root=False):
        self.loop = EventLoop()
        self.network = Network(self.loop)
        root = read_zone(ROOT_TEXT, origin=Name.from_text("."))
        com = read_zone(COM_TEXT, origin=Name.from_text("com."))
        example = read_zone(EXAMPLE_TEXT,
                            origin=Name.from_text("example.com."))
        noglue = read_zone(NOGLUE_TEXT, origin=Name.from_text("noglue.com."))
        if not drop_root:
            HostedDnsServer(self.network.add_host("root", "198.41.0.4"),
                            AuthoritativeServer.single_view([root]))
        HostedDnsServer(self.network.add_host("com", "192.5.6.30"),
                        AuthoritativeServer.single_view([com]))
        # ns.example.com (192.0.2.54) also serves noglue.com.
        host = self.network.add_host("example", "192.0.2.53")
        host.add_address("192.0.2.54")
        engine = AuthoritativeServer.single_view([example, noglue])
        HostedDnsServer(host, engine)
        HostedDnsServer(host, engine, address="192.0.2.54")

        rec_host = self.network.add_host("recursive", "10.0.0.53")
        self.resolver = RecursiveResolver(
            rec_host,
            {Name.from_text("a.root-servers.net."): ["198.41.0.4"]},
            query_timeout=1.0)
        HostedDnsServer(rec_host, self.resolver)

        self.stub = self.network.add_host("stub", "10.0.0.1")
        self.answers = []
        self._sock = self.stub.bind_udp(
            "10.0.0.1", 0,
            lambda s, d, a, p: self.answers.append(Message.from_wire(d)))

    def query(self, qname, qtype=RRType.A, msg_id=1):
        message = Message.make_query(Name.from_text(qname), qtype,
                                     msg_id=msg_id)
        self._sock.sendto(message.to_wire(), "10.0.0.53", DNS_PORT)

    def run(self, seconds=30.0):
        self.loop.run(max_time=self.loop.now + seconds)


class TestResolution:
    def test_walks_hierarchy(self):
        dep = Deployment()
        dep.query("www.example.com.")
        dep.run()
        assert dep.answers[0].rcode == Rcode.NOERROR
        addresses = [rr.rdata.address for rr in dep.answers[0].answer
                     if rr.rrtype == RRType.A]
        assert addresses == ["192.0.2.80"]
        # root -> com -> example: exactly three upstream queries.
        assert dep.resolver.stats.upstream_queries == 3

    def test_cache_answers_second_query(self):
        dep = Deployment()
        dep.query("www.example.com.", msg_id=1)
        dep.run()
        upstream = dep.resolver.stats.upstream_queries
        dep.query("www.example.com.", msg_id=2)
        dep.run()
        assert len(dep.answers) == 2
        assert dep.resolver.stats.upstream_queries == upstream

    def test_cached_delegation_shortcuts(self):
        dep = Deployment()
        dep.query("www.example.com.", msg_id=1)
        dep.run()
        upstream = dep.resolver.stats.upstream_queries
        dep.query("alias.example.com.", msg_id=2)
        dep.run()
        # example.com's NS is cached: only one more upstream query.
        assert dep.resolver.stats.upstream_queries == upstream + 1

    def test_nxdomain_propagates(self):
        dep = Deployment()
        dep.query("missing.example.com.")
        dep.run()
        assert dep.answers[0].rcode == Rcode.NXDOMAIN

    def test_negative_cache(self):
        dep = Deployment()
        dep.query("missing.example.com.", msg_id=1)
        dep.run()
        upstream = dep.resolver.stats.upstream_queries
        dep.query("missing.example.com.", msg_id=2)
        dep.run()
        assert dep.answers[1].rcode == Rcode.NXDOMAIN
        assert dep.resolver.stats.upstream_queries == upstream

    def test_cname_chase(self):
        dep = Deployment()
        dep.query("alias.example.com.")
        dep.run()
        answer = dep.answers[0]
        types = [rr.rrtype for rr in answer.answer]
        assert RRType.CNAME in types and RRType.A in types

    def test_cross_zone_cname(self):
        dep = Deployment()
        dep.query("external.example.com.")
        dep.run()
        answer = dep.answers[0]
        assert answer.rcode == Rcode.NOERROR
        addresses = [rr.rdata.address for rr in answer.answer
                     if rr.rrtype == RRType.A]
        assert "203.0.113.80" in addresses

    def test_glueless_delegation_resolved(self):
        dep = Deployment()
        dep.query("www.noglue.com.")
        dep.run()
        answer = dep.answers[0]
        assert answer.rcode == Rcode.NOERROR
        addresses = [rr.rdata.address for rr in answer.answer
                     if rr.rrtype == RRType.A]
        assert "203.0.113.80" in addresses


class TestFailureHandling:
    def test_unreachable_root_servfails(self):
        dep = Deployment(drop_root=True)
        dep.query("www.example.com.")
        dep.run(60.0)
        assert dep.answers and dep.answers[0].rcode == Rcode.SERVFAIL
        assert dep.resolver.stats.upstream_timeouts >= 1

    def test_ra_flag_set(self):
        dep = Deployment()
        dep.query("www.example.com.")
        dep.run()
        from repro.dns import Flag
        assert dep.answers[0].flags & Flag.RA


class TestQueryAggregation:
    """Duplicate in-flight questions share one resolution."""

    def test_concurrent_duplicates_aggregate(self):
        dep = Deployment()
        dep.query("www.example.com.", msg_id=1)
        dep.query("www.example.com.", msg_id=2)
        dep.query("www.example.com.", msg_id=3)
        dep.run()
        assert len(dep.answers) == 3
        assert {m.msg_id for m in dep.answers} == {1, 2, 3}
        assert all(m.rcode == Rcode.NOERROR for m in dep.answers)
        # Only one hierarchy walk happened.
        assert dep.resolver.stats.upstream_queries == 3
        assert dep.resolver.stats.aggregated_queries == 2

    def test_different_questions_not_aggregated(self):
        dep = Deployment()
        dep.query("www.example.com.", msg_id=1)
        dep.query("alias.example.com.", msg_id=2)
        dep.run()
        assert dep.resolver.stats.aggregated_queries == 0

    def test_answers_carry_full_sections(self):
        dep = Deployment()
        dep.query("www.example.com.", msg_id=1)
        dep.query("www.example.com.", msg_id=2)
        dep.run()
        for message in dep.answers:
            addresses = [rr.rdata.address for rr in message.answer
                         if rr.rrtype == RRType.A]
            assert addresses == ["192.0.2.80"]


class TestTcpFallback:
    """RFC 7766: truncated UDP answers are re-asked over TCP."""

    def test_truncated_answer_retried_over_tcp(self):
        from repro.dns import Flag, Question
        import repro.server.recursive as recursive_module

        dep = Deployment()
        results = []
        resolution = recursive_module._Resolution(
            question=Question(Name.from_text("www.example.com."),
                              RRType.A),
            on_complete=results.append, dnssec_ok=False)
        truncated = Message(msg_id=77)
        truncated.set_flag(Flag.QR)
        truncated.set_flag(Flag.TC)
        # The resolver received a TC=1 reply from 192.0.2.53: it must
        # re-ask that server over TCP and get the full answer.
        dep.resolver._retry_over_tcp(resolution, "192.0.2.53", truncated)
        dep.run()
        assert dep.resolver.stats.tcp_fallbacks == 1
        assert results and results[0].rcode == Rcode.NOERROR
        addresses = [rr.rdata.address for rr in results[0].answer
                     if rr.rrtype == RRType.A]
        assert addresses == ["192.0.2.80"]

    def test_tc_response_triggers_fallback_path(self):
        from repro.dns import Flag, Question
        import repro.server.recursive as recursive_module

        dep = Deployment()
        calls = []
        dep.resolver._retry_over_tcp = \
            lambda resolution, address, response: calls.append(address)
        resolution = recursive_module._Resolution(
            question=Question(Name.from_text("www.example.com."),
                              RRType.A),
            on_complete=lambda m: None, dnssec_ok=False)
        truncated = Message(msg_id=5)
        truncated.set_flag(Flag.QR)
        truncated.set_flag(Flag.TC)
        dep.resolver._process_response(resolution, truncated,
                                       source="198.41.0.4")
        assert calls == ["198.41.0.4"]

    def test_tc_without_source_processed_normally(self):
        from repro.dns import Flag, Question
        import repro.server.recursive as recursive_module

        dep = Deployment()
        resolution = recursive_module._Resolution(
            question=Question(Name.from_text("www.example.com."),
                              RRType.A),
            on_complete=lambda m: None, dnssec_ok=False)
        truncated = Message(msg_id=5, rcode=Rcode.NXDOMAIN)
        truncated.set_flag(Flag.QR)
        truncated.set_flag(Flag.TC)
        dep.resolver._process_response(resolution, truncated)
        assert dep.resolver.stats.tcp_fallbacks == 0
