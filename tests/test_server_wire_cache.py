"""Tests for the response-wire cache and the serve_wire fast path.

The load-bearing property is *differential*: for any query, the cached
``serve_wire`` bytes must equal the uncached
``handle_query`` + ``encode_response`` bytes once the 2-byte message ID
is zeroed — the optimization may never change what the paper's pipeline
would have sent.  The comparison runs on the shared
:class:`repro.verify.Oracle` library.
"""

import pytest

from repro.dns import Edns, Flag, Message, Name, RRType, Rcode, read_zone
from repro.server import (AuthoritativeServer, ResponseWireCache, View,
                          WireCacheEntry, ZoneSet)
from repro.trace import zipf_trace
from repro.verify import Observation, Oracle, zero_msg_id

ZONE_TEXT = """
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 192.0.2.53
www 300 IN A 192.0.2.80
alias 300 IN CNAME www
sub 172800 IN NS ns.sub
ns.sub 172800 IN A 192.0.2.54
*.wild 60 IN A 192.0.2.99
""" + "\n".join(f"big 60 IN A 10.7.{i // 200}.{i % 200 + 1}"
                for i in range(60))


def example_zone():
    return read_zone(ZONE_TEXT, origin=Name.from_text("example.com."))


def make_pair():
    """(cached server, reference server without a cache) over equal data."""
    cached = AuthoritativeServer.single_view([example_zone()])
    reference = AuthoritativeServer.single_view([example_zone()])
    reference.wire_cache = None
    return cached, reference


def zero_id(wire: bytes) -> bytes:
    return b"\x00\x00" + wire[2:]


def query_for(qname, qtype=RRType.A, msg_id=1, edns=None):
    return Message.make_query(Name.from_text(qname), qtype, msg_id=msg_id,
                              edns=edns)


INTERESTING_QUERIES = [
    ("www.example.com.", RRType.A, None),            # positive answer
    ("WWW.Example.COM.", RRType.A, None),            # 0x20-style case echo
    ("alias.example.com.", RRType.A, None),          # CNAME chain
    ("www.example.com.", RRType.NS, None),           # NODATA
    ("nope.example.com.", RRType.A, None),           # NXDOMAIN
    ("foo.sub.example.com.", RRType.A, None),        # referral
    ("a.wild.example.com.", RRType.A, None),         # wildcard synthesis
    ("other.test.", RRType.A, None),                 # REFUSED (no zone)
    ("big.example.com.", RRType.A, None),            # truncated at 512
    ("big.example.com.", RRType.A, Edns()),          # fits under EDNS
    ("www.example.com.", RRType.A, Edns(dnssec_ok=True)),  # DO bit
]


def serve_all(server, queries):
    """Run ``(query, source, transport)`` triples through one engine and
    capture what it sent plus where its stats ended up."""
    wires = [server.serve_wire(query, source=source, transport=transport)
             for query, source, transport in queries]
    return Observation.capture(wires, facts=dict(vars(server.stats)))


def wire_cache_oracle():
    cached, reference = make_pair()
    return cached, Oracle(
        "wire-cache",
        baseline=lambda queries: serve_all(reference, queries),
        candidate=lambda queries: serve_all(cached, queries),
        normalize_wire=zero_msg_id)


class TestDifferential:
    @pytest.mark.parametrize("qname,qtype,edns", INTERESTING_QUERIES)
    @pytest.mark.parametrize("transport", ["udp", "tcp"])
    def test_cached_matches_uncached(self, qname, qtype, edns, transport):
        cached, oracle = wire_cache_oracle()
        workload = [(query_for(qname, qtype, msg_id=msg_id, edns=edns),
                     None, transport)
                    for msg_id in (7, 4242)]  # second ask is a cache hit
        report = oracle.check(workload)
        # The oracle masks IDs for comparison, but the real reply must
        # still echo the client's message ID.
        for (query, _src, _tp), wire in zip(workload,
                                            report.candidate.wires):
            raw = cached.serve_wire(query, transport=_tp)
            assert raw[:2] == query.msg_id.to_bytes(2, "big")

    def test_every_query_of_a_zipf_replay_matches(self):
        # The acceptance-criterion sweep: a whole synthetic trace, every
        # response byte-compared against the uncached engine, twice so
        # the second pass is served almost entirely from the cache.
        cached, oracle = wire_cache_oracle()
        trace = zipf_trace(400, population=30, domain="wild.example.com.",
                           server="192.0.2.1")
        workload = [(Message.from_wire(record.wire), record.src, "udp")
                    for _pass in range(2) for record in trace.records]
        oracle.check(workload)
        assert cached.wire_cache.hit_rate() > 0.5

    def test_stats_match_uncached_engine(self):
        # Replaying stat deltas on hits must leave ServerStats exactly
        # where the uncached engine would have put them; the oracle's
        # facts channel compares the two ServerStats snapshots.
        _cached, oracle = wire_cache_oracle()
        workload = [(query_for(qname, qtype, edns=edns), None, "udp")
                    for _pass in range(3)
                    for qname, qtype, edns in INTERESTING_QUERIES]
        oracle.check(workload)


class TestCacheBehaviour:
    def test_hits_and_misses_counted(self):
        server, _ = make_pair()
        for _ in range(5):
            server.serve_wire(query_for("www.example.com."))
        assert server.wire_cache.hits == 4
        assert server.wire_cache.misses == 1
        assert server.wire_cache.hit_rate() == 0.8

    def test_distinct_limits_cached_separately(self):
        server, reference = make_pair()
        plain = query_for("big.example.com.")
        edns = query_for("big.example.com.", edns=Edns())
        truncated = server.serve_wire(plain)
        full = server.serve_wire(edns)
        assert Message.from_wire(truncated).flags & Flag.TC
        assert not Message.from_wire(full).flags & Flag.TC
        assert server.wire_cache.misses == 2

    def test_case_variants_are_distinct_entries(self):
        # The question section echoes the query's case, so the wire
        # differs; keying on exact-case labels keeps both correct.
        server, reference = make_pair()
        lower = server.serve_wire(query_for("www.example.com."))
        upper = server.serve_wire(query_for("WWW.EXAMPLE.COM."))
        assert lower != upper
        assert server.wire_cache.misses == 2
        assert zero_id(upper) == zero_id(
            reference.serve_wire(query_for("WWW.EXAMPLE.COM.")))

    def test_multi_question_bypasses_cache(self):
        server, _ = make_pair()
        query = query_for("www.example.com.")
        query.question.append(query.question[0])
        wire = server.serve_wire(query)
        assert Message.from_wire(wire).rcode == Rcode.NOERROR
        assert len(server.wire_cache) == 0

    def test_unknown_view_bypasses_cache(self):
        zone = example_zone()
        server = AuthoritativeServer(
            [View("internal", ZoneSet([zone]), match_clients=("10.0.0.1",))])
        wire = server.serve_wire(query_for("www.example.com."),
                                 source="203.0.113.9")
        assert Message.from_wire(wire).rcode == Rcode.REFUSED
        assert len(server.wire_cache) == 0

    def test_disabled_cache_still_serves(self):
        server = AuthoritativeServer.single_view([example_zone()])
        server.wire_cache = None
        wire = server.serve_wire(query_for("www.example.com.", msg_id=77))
        message = Message.from_wire(wire)
        assert message.msg_id == 77
        assert message.rcode == Rcode.NOERROR


class TestInvalidation:
    def test_zone_mutation_evicts(self):
        server, _ = make_pair()
        query = query_for("www.example.com.")
        before = server.serve_wire(query)
        zone = server.views[0].zones.find(Name.from_text("www.example.com."))
        zone.remove(Name.from_text("www.example.com."), RRType.A)
        from repro.dns.rrset import RR
        from repro.dns import rdata as rd
        from repro.dns.constants import RRClass
        zone.add_rr(RR(Name.from_text("www.example.com."), 300, RRClass.IN,
                       rd.A("192.0.2.81")))
        after = server.serve_wire(query)
        assert after != before
        assert Message.from_wire(after).answer[0].rdata.address == "192.0.2.81"
        assert server.wire_cache.invalidations == 1

    def test_refused_entries_invalidated_by_new_zone(self):
        server = AuthoritativeServer.single_view([])
        query = query_for("www.example.com.")
        assert Message.from_wire(server.serve_wire(query)).rcode == \
            Rcode.REFUSED
        server.views[0].zones.add(example_zone())
        response = Message.from_wire(server.serve_wire(query))
        assert response.rcode == Rcode.NOERROR
        assert response.answer


class TestResponseWireCacheUnit:
    def entry(self, wire=b"\x00\x00payload"):
        return WireCacheEntry(wire, zones_version=1, zone=None,
                              zone_generation=-1, stat_deltas=(0,) * 5)

    def test_lru_eviction(self):
        cache = ResponseWireCache(max_entries=2)
        cache.put("a", self.entry())
        cache.put("b", self.entry())
        cache.get("a", 1)                 # refresh a
        cache.put("c", self.entry())      # evicts b
        assert cache.get("a", 1) is not None
        assert cache.get("b", 1) is None
        assert cache.evictions == 1

    def test_stale_version_dropped(self):
        cache = ResponseWireCache()
        cache.put("a", self.entry())
        assert cache.get("a", zones_version=2) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_clear_counts_invalidations(self):
        cache = ResponseWireCache()
        cache.put("a", self.entry())
        cache.put("b", self.entry())
        cache.clear()
        assert cache.invalidations == 2
        assert len(cache) == 0

    def test_hit_rate_empty_is_none(self):
        assert ResponseWireCache().hit_rate() is None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResponseWireCache(max_entries=0)

    def test_counters_dict(self):
        cache = ResponseWireCache()
        cache.put("a", self.entry())
        cache.get("a", 1)
        cache.get("missing", 1)
        assert cache.counters() == {"entries": 1, "hits": 1, "misses": 1,
                                    "evictions": 0, "invalidations": 0}
