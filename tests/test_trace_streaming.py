"""The streaming trace pipeline: chunked binary v2, shard-file sets,
streaming generators, and the mutator timestamp clamps.

These are the constant-memory building blocks of the 10⁸-query replay:
every test here exercises a path that must never materialize a trace.
"""

import io
import struct

import pytest

from repro.netsim.shard import shard_of
from repro.trace import (BRootWorkload, ChunkedTraceWriter, QueryMutator,
                         ShardSetWriter, Trace, TraceFormatError, iter_binary,
                         iter_shard_file, iter_shards, make_query_record,
                         read_binary, read_manifest, scale_stream, scale_time,
                         scan_binary, shift_time, split_shards,
                         verify_shard_set, write_binary, write_binary_stream)
from repro.trace.binfmt import (MAX_CHUNK, MAX_RECORD, _CHUNK_HEADER,
                                _HEADER, MAGIC, V1)


def records_for(count, start=0.0, step=0.01, clients=7):
    return [make_query_record(start + i * step, f"10.0.{i % clients}.1",
                              f"q{i}.example.com.")
            for i in range(count)]


def v2_bytes(records, chunk_records=4096):
    stream = io.BytesIO()
    write_binary_stream(records, stream, chunk_records=chunk_records)
    return stream.getvalue()


class TestChunkedRoundTrip:
    @pytest.mark.parametrize("count,chunk_records", [
        (0, 4096), (1, 4096), (1, 1), (5, 2), (100, 7), (1000, 4096),
    ])
    def test_round_trip(self, count, chunk_records):
        records = records_for(count)
        data = v2_bytes(records, chunk_records)
        restored = list(iter_binary(io.BytesIO(data)))
        assert len(restored) == count
        for original, copy in zip(records, restored):
            assert copy.timestamp == original.timestamp
            assert copy.src == original.src
            assert copy.wire == original.wire

    def test_chunk_boundary_exact_multiple(self):
        # Record count an exact multiple of the chunk size: the final
        # chunk is full, and the trailer still follows it cleanly.
        records = records_for(12)
        data = v2_bytes(records, chunk_records=4)
        assert len(list(iter_binary(io.BytesIO(data)))) == 12

    def test_read_binary_materializes(self):
        records = records_for(9)
        trace = read_binary(io.BytesIO(v2_bytes(records)), name="t")
        assert isinstance(trace, Trace)
        assert len(trace) == 9
        assert trace.name == "t"

    def test_write_binary_accepts_trace(self):
        trace = Trace(records_for(4), name="via-trace")
        stream = io.BytesIO()
        assert write_binary(trace, stream) == 4
        assert len(list(iter_binary(io.BytesIO(stream.getvalue())))) == 4

    def test_writer_is_streaming(self):
        # A pure generator flows through: nothing requires len() or
        # a second pass.
        def generate():
            for record in records_for(50):
                yield record
        stream = io.BytesIO()
        assert write_binary_stream(generate(), stream, chunk_records=8) == 50

    def test_scan_binary(self):
        records = records_for(11, start=2.5, step=0.5)
        info = scan_binary(io.BytesIO(v2_bytes(records)))
        assert info["records"] == 11
        assert info["first_timestamp"] == 2.5
        assert info["last_timestamp"] == 2.5 + 10 * 0.5

    def test_scan_empty(self):
        info = scan_binary(io.BytesIO(v2_bytes([])))
        assert info == {"records": 0, "first_timestamp": None,
                        "last_timestamp": None}


class TestTruncationDetection:
    """The v1 blind spot, closed: every truncation raises."""

    def test_abandoned_writer_detected(self):
        # An exception mid-write leaves no trailer; readers refuse it.
        stream = io.BytesIO()
        with pytest.raises(RuntimeError):
            with ChunkedTraceWriter(stream, chunk_records=2) as writer:
                for record in records_for(5):
                    writer.write(record)
                raise RuntimeError("simulated crash")
        with pytest.raises(TraceFormatError, match="trunc|trailer"):
            list(iter_binary(io.BytesIO(stream.getvalue())))

    @pytest.mark.parametrize("drop", [1, 4, 7, 11, 12])
    def test_truncated_tail_detected(self, drop):
        data = v2_bytes(records_for(10), chunk_records=3)
        with pytest.raises(TraceFormatError):
            list(iter_binary(io.BytesIO(data[:-drop])))

    def test_truncation_at_chunk_boundary_detected(self):
        # Cut exactly between two chunks: no partial record, no partial
        # chunk — only the missing trailer gives it away.
        records = records_for(6)
        one_chunk = v2_bytes(records[:3], chunk_records=3)
        two_chunks = v2_bytes(records, chunk_records=3)
        # Strip the first file's trailer to find the boundary offset.
        boundary = len(one_chunk) - 12   # u32 0 + u64 count
        with pytest.raises(TraceFormatError, match="trailer"):
            list(iter_binary(io.BytesIO(two_chunks[:boundary])))

    def test_lying_trailer_detected(self):
        data = bytearray(v2_bytes(records_for(4), chunk_records=2))
        data[-8:] = struct.pack("!Q", 9999)
        with pytest.raises(TraceFormatError, match="trailer declares"):
            list(iter_binary(io.BytesIO(bytes(data))))

    def test_trailing_garbage_detected(self):
        data = v2_bytes(records_for(2)) + b"junk"
        with pytest.raises(TraceFormatError, match="after end-of-trace"):
            list(iter_binary(io.BytesIO(data)))

    def test_lying_chunk_record_count(self):
        data = bytearray(v2_bytes(records_for(3), chunk_records=3))
        # chunk record_count field sits right after the file header + u32.
        offset = _HEADER.size + 4
        data[offset:offset + 4] = struct.pack("!I", 7)
        with pytest.raises(TraceFormatError, match="declared 7"):
            list(iter_binary(io.BytesIO(bytes(data))))


class TestHostileLengths:
    def test_hostile_chunk_length(self):
        data = _HEADER.pack(MAGIC, 2, 0) \
            + _CHUNK_HEADER.pack(MAX_CHUNK + 1, 1)
        with pytest.raises(TraceFormatError, match="exceeds maximum"):
            list(iter_binary(io.BytesIO(data)))

    def test_hostile_record_length(self):
        payload = struct.pack("!I", MAX_RECORD + 1) + b"\x00" * 16
        data = _HEADER.pack(MAGIC, 2, 0) \
            + _CHUNK_HEADER.pack(len(payload), 1) + payload
        with pytest.raises(TraceFormatError, match="exceeds maximum"):
            list(iter_binary(io.BytesIO(data)))

    def test_bad_magic_and_version(self):
        with pytest.raises(TraceFormatError, match="magic"):
            list(iter_binary(io.BytesIO(b"NOPE" + b"\x00" * 16)))
        with pytest.raises(TraceFormatError, match="version"):
            list(iter_binary(io.BytesIO(_HEADER.pack(MAGIC, 99, 0))))

    def test_hostile_wire_corpus_never_crashes(self):
        # Adversarial byte soup from the fuzz generators must fail as
        # TraceFormatError (or read cleanly), never anything else.
        from repro.verify.generators import hostile_wires
        for blob in hostile_wires(seed=7, count=200):
            try:
                list(iter_binary(io.BytesIO(MAGIC + b"\x00\x02\x00\x00"
                                            + blob)))
            except TraceFormatError:
                pass

    def test_v1_legacy_still_reads(self):
        from repro.trace.binfmt import _pack_record
        records = records_for(5)
        data = _HEADER.pack(MAGIC, V1, 0) \
            + b"".join(_pack_record(r) for r in records)
        restored = list(iter_binary(io.BytesIO(data)))
        assert [r.wire for r in restored] == [r.wire for r in records]

    def test_v1_mid_record_truncation_detected(self):
        from repro.trace.binfmt import _pack_record
        data = _HEADER.pack(MAGIC, V1, 0) \
            + b"".join(_pack_record(r) for r in records_for(2))
        with pytest.raises(TraceFormatError):
            list(iter_binary(io.BytesIO(data[:-3])))


class TestShardSets:
    def split(self, tmp_path, count=60, num_shards=4, chunk_records=8):
        records = records_for(count, clients=11)
        manifest = split_shards(iter(records), str(tmp_path), num_shards,
                                chunk_records=chunk_records)
        return records, manifest

    def test_split_and_manifest(self, tmp_path):
        records, manifest = self.split(tmp_path)
        assert manifest["total_records"] == len(records)
        assert manifest["num_shards"] == 4
        assert manifest["first_timestamp"] == records[0].timestamp
        assert manifest["last_timestamp"] == records[-1].timestamp
        assert sum(s["records"] for s in manifest["shards"]) == len(records)
        assert read_manifest(str(tmp_path)) == manifest

    def test_sticky_by_source(self, tmp_path):
        self.split(tmp_path)
        manifest = verify_shard_set(str(tmp_path))   # raises on any stray
        for index, entry in enumerate(manifest["shards"]):
            for record in iter_shard_file(
                    str(tmp_path / entry["file"]), read_ahead=0):
                assert shard_of(record.src, 4) == index

    @pytest.mark.parametrize("read_ahead", [0, 16, 4096])
    def test_iter_shards_round_trip(self, tmp_path, read_ahead):
        records, _ = self.split(tmp_path)
        streamed = list(iter_shards(str(tmp_path), read_ahead=read_ahead))
        # Concatenated shards are a permutation of the input.
        assert sorted(r.wire for r in streamed) \
            == sorted(r.wire for r in records)

    def test_per_shard_order_preserved(self, tmp_path):
        records, manifest = self.split(tmp_path)
        for index in range(manifest["num_shards"]):
            shard = list(iter_shard_file(
                str(tmp_path / manifest["shards"][index]["file"])))
            expected = [r for r in records if shard_of(r.src, 4) == index]
            assert [r.wire for r in shard] == [r.wire for r in expected]
            assert all(a.timestamp <= b.timestamp
                       for a, b in zip(shard, shard[1:]))

    def test_missing_manifest_refused(self, tmp_path):
        with pytest.raises(TraceFormatError, match="incomplete"):
            read_manifest(str(tmp_path))

    def test_abandoned_split_refused(self, tmp_path):
        with pytest.raises(RuntimeError):
            with ShardSetWriter(str(tmp_path), 2) as writer:
                writer.write_all(records_for(5))
                raise RuntimeError("simulated crash")
        with pytest.raises(TraceFormatError, match="incomplete"):
            read_manifest(str(tmp_path))

    def test_reader_failure_propagates(self, tmp_path):
        self.split(tmp_path)
        path = tmp_path / "shard-0000.bin"
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(TraceFormatError):
            list(iter_shard_file(str(path)))

    def test_empty_split(self, tmp_path):
        manifest = split_shards(iter(()), str(tmp_path), 3)
        assert manifest["total_records"] == 0
        assert manifest["first_timestamp"] is None
        assert list(iter_shards(str(tmp_path))) == []
        verify_shard_set(str(tmp_path))


class TestStreamingGenerators:
    def test_generate_stream_matches_generate(self):
        for seed in (1, 42):
            workload = BRootWorkload(duration=3.0, mean_rate=300.0,
                                     client_count=40, seed=seed)
            eager = list(workload.generate())
            streamed = list(workload.generate_stream())
            assert len(streamed) == len(eager)
            for a, b in zip(eager, streamed):
                assert (a.timestamp, a.src, a.sport, a.protocol, a.wire) \
                    == (b.timestamp, b.src, b.sport, b.protocol, b.wire)

    def test_generate_stream_monotonic(self):
        workload = BRootWorkload(duration=2.0, mean_rate=500.0, seed=9)
        last = -1.0
        for record in workload.generate_stream():
            assert record.timestamp >= last
            last = record.timestamp

    def test_scale_stream_shape(self):
        records = list(scale_stream(2000, mean_rate=100_000.0,
                                    client_count=500, seed=3))
        assert len(records) == 2000
        assert all(a.timestamp <= b.timestamp
                   for a, b in zip(records, records[1:]))
        # Message ids spliced in: nonzero, and varying.
        ids = {r.wire[:2] for r in records[:500]}
        assert b"\x00\x00" not in ids and len(ids) > 400
        protocols = {r.protocol for r in records}
        assert protocols == {"udp", "tcp"}
        tcp = sum(1 for r in records if r.protocol == "tcp")
        assert abs(tcp / len(records) - 0.03) < 0.01

    def test_scale_stream_deterministic(self):
        a = [(r.timestamp, r.src, r.wire)
             for r in scale_stream(300, seed=11)]
        b = [(r.timestamp, r.src, r.wire)
             for r in scale_stream(300, seed=11)]
        assert a == b

    def test_scale_stream_is_lazy(self):
        from itertools import islice
        # 10¹² queries declared; taking 5 must return instantly.
        head = list(islice(scale_stream(10 ** 12), 5))
        assert len(head) == 5


class TestMutatorTimestampClamps:
    def records(self):
        return [make_query_record(t, "10.0.0.1", "q.example.com.")
                for t in (5.0, 6.0, 8.0)]

    def test_scale_time_zero_collapses_monotonic(self):
        mutated = list(QueryMutator([scale_time(0.0)])
                       .stream(self.records()))
        assert [r.timestamp for r in mutated] == [5.0, 5.0, 5.0]

    def test_scale_time_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            scale_time(-1.0)

    def test_shift_time_clamps_at_zero(self):
        mutated = list(QueryMutator([shift_time(-6.5)])
                       .stream(self.records()))
        assert [r.timestamp for r in mutated] == [0.0, 0.0, 1.5]
        assert all(a.timestamp <= b.timestamp
                   for a, b in zip(mutated, mutated[1:]))

    def test_apply_goes_through_stream(self):
        trace = Trace(self.records(), name="t")
        mutator = QueryMutator([shift_time(-10.0)])
        out = mutator.apply(trace)
        assert isinstance(out, Trace)
        assert [r.timestamp for r in out.records] == [0.0, 0.0, 0.0]
        assert out.name == "t:mutated"

    def test_stream_is_lazy(self):
        consumed = []

        def source():
            for record in self.records():
                consumed.append(record.timestamp)
                yield record

        stream = QueryMutator([shift_time(1.0)]).stream(source())
        next(stream)
        assert len(consumed) == 1   # nothing materialized ahead
