"""Tests for CDN-style dynamic answers (paper future work, §2.3)."""

import pytest

from repro.dns import Edns, Message, Name, RRClass, RRType, Rcode, read_zone
from repro.server import AuthoritativeServer, CdnPolicy, DynamicOverlay

ZONE = """
$ORIGIN cdn.example.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 192.0.2.1
static IN A 192.0.2.50
www IN A 192.0.2.99
"""

POOL = ["203.0.113.1", "203.0.113.2", "203.0.113.3"]


def make_server(policy):
    zone = read_zone(ZONE, origin=Name.from_text("cdn.example."))
    overlay = DynamicOverlay()
    overlay.add(Name.from_text("www.cdn.example."), policy)
    server = AuthoritativeServer.single_view([zone])
    server.dynamic = overlay
    return server, overlay


def ask(server, qname="www.cdn.example.", source="10.0.0.1"):
    query = Message.make_query(Name.from_text(qname), RRType.A, msg_id=1)
    response = server.handle_query(query, source=source)
    return [rr.rdata.address for rr in response.answer
            if rr.rrtype == RRType.A]


class TestPolicies:
    def test_round_robin_rotates(self):
        policy = CdnPolicy(POOL, strategy="round_robin")
        picks = [policy.pick("10.0.0.1", 0.0) for _ in range(6)]
        assert picks == POOL + POOL

    def test_source_hash_sticky(self):
        policy = CdnPolicy(POOL, strategy="source_hash")
        a = [policy.pick("10.0.0.1", 0.0) for _ in range(5)]
        assert len(set(a)) == 1
        others = {policy.pick(f"10.0.9.{i}", 0.0) for i in range(40)}
        assert len(others) > 1  # different clients steer differently

    def test_time_window_switches(self):
        policy = CdnPolicy(POOL, strategy="time_window", window=10.0)
        assert policy.pick("x", 0.0) == policy.pick("x", 9.9)
        assert policy.pick("x", 0.0) != policy.pick("x", 10.1)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            CdnPolicy([])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            CdnPolicy(POOL, strategy="geo-dns")


class TestServerIntegration:
    def test_dynamic_name_rotates_per_query(self):
        server, overlay = make_server(CdnPolicy(POOL))
        answers = [ask(server)[0] for _ in range(3)]
        assert answers == POOL
        assert overlay.answers_synthesized == 3

    def test_static_names_unaffected(self):
        server, _overlay = make_server(CdnPolicy(POOL))
        assert ask(server, "static.cdn.example.") == ["192.0.2.50"]

    def test_non_a_queries_fall_through(self):
        server, _overlay = make_server(CdnPolicy(POOL))
        query = Message.make_query(Name.from_text("www.cdn.example."),
                                   RRType.AAAA, msg_id=2)
        response = server.handle_query(query)
        assert response.rcode == Rcode.NOERROR
        assert not response.answer  # NODATA from the static zone

    def test_policy_ttl_used(self):
        server, _overlay = make_server(CdnPolicy(POOL, ttl=7))
        query = Message.make_query(Name.from_text("www.cdn.example."),
                                   RRType.A, msg_id=3)
        response = server.handle_query(query)
        assert response.answer[0].ttl == 7

    def test_source_hash_through_server(self):
        server, _overlay = make_server(CdnPolicy(POOL,
                                                 strategy="source_hash"))
        a = {ask(server, source="10.1.1.1")[0] for _ in range(4)}
        assert len(a) == 1


class TestWireCacheInteraction:
    """Dynamic answers and zone updates must never be masked by the
    response-wire cache."""

    def ask_wire(self, server, qname="www.cdn.example.", msg_id=1):
        query = Message.make_query(Name.from_text(qname), RRType.A,
                                   msg_id=msg_id)
        wire = server.serve_wire(query)
        from repro.dns import Message as M
        return [rr.rdata.address for rr in M.from_wire(wire).answer
                if rr.rrtype == RRType.A]

    def test_overlay_names_bypass_cache(self):
        # Rotation must continue query over query; a cached wire would
        # freeze the pool on the first pick.
        server, overlay = make_server(CdnPolicy(POOL))
        answers = [self.ask_wire(server, msg_id=i + 1)[0] for i in range(3)]
        assert answers == POOL
        assert overlay.answers_synthesized == 3
        assert len(server.wire_cache) == 0

    def test_policy_added_after_caching_takes_effect(self):
        server, overlay = make_server(CdnPolicy(POOL))
        # static name gets cached first...
        assert self.ask_wire(server, "static.cdn.example.") == ["192.0.2.50"]
        assert server.wire_cache.misses == 1
        # ...then a policy covers it; the overlay wins immediately.
        overlay.add(Name.from_text("static.cdn.example."), CdnPolicy(POOL))
        assert self.ask_wire(server, "static.cdn.example.") == [POOL[0]]

    def test_dynamic_zone_update_evicts_stale_wire(self):
        from repro.dns import rdata as rd
        from repro.dns.rrset import RR
        server, _overlay = make_server(CdnPolicy(POOL))
        target = Name.from_text("static.cdn.example.")
        assert self.ask_wire(server, "static.cdn.example.") == ["192.0.2.50"]
        assert self.ask_wire(server, "static.cdn.example.") == ["192.0.2.50"]
        assert server.wire_cache.hits == 1
        # A dynamic update rewrites the record in place.
        zone = server.views[0].zones.find(target)
        zone.remove(target, RRType.A)
        zone.add_rr(RR(target, 60, RRClass.IN, rd.A("192.0.2.51")))
        assert self.ask_wire(server, "static.cdn.example.") == ["192.0.2.51"]
        assert server.wire_cache.invalidations == 1


class TestZoneConstructionWithCdn:
    """§2.3: inconsistent (CDN) replies must still yield one consistent
    zone snapshot — first answer wins."""

    def test_first_answer_wins_against_rotation(self):
        from repro.zonegen import ZoneConstructor

        server, _overlay = make_server(CdnPolicy(POOL))
        constructor = ZoneConstructor()
        # Tell the constructor who serves cdn.example.
        from repro.dns import rdata as rd
        from repro.dns.rrset import RR
        parent = Message.make_response(Message.make_query(
            Name.from_text("www.cdn.example."), RRType.A, msg_id=1))
        parent.authority.append(RR(Name.from_text("cdn.example."), 3600,
                                   RRClass.IN,
                                   rd.NS(Name.from_text("ns1.cdn.example."))))
        parent.additional.append(RR(Name.from_text("ns1.cdn.example."),
                                    3600, RRClass.IN, rd.A("192.0.2.1")))
        constructor.add_response("198.41.0.4", parent)
        # Three fetches hit the rotating CDN: three different answers.
        for attempt in range(3):
            query = Message.make_query(Name.from_text("www.cdn.example."),
                                       RRType.A, msg_id=attempt + 2)
            constructor.add_response("192.0.2.1",
                                     server.handle_query(query))
        library = constructor.build(root_addresses=["198.41.0.4"])
        zone = library.zones[Name.from_text("cdn.example.")]
        rrset = zone.get(Name.from_text("www.cdn.example."), RRType.A)
        # One consistent answer — the first — survives.
        assert rrset is not None
        assert [r.address for r in rrset.rdatas] == [POOL[0]]
        assert library.report.conflicts_dropped == 2
