"""Tests for the authoritative engine and split-horizon views."""

import pytest

from repro.dns import (Edns, Flag, Message, Name, RRType, Rcode, read_zone,
                       dnssec)
from repro.server import AuthoritativeServer, ConfigError, View, ZoneSet

ROOT_TEXT = """
$ORIGIN .
@ 3600 IN SOA a.root-servers.net. nstld. 1 1800 900 604800 86400
@ 3600 IN NS a.root-servers.net.
a.root-servers.net. 3600 IN A 198.41.0.4
com. 172800 IN NS a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
"""

COM_TEXT = """
$ORIGIN com.
@ 3600 IN SOA a.gtld-servers.net. n. 1 1800 900 604800 86400
@ 3600 IN NS a.gtld-servers.net.
example.com. 172800 IN NS ns1.example.com.
ns1.example.com. 172800 IN A 192.0.2.53
"""

EXAMPLE_TEXT = """
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 192.0.2.53
www 300 IN A 192.0.2.80
alias 300 IN CNAME www
"""


@pytest.fixture
def zones():
    return (read_zone(ROOT_TEXT, origin=Name.from_text(".")),
            read_zone(COM_TEXT, origin=Name.from_text("com.")),
            read_zone(EXAMPLE_TEXT, origin=Name.from_text("example.com.")))


def ask(server, qname, qtype=RRType.A, source="0.0.0.0", dnssec_ok=False,
        transport="udp"):
    query = Message.make_query(Name.from_text(qname), qtype, msg_id=1,
                               edns=Edns(dnssec_ok=True) if dnssec_ok
                               else None)
    return server.handle_query(query, source=source, transport=transport)


class TestZoneSet:
    def test_longest_match(self, zones):
        zone_set = ZoneSet(zones)
        assert zone_set.find(Name.from_text("www.example.com.")).origin == \
            Name.from_text("example.com.")
        assert zone_set.find(Name.from_text("other.com.")).origin == \
            Name.from_text("com.")
        assert zone_set.find(Name.from_text("org.")).origin == Name(())

    def test_duplicate_rejected(self, zones):
        zone_set = ZoneSet([zones[0]])
        with pytest.raises(ConfigError):
            zone_set.add(zones[0])


class TestBasicAnswers:
    def test_positive(self, zones):
        server = AuthoritativeServer.single_view([zones[2]])
        response = ask(server, "www.example.com.")
        assert response.rcode == Rcode.NOERROR
        assert response.flags & Flag.AA
        assert response.answer[0].rdata.address == "192.0.2.80"

    def test_cname_chased_in_zone(self, zones):
        server = AuthoritativeServer.single_view([zones[2]])
        response = ask(server, "alias.example.com.")
        types = [rr.rrtype for rr in response.answer]
        assert RRType.CNAME in types and RRType.A in types

    def test_nxdomain_carries_soa(self, zones):
        server = AuthoritativeServer.single_view([zones[2]])
        response = ask(server, "missing.example.com.")
        assert response.rcode == Rcode.NXDOMAIN
        assert any(rr.rrtype == RRType.SOA for rr in response.authority)

    def test_nodata_carries_soa(self, zones):
        server = AuthoritativeServer.single_view([zones[2]])
        response = ask(server, "www.example.com.", RRType.AAAA)
        assert response.rcode == Rcode.NOERROR
        assert not response.answer
        assert any(rr.rrtype == RRType.SOA for rr in response.authority)

    def test_refused_outside_zones(self, zones):
        server = AuthoritativeServer.single_view([zones[2]])
        response = ask(server, "elsewhere.org.")
        assert response.rcode == Rcode.REFUSED

    def test_ns_answer_includes_glue(self, zones):
        server = AuthoritativeServer.single_view([zones[2]])
        response = ask(server, "example.com.", RRType.NS)
        assert any(rr.rrtype == RRType.A for rr in response.additional)


class TestReferrals:
    def test_referral_from_root(self, zones):
        server = AuthoritativeServer.single_view([zones[0]])
        response = ask(server, "www.example.com.")
        assert response.rcode == Rcode.NOERROR
        assert not response.answer
        assert not response.flags & Flag.AA
        ns_names = [rr.rdata.target for rr in response.authority
                    if rr.rrtype == RRType.NS]
        assert Name.from_text("a.gtld-servers.net.") in ns_names
        glue = [rr for rr in response.additional if rr.rrtype == RRType.A]
        assert glue and glue[0].rdata.address == "192.5.6.30"

    def test_single_server_many_zones_gives_final_answer(self, zones):
        # The §2.4 motivation: all zones in ONE view short-circuits the
        # hierarchy and returns the final answer directly.
        server = AuthoritativeServer.single_view(zones)
        response = ask(server, "www.example.com.")
        assert response.answer  # no referral round trips


class TestSplitHorizon:
    def make_meta(self, zones):
        return AuthoritativeServer([
            View("root-view", ZoneSet([zones[0]]),
                 match_clients=("198.41.0.4",)),
            View("com-view", ZoneSet([zones[1]]),
                 match_clients=("192.5.6.30",)),
            View("example-view", ZoneSet([zones[2]]),
                 match_clients=("192.0.2.53",)),
        ])

    def test_same_query_different_views(self, zones):
        server = self.make_meta(zones)
        from_root = ask(server, "www.example.com.", source="198.41.0.4")
        from_com = ask(server, "www.example.com.", source="192.5.6.30")
        from_child = ask(server, "www.example.com.", source="192.0.2.53")
        # Root and com views refer; the child view answers.
        assert not from_root.answer and from_root.authority
        assert not from_com.answer and from_com.authority
        assert from_child.answer
        root_ns = {rr.rdata.target for rr in from_root.authority
                   if rr.rrtype == RRType.NS}
        com_ns = {rr.rdata.target for rr in from_com.authority
                  if rr.rrtype == RRType.NS}
        assert root_ns != com_ns  # different levels, different referrals

    def test_unmatched_source_refused(self, zones):
        server = self.make_meta(zones)
        response = ask(server, "www.example.com.", source="203.0.113.1")
        assert response.rcode == Rcode.REFUSED

    def test_catch_all_view(self, zones):
        server = AuthoritativeServer([
            View("specific", ZoneSet([zones[0]]),
                 match_clients=("198.41.0.4",)),
            View("any", ZoneSet([zones[2]])),
        ])
        response = ask(server, "www.example.com.", source="10.9.9.9")
        assert response.answer


class TestDnssecAnswers:
    def test_do_bit_adds_rrsigs(self, zones):
        signed = dnssec.sign_zone(zones[2])
        server = AuthoritativeServer.single_view([signed])
        plain = ask(server, "www.example.com.")
        with_do = ask(server, "www.example.com.", dnssec_ok=True)
        assert not any(rr.rrtype == RRType.RRSIG for rr in plain.answer)
        assert any(rr.rrtype == RRType.RRSIG for rr in with_do.answer)

    def test_nxdomain_denial_has_nsec(self, zones):
        signed = dnssec.sign_zone(zones[2])
        server = AuthoritativeServer.single_view([signed])
        response = ask(server, "zzz.example.com.", dnssec_ok=True)
        assert any(rr.rrtype == RRType.NSEC for rr in response.authority)
        assert any(rr.rrtype == RRType.RRSIG for rr in response.authority)

    def test_do_responses_larger(self, zones):
        signed = dnssec.sign_zone(zones[2],
                                  dnssec.SigningConfig(zsk_bits=2048))
        server = AuthoritativeServer.single_view([signed])
        plain = ask(server, "www.example.com.").to_wire()
        with_do = ask(server, "www.example.com.", dnssec_ok=True).to_wire()
        assert len(with_do) > len(plain) + 200  # the 256-byte signature

    def test_key_size_changes_response_size(self, zones):
        small = dnssec.sign_zone(zones[2],
                                 dnssec.SigningConfig(zsk_bits=1024))
        large = dnssec.sign_zone(zones[2],
                                 dnssec.SigningConfig(zsk_bits=2048))
        response_small = ask(AuthoritativeServer.single_view([small]),
                             "www.example.com.", dnssec_ok=True).to_wire()
        response_large = ask(AuthoritativeServer.single_view([large]),
                             "www.example.com.", dnssec_ok=True).to_wire()
        assert len(response_large) - len(response_small) == 128


class TestTruncation:
    def test_udp_truncates_without_edns(self, zones):
        signed = dnssec.sign_zone(zones[2])
        server = AuthoritativeServer.single_view([signed])
        query = Message.make_query(Name.from_text("example.com."),
                                   RRType.ANY, msg_id=5)
        response = server.handle_query(query, transport="udp")
        wire = server.encode_response(query, response, "udp")
        assert len(wire) <= 512
        decoded = Message.from_wire(wire)
        assert decoded.flags & Flag.TC
        assert server.stats.truncated == 1

    def test_tcp_never_truncates(self, zones):
        signed = dnssec.sign_zone(zones[2])
        server = AuthoritativeServer.single_view([signed])
        query = Message.make_query(Name.from_text("example.com."),
                                   RRType.ANY, msg_id=5)
        response = server.handle_query(query, transport="tcp")
        wire = server.encode_response(query, response, "tcp")
        assert not Message.from_wire(wire).flags & Flag.TC

    def test_edns_payload_respected(self, zones):
        signed = dnssec.sign_zone(zones[2])
        server = AuthoritativeServer.single_view([signed])
        query = Message.make_query(Name.from_text("example.com."),
                                   RRType.ANY, msg_id=5,
                                   edns=Edns(payload_size=4096))
        response = server.handle_query(query, transport="udp")
        wire = server.encode_response(query, response, "udp")
        assert not Message.from_wire(wire).flags & Flag.TC


class TestStats:
    def test_counters(self, zones):
        server = AuthoritativeServer.single_view(zones)
        ask(server, "www.example.com.")
        ask(server, "missing.example.com.", source="1.2.3.4")
        ask(server, "www.example.com.", transport="tcp")
        assert server.stats.queries == 3
        assert server.stats.nxdomain == 1
        assert server.stats.queries_by_transport == {"udp": 2, "tcp": 1}
