"""Tests for rdata types: wire/text round-trips and invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.dns import rdata as rd
from repro.dns.constants import RRType
from repro.dns.name import Name
from repro.dns.rdata import (GenericRdata, parse_rdata, rdata_from_text,
                             _decode_type_bitmap, _encode_type_bitmap)
from repro.dns.wire import WireError, WireReader, WireWriter


def roundtrip_wire(rdata):
    wire = rdata.wire_bytes()
    reader = WireReader(wire)
    return parse_rdata(rdata.rrtype, reader, len(wire))


def roundtrip_text(rdata):
    # Quote-aware tokenization, as the zone-file tokenizer would produce.
    import re
    tokens = re.findall(r'"(?:[^"\\]|\\.)*"|\S+', rdata.to_text())
    return rdata_from_text(rdata.rrtype, tokens)


SAMPLES = [
    rd.A("192.0.2.1"),
    rd.AAAA("2001:db8::1"),
    rd.NS(Name.from_text("ns1.example.com.")),
    rd.CNAME(Name.from_text("target.example.org.")),
    rd.PTR(Name.from_text("host.example.com.")),
    rd.SOA(Name.from_text("ns1.example.com."),
           Name.from_text("admin.example.com."),
           2024010101, 7200, 900, 1209600, 86400),
    rd.MX(10, Name.from_text("mail.example.com.")),
    rd.TXT((b"hello world", b"second string")),
    rd.SRV(1, 5, 443, Name.from_text("svc.example.com.")),
    rd.DS(12345, 8, 2, bytes(range(32))),
    rd.DNSKEY(256, 3, 8, b"\x03\x01\x00\x01" + bytes(64)),
    rd.RRSIG(RRType.A, 8, 2, 300, 1470000000, 1460000000, 3000,
             Name.from_text("example.com."), bytes(128)),
    rd.NSEC(Name.from_text("next.example.com."),
            (RRType.A, RRType.NS, RRType.RRSIG)),
    rd.CAA(0, b"issue", b"ca.example.net"),
    rd.NAPTR(100, 50, b"s", b"SIP+D2T", b"",
             Name.from_text("_sip._tcp.example.com.")),
    rd.TLSA(3, 1, 1, bytes(range(32))),
]


@pytest.mark.parametrize("rdata", SAMPLES, ids=lambda r: type(r).__name__)
def test_wire_roundtrip(rdata):
    assert roundtrip_wire(rdata) == rdata


@pytest.mark.parametrize("rdata", SAMPLES, ids=lambda r: type(r).__name__)
def test_text_roundtrip(rdata):
    assert roundtrip_text(rdata) == rdata


class TestValidation:
    def test_a_bad_address(self):
        with pytest.raises(ValueError):
            rd.A("999.1.1.1")

    def test_a_wrong_length(self):
        with pytest.raises(WireError):
            parse_rdata(RRType.A, WireReader(b"\x01\x02"), 2)

    def test_txt_string_too_long(self):
        with pytest.raises(ValueError):
            rd.TXT((b"x" * 256,))

    def test_length_mismatch_detected(self):
        # declare 5 bytes for an A record
        with pytest.raises(WireError):
            parse_rdata(RRType.A, WireReader(b"\x01\x02\x03\x04\x05"), 5)


class TestGeneric:
    def test_unknown_type_wire(self):
        rrtype = RRType.make(65280)
        reader = WireReader(b"\xde\xad\xbe\xef")
        rdata = parse_rdata(rrtype, reader, 4)
        assert isinstance(rdata, GenericRdata)
        assert rdata.data == b"\xde\xad\xbe\xef"

    def test_rfc3597_text(self):
        rdata = rdata_from_text(RRType.make(65280),
                                ["\\#", "4", "deadbeef"])
        assert rdata.data == b"\xde\xad\xbe\xef"

    def test_rfc3597_parses_known_type(self):
        rdata = rdata_from_text(RRType.A, ["\\#", "4", "c0000201"])
        assert rdata == rd.A("192.0.2.1")

    def test_rfc3597_length_mismatch(self):
        with pytest.raises(ValueError):
            rdata_from_text(RRType.make(65280), ["\\#", "3", "deadbeef"])


class TestDnskey:
    def test_key_tag_stable(self):
        key = rd.DNSKEY(256, 3, 8, b"\x03\x01\x00\x01" + bytes(32))
        assert 0 <= key.key_tag() <= 0xFFFF
        assert key.key_tag() == key.key_tag()

    def test_key_tag_distinguishes_keys(self):
        a = rd.DNSKEY(256, 3, 8, b"\x03\x01\x00\x01" + bytes(32))
        b = rd.DNSKEY(256, 3, 8, b"\x03\x01\x00\x01" + bytes(31) + b"\x01")
        assert a.key_tag() != b.key_tag()


class TestTypeBitmap:
    def test_roundtrip_basic(self):
        types = (RRType.A, RRType.NS, RRType.SOA, RRType.AAAA,
                 RRType.RRSIG, RRType.NSEC)
        assert _decode_type_bitmap(_encode_type_bitmap(types)) == \
            tuple(sorted(types, key=int))

    def test_multi_window(self):
        types = (RRType.A, RRType.CAA)  # CAA = 257, second window
        decoded = _decode_type_bitmap(_encode_type_bitmap(types))
        assert set(decoded) == set(types)

    def test_empty(self):
        assert _decode_type_bitmap(b"") == ()


@given(st.lists(st.integers(min_value=1, max_value=1023), min_size=1,
                max_size=20, unique=True))
def test_property_bitmap_roundtrip(values):
    types = tuple(RRType.make(v) for v in values)
    decoded = _decode_type_bitmap(_encode_type_bitmap(types))
    assert set(int(t) for t in decoded) == set(values)


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255),
       st.integers(0, 255))
def test_property_a_roundtrip(a, b, c, d):
    rdata = rd.A(f"{a}.{b}.{c}.{d}")
    assert roundtrip_wire(rdata) == rdata
    assert roundtrip_text(rdata) == rdata


@given(st.binary(min_size=0, max_size=80))
def test_property_txt_wire_roundtrip(payload):
    rdata = rd.TXT((payload,))
    assert roundtrip_wire(rdata) == rdata
