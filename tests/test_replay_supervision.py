"""Tests for replay supervision: AIMD pacing, watchdog, deadline shed."""

import threading
import time

import pytest

from repro.dns import Rcode
from repro.netsim import EventLoop, Network, RetryPolicy
from repro.replay import (AimdPacer, DistributedConfig,
                          LiveDistributedReplay, LiveUdpEchoServer,
                          PacingConfig, QuerierConfig, ReplayConfig,
                          ReplayWatchdog, SimReplayEngine,
                          SupervisionConfig)
from repro.replay.distributed import _LiveQuerier
from repro.trace import fixed_interval_trace


class TestAimdPacer:
    def test_reserve_spaces_sends_at_rate(self):
        pacer = AimdPacer(PacingConfig(initial_rate=10.0), now=0.0)
        slots = [pacer.reserve(0.0) for _ in range(4)]
        assert slots == pytest.approx([0.0, 0.1, 0.2, 0.3])

    def test_reserve_tracks_a_slow_sender(self):
        pacer = AimdPacer(PacingConfig(initial_rate=10.0), now=0.0)
        pacer.reserve(0.0)
        # Asking long after the last slot: send immediately, no credit.
        assert pacer.reserve(5.0) == pytest.approx(5.0)
        assert pacer.reserve(5.0) == pytest.approx(5.1)

    def test_success_grows_additively(self):
        pacer = AimdPacer(PacingConfig(initial_rate=100.0, increase=5.0),
                          now=0.0)
        pacer.on_success()
        pacer.on_success()
        assert pacer.rate == pytest.approx(110.0)

    def test_congestion_cuts_multiplicatively(self):
        pacer = AimdPacer(PacingConfig(initial_rate=100.0, decrease=0.5),
                          now=0.0)
        assert pacer.on_congestion()
        assert pacer.rate == pytest.approx(50.0)

    def test_rate_floors_at_min(self):
        pacer = AimdPacer(PacingConfig(initial_rate=2.0, min_rate=1.0,
                                       decrease=0.5), now=0.0)
        assert pacer.on_congestion()        # 2 -> 1
        assert not pacer.on_congestion()    # already at the floor
        assert pacer.rate == pytest.approx(1.0)

    def test_rate_caps_at_max(self):
        pacer = AimdPacer(PacingConfig(initial_rate=99.0, max_rate=100.0,
                                       increase=5.0), now=0.0)
        pacer.on_success()
        assert pacer.rate == pytest.approx(100.0)


class _FakeSubject:
    def __init__(self, heartbeat, work=True):
        self.heartbeat = heartbeat
        self._work = work

    def has_work(self):
        return self._work


class TestReplayWatchdog:
    def run_watchdog(self, subjects, config=None, runtime=0.3):
        stalls = []
        config = config or SupervisionConfig(heartbeat_interval=0.02,
                                             stall_timeout=0.1)
        watchdog = ReplayWatchdog(config, subjects, on_stall=stalls.append)
        watchdog.start()
        time.sleep(runtime)
        watchdog.stop()
        watchdog.join(timeout=1.0)
        return watchdog, stalls

    def test_stale_heartbeat_with_work_is_flagged_once(self):
        subject = _FakeSubject(heartbeat=time.monotonic() - 999)
        watchdog, stalls = self.run_watchdog([subject])
        assert stalls == [subject]
        assert watchdog.stalled == [subject]

    def test_idle_subject_is_not_a_stall(self):
        # Stale heartbeat but no queued work: blocked on input, healthy.
        subject = _FakeSubject(heartbeat=time.monotonic() - 999,
                               work=False)
        _watchdog, stalls = self.run_watchdog([subject])
        assert stalls == []

    def test_fresh_heartbeat_is_not_a_stall(self):
        subject = _FakeSubject(heartbeat=time.monotonic())
        ticker = threading.Thread(
            target=lambda: [setattr(subject, "heartbeat",
                                    time.monotonic())
                            or time.sleep(0.02) for _ in range(15)])
        ticker.start()
        _watchdog, stalls = self.run_watchdog([subject])
        ticker.join()
        assert stalls == []

    def test_deadline_fires_once(self):
        fired = []
        config = SupervisionConfig(heartbeat_interval=0.02,
                                   stall_timeout=10.0, deadline=0.1)
        watchdog = ReplayWatchdog(config, [], on_stall=lambda s: None,
                                  on_deadline=lambda: fired.append(1))
        watchdog.start()
        time.sleep(0.3)
        watchdog.stop()
        watchdog.join(timeout=1.0)
        assert fired == [1]
        assert watchdog.deadline_expired()


class TestSimPacing:
    def replay(self, pacing, retry=None, server=True, rate_interval=0.01,
               duration=0.5):
        loop = EventLoop()
        network = Network(loop)
        if server:
            from repro.dns import Name, read_zone
            from repro.server import AuthoritativeServer, HostedDnsServer
            zone = read_zone("""
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 10.5.0.2
*.example.com. 60 IN A 192.0.2.99
""", origin=Name.from_text("example.com."))
            server_host = network.add_host("server", "10.5.0.2")
            HostedDnsServer(server_host,
                            AuthoritativeServer.single_view([zone]))
        trace = fixed_interval_trace(rate_interval, duration,
                                     server="10.5.0.2")
        engine = SimReplayEngine(
            network,
            ReplayConfig(querier=QuerierConfig(pacing=pacing,
                                               retry=retry)))
        return engine.replay(trace, extra_time=20.0)

    def test_pacer_delays_a_fast_trace(self):
        # 100 q/s offered against 12 queriers each capped at 2 q/s.
        result = self.replay(PacingConfig(initial_rate=2.0, increase=0.0))
        assert result.paced_queries > 0
        assert result.degradation()["paced_queries"] \
            == result.paced_queries
        # Paced queries still go out and get answered.
        assert result.answered_fraction() == 1.0

    def test_timeouts_cut_the_rate(self):
        # No server: every UDP query times out -> congestion signals.
        result = self.replay(
            PacingConfig(initial_rate=100.0, decrease=0.5),
            retry=RetryPolicy(udp_timeout=0.2, max_retries=1),
            server=False, duration=0.2)
        assert result.udp_timeouts > 0
        assert result.pace_rate_cuts > 0

    def test_no_pacing_counts_nothing(self):
        result = self.replay(None)
        degradation = result.degradation()
        assert degradation["paced_queries"] == 0
        assert degradation["pace_rate_cuts"] == 0
        assert result.answered_fraction() == 1.0


class _FrozenQuerier(threading.Thread):
    """A querier whose heartbeat froze: receives records, sends nothing.

    The heartbeat is stamped once at startup and never again, so the
    watchdog sees it go stale only after the stall timeout — by which
    time the distributor has routed records to this querier, making the
    stall-shed accounting observable.
    """

    def __init__(self, querier_id, inbound, server, result, lock):
        super().__init__(daemon=True)
        self.querier_id = querier_id
        self.inbound = inbound
        self.heartbeat = time.monotonic()   # frozen from here on
        self.records_received = 0
        self.records_sent = 0
        self.shed_event = threading.Event()
        self.name = f"frozen-querier-{querier_id}"

    def has_work(self):
        return True

    def run(self):
        # Keep draining the inbound socket (so the distributor does not
        # block) without ever sending; exits when the watchdog's stall
        # remediation closes the socket.
        while self.inbound.receive() is not None:
            pass


def frozen_first_factory(querier_id, inbound, server, result, lock):
    if querier_id == 0:
        return _FrozenQuerier(querier_id, inbound, server, result, lock)
    return _LiveQuerier(querier_id, inbound, server, result, lock)


class TestLiveSupervision:
    def test_watchdog_disconnects_a_stalled_querier(self):
        trace = fixed_interval_trace(0.005, 1.0, client_count=50,
                                     name="stall-test")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(
                    distributors=1, queriers_per_distributor=2,
                    supervision=SupervisionConfig(heartbeat_interval=0.05,
                                                  stall_timeout=0.2),
                    querier_factory=frozen_first_factory))
            started = time.monotonic()
            result = replay.replay(trace)
            elapsed = time.monotonic() - started
        # The replay terminated (no hang on the frozen thread)...
        assert elapsed < 15.0
        # ...the watchdog flagged exactly the frozen querier...
        assert result.watchdog_stalls == 1
        assert [s.name for s in replay.watchdog.stalled] \
            == ["frozen-querier-0"]
        # ...its routed-but-never-sent records are accounted...
        assert result.stall_shed > 0
        degradation = result.degradation()
        assert degradation["watchdog_stalls"] == 1
        assert degradation["stall_shed"] == result.stall_shed
        # ...and the live querier still answered its share.
        assert result.answered_fraction() > 0.5

    def test_deadline_sheds_queued_records(self):
        # A 5 s trace under a 0.5 s budget: the deadline fires mid-replay
        # and queued-but-unsent records are shed, not silently lost.
        trace = fixed_interval_trace(0.05, 5.0, name="deadline-test")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(
                    distributors=1, queriers_per_distributor=2,
                    supervision=SupervisionConfig(heartbeat_interval=0.05,
                                                  stall_timeout=1.0,
                                                  deadline=0.5)))
            started = time.monotonic()
            result = replay.replay(trace)
            elapsed = time.monotonic() - started
        assert replay.watchdog.deadline_expired()
        assert result.deadline_shed > 0
        assert result.degradation()["deadline_shed"] == result.deadline_shed
        # Well under the trace's own 5 s duration.
        assert elapsed < 4.0

    def test_supervision_off_keeps_result_clean(self):
        trace = fixed_interval_trace(0.01, 0.3, name="clean-test")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=1,
                                  queriers_per_distributor=2))
            result = replay.replay(trace)
        assert replay.watchdog is None
        assert all(value == 0
                   for value in result.degradation().values())
        assert result.answered_fraction() > 0.9
