"""Tests for the server resource models (memory, CPU, monitoring)."""

import pytest

from repro.netsim import (CostModel, CpuMeter, EventLoop, Network,
                          ResourceMonitor, ServerResourceModel, TcpOptions,
                          TcpStack)
from repro.netsim.resources import (GIB, OS_BASE_BYTES, SERVER_BASE_BYTES,
                                    TCP_RECV_BUFFER_BYTES,
                                    TCP_SEND_BUFFER_BYTES,
                                    TCP_SOCK_STRUCT_BYTES,
                                    TLS_SESSION_BYTES)


class TestCpuMeter:
    def test_charges_accumulate(self):
        loop = EventLoop()
        meter = CpuMeter(loop, cores=4)
        meter.charge("udp_query")
        meter.charge("udp_query", 9)
        assert meter.total_busy() == pytest.approx(10 * meter.cost.udp_query)

    def test_unknown_kind_rejected(self):
        meter = CpuMeter(EventLoop())
        with pytest.raises(ValueError):
            meter.charge("quantum_decrypt")

    def test_utilization_math(self):
        loop = EventLoop()
        meter = CpuMeter(loop, cores=2,
                         cost_model=CostModel(udp_query=0.5))
        meter.charge("udp_query")  # 0.5 core-seconds
        loop.run_until(1.0)
        # 0.5 busy over 1 s on 2 cores = 25 %.
        assert meter.utilization_since(0.0) == pytest.approx(0.25)

    def test_window_sampling_resets(self):
        loop = EventLoop()
        meter = CpuMeter(loop, cores=1,
                         cost_model=CostModel(udp_query=0.1))
        meter.charge("udp_query")
        loop.run_until(1.0)
        first = meter.sample_window()
        assert first == pytest.approx(0.1)
        loop.run_until(2.0)
        assert meter.sample_window() == pytest.approx(0.0)


class TestMemoryModel:
    def make_stack_with_connections(self, count):
        loop = EventLoop()
        network = Network(loop)
        client = network.add_host("c", "10.3.0.1")
        server = network.add_host("s", "10.3.0.2")
        client_stack = TcpStack(client)
        server_stack = TcpStack(server)
        server_stack.listen("10.3.0.2", 53, lambda conn: None,
                            TcpOptions(nagle=False))
        for _ in range(count):
            client_stack.connect("10.3.0.1", "10.3.0.2", 53,
                                 TcpOptions(nagle=False))
        loop.run(max_time=2)
        return loop, server_stack

    def test_baseline_without_connections(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        assert model.memory_total() == OS_BASE_BYTES + SERVER_BASE_BYTES

    def test_per_connection_memory(self):
        loop, stack = self.make_stack_with_connections(10)
        model = ServerResourceModel(loop, stack)
        per_conn = (TCP_SOCK_STRUCT_BYTES + TCP_RECV_BUFFER_BYTES
                    + TCP_SEND_BUFFER_BYTES)
        expected_kernel = per_conn * 10
        assert model.memory_kernel() == expected_kernel

    def test_tls_sessions_add_memory(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        base = model.memory_process()
        model.tls_sessions = 100
        assert model.memory_process() == base + 100 * TLS_SESSION_BYTES

    def test_scale_factor_multiplies_counts(self):
        loop, stack = self.make_stack_with_connections(4)
        model = ServerResourceModel(loop, stack)
        model.scale_factor = 10.0
        _open, established, _tw = model.connection_counts()
        assert established == 40

    def test_calibration_lands_near_paper(self):
        """60 k established should cost roughly the paper's 13 GB extra."""
        loop = EventLoop()
        model = ServerResourceModel(loop)
        per_conn = (TCP_SOCK_STRUCT_BYTES + TCP_RECV_BUFFER_BYTES
                    + TCP_SEND_BUFFER_BYTES)
        extra = 60000 * per_conn
        assert 10 * GIB < extra < 16 * GIB


class TestMonitor:
    def test_periodic_samples(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        monitor = ResourceMonitor(loop, model, period=10.0)
        monitor.start()
        loop.run_until(55.0)
        monitor.stop()
        assert len(monitor.samples) == 5
        assert [s.time for s in monitor.samples] == [10, 20, 30, 40, 50]

    def test_steady_state_skips_warmup(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        monitor = ResourceMonitor(loop, model, period=10.0)
        monitor.start()
        loop.run_until(100.0)
        monitor.stop()
        steady = monitor.steady_state(skip=50.0)
        assert all(s.time >= 60.0 for s in steady)
        assert steady

    def test_stop_prevents_further_samples(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        monitor = ResourceMonitor(loop, model, period=5.0)
        monitor.start()
        loop.run_until(12.0)
        monitor.stop()
        loop.run_until(50.0)
        assert len(monitor.samples) == 2
