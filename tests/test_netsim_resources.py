"""Tests for the server resource models (memory, CPU, monitoring)."""

import pytest

from repro.netsim import (CostModel, CpuMeter, EventLoop, Network,
                          ResourceMonitor, ServerResourceModel, TcpOptions,
                          TcpStack)
from repro.netsim.resources import (GIB, OS_BASE_BYTES, SERVER_BASE_BYTES,
                                    TCP_RECV_BUFFER_BYTES,
                                    TCP_SEND_BUFFER_BYTES,
                                    TCP_SOCK_STRUCT_BYTES,
                                    TLS_SESSION_BYTES)


class TestCpuMeter:
    def test_charges_accumulate(self):
        loop = EventLoop()
        meter = CpuMeter(loop, cores=4)
        meter.charge("udp_query")
        meter.charge("udp_query", 9)
        assert meter.total_busy() == pytest.approx(10 * meter.cost.udp_query)

    def test_unknown_kind_rejected(self):
        meter = CpuMeter(EventLoop())
        with pytest.raises(ValueError):
            meter.charge("quantum_decrypt")

    def test_utilization_math(self):
        loop = EventLoop()
        meter = CpuMeter(loop, cores=2,
                         cost_model=CostModel(udp_query=0.5))
        meter.charge("udp_query")  # 0.5 core-seconds
        loop.run_until(1.0)
        # 0.5 busy over 1 s on 2 cores = 25 %.
        assert meter.utilization_since(0.0) == pytest.approx(0.25)

    def test_window_sampling_resets(self):
        loop = EventLoop()
        meter = CpuMeter(loop, cores=1,
                         cost_model=CostModel(udp_query=0.1))
        meter.charge("udp_query")
        loop.run_until(1.0)
        first = meter.sample_window()
        assert first == pytest.approx(0.1)
        loop.run_until(2.0)
        assert meter.sample_window() == pytest.approx(0.0)


class TestMemoryModel:
    def make_stack_with_connections(self, count):
        loop = EventLoop()
        network = Network(loop)
        client = network.add_host("c", "10.3.0.1")
        server = network.add_host("s", "10.3.0.2")
        client_stack = TcpStack(client)
        server_stack = TcpStack(server)
        server_stack.listen("10.3.0.2", 53, lambda conn: None,
                            TcpOptions(nagle=False))
        for _ in range(count):
            client_stack.connect("10.3.0.1", "10.3.0.2", 53,
                                 TcpOptions(nagle=False))
        loop.run(max_time=2)
        return loop, server_stack

    def test_baseline_without_connections(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        assert model.memory_total() == OS_BASE_BYTES + SERVER_BASE_BYTES

    def test_per_connection_memory(self):
        loop, stack = self.make_stack_with_connections(10)
        model = ServerResourceModel(loop, stack)
        per_conn = (TCP_SOCK_STRUCT_BYTES + TCP_RECV_BUFFER_BYTES
                    + TCP_SEND_BUFFER_BYTES)
        expected_kernel = per_conn * 10
        assert model.memory_kernel() == expected_kernel

    def test_tls_sessions_add_memory(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        base = model.memory_process()
        model.tls_sessions = 100
        assert model.memory_process() == base + 100 * TLS_SESSION_BYTES

    def test_scale_factor_multiplies_counts(self):
        loop, stack = self.make_stack_with_connections(4)
        model = ServerResourceModel(loop, stack)
        model.scale_factor = 10.0
        _open, established, _tw = model.connection_counts()
        assert established == 40

    def test_calibration_lands_near_paper(self):
        """60 k established should cost roughly the paper's 13 GB extra."""
        loop = EventLoop()
        model = ServerResourceModel(loop)
        per_conn = (TCP_SOCK_STRUCT_BYTES + TCP_RECV_BUFFER_BYTES
                    + TCP_SEND_BUFFER_BYTES)
        extra = 60000 * per_conn
        assert 10 * GIB < extra < 16 * GIB


class TestMonitor:
    def test_periodic_samples(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        monitor = ResourceMonitor(loop, model, period=10.0)
        monitor.start()
        loop.run_until(55.0)
        monitor.stop()
        assert len(monitor.samples) == 5
        assert [s.time for s in monitor.samples] == [10, 20, 30, 40, 50]

    def test_steady_state_skips_warmup(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        monitor = ResourceMonitor(loop, model, period=10.0)
        monitor.start()
        loop.run_until(100.0)
        monitor.stop()
        steady = monitor.steady_state(skip=50.0)
        assert all(s.time >= 60.0 for s in steady)
        assert steady

    def test_stop_prevents_further_samples(self):
        loop = EventLoop()
        model = ServerResourceModel(loop)
        monitor = ResourceMonitor(loop, model, period=5.0)
        monitor.start()
        loop.run_until(12.0)
        monitor.stop()
        loop.run_until(50.0)
        assert len(monitor.samples) == 2


class TestSustainedOverload:
    """Resource accounting when offered load exceeds the CPU budget.

    The DoS experiments rely on the meter reporting >100 % utilization
    (the "(sat.)" rows) and on dstat-style windows recovering once the
    flood ends; these tests pin that behaviour down directly.
    """

    def make_saturated(self, cores=2, seconds=10.0, factor=3.0):
        """Charge ``factor``× the core budget over ``seconds``."""
        loop = EventLoop()
        meter = CpuMeter(loop, cores=cores,
                         cost_model=CostModel(udp_query=1e-3))
        # cores * seconds core-seconds available; offer factor× that.
        units = cores * seconds * factor / 1e-3
        step = units / 10
        for i in range(10):
            loop.run_until(seconds * (i + 1) / 10)
            meter.charge("udp_query", step)
        return loop, meter

    def test_saturation_reports_over_100_percent(self):
        loop, meter = self.make_saturated(factor=3.0)
        assert meter.utilization_since(0.0) == pytest.approx(3.0)
        assert meter.utilization_since(0.0) > 1.0

    def test_window_recovers_after_load_stops(self):
        loop, meter = self.make_saturated(seconds=10.0, factor=2.0)
        assert meter.sample_window() == pytest.approx(2.0)
        # Flood over: the next window sees no charges at all.
        loop.run_until(20.0)
        assert meter.sample_window() == pytest.approx(0.0)
        # ...while the long-run average still remembers the overload.
        assert meter.utilization_since(0.0) == pytest.approx(1.0)

    def test_mixed_kinds_accumulate_during_overload(self):
        loop = EventLoop()
        meter = CpuMeter(loop, cores=1,
                         cost_model=CostModel(udp_query=0.5,
                                              tcp_handshake=0.25))
        meter.charge("udp_query", 4)       # 2.0 core-s
        meter.charge("tcp_handshake", 8)   # 2.0 core-s
        loop.run_until(2.0)
        assert meter.total_busy() == pytest.approx(4.0)
        assert meter.utilization_since(0.0) == pytest.approx(2.0)
        assert meter.busy_seconds["udp_query"] == pytest.approx(2.0)
        assert meter.busy_seconds["tcp_handshake"] == pytest.approx(2.0)

    def test_monitor_samples_monotonic_under_overload(self):
        loop = EventLoop()
        model = ServerResourceModel(loop, cores=2)
        monitor = ResourceMonitor(loop, model, period=2.0)
        monitor.start()
        # Sustained flood: one big charge per simulated second.
        for second in range(1, 21):
            loop.call_at(float(second), model.cpu.charge, "udp_query",
                         60000)
        loop.run_until(25.0)
        monitor.stop()
        times = [s.time for s in monitor.samples]
        assert times == sorted(times)
        assert all(b - a == pytest.approx(2.0)
                   for a, b in zip(times, times[1:]))

    def test_monitor_windows_show_saturation_then_recovery(self):
        loop = EventLoop()
        model = ServerResourceModel(loop, cores=2)
        monitor = ResourceMonitor(loop, model, period=2.0)
        monitor.start()
        # Overload for the first 10 s (135 µs × 60 k ≈ 8.1 core-s per
        # second offered against a 2-core budget), then silence.
        for second in range(1, 11):
            loop.call_at(float(second), model.cpu.charge, "udp_query",
                         60000)
        loop.run_until(20.0)
        monitor.stop()
        flood = [s for s in monitor.samples if s.time <= 10.0]
        quiet = [s for s in monitor.samples if s.time > 12.0]
        assert flood and quiet
        assert all(s.cpu_utilization > 1.0 for s in flood)
        assert all(s.cpu_utilization == pytest.approx(0.0)
                   for s in quiet)
