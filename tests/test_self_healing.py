"""Self-healing distributed replay (ISSUE 8).

Four layers, innermost out: the CheckpointStore / merge primitives
(pure, exhaustively unit-tested), the chaos engine's determinism, the
property that *any* frame delivery schedule merges to the clean-run
result, and — under the ``chaos`` marker — real process trees with
deterministic crashes and SIGKILLs that must conserve every record.
"""

import os
import signal
import threading
import time

import pytest

from repro.replay import (ChaosConfig, ChaosEngine, CheckpointPolicy,
                          CheckpointStore, DistributedConfig,
                          ProcessTopology, RecoveryConfig, RespawnPolicy,
                          ShardTopology, UdpEchoServerProcess,
                          conservation_violations, merge_recovered,
                          reconnect_with_backoff)
from repro.replay.protocol import (MSG_END, MSG_RECORD, MSG_RESULT,
                                   ROLE_QUERIER)
from repro.trace import fixed_interval_trace
from repro.verify.generators import (HAVE_HYPOTHESIS, checkpoint_deliveries,
                                     checkpoint_emission_history)


def _result_dict(worker, indices, answered=True, sent_at=None):
    sent = [{"index": index, "source": f"c{index % 4}",
             "trace_time": float(index), "scheduled_at": float(index),
             "sent_at": float(index) if sent_at is None else sent_at,
             "protocol": "udp", "qname": "q.example.com.",
             "answered_at": (float(index) + 0.5) if answered else None,
             "querier_id": worker}
            for index in indices]
    return {"name": f"querier-{worker}", "sent": sent}


class TestCheckpointStore:
    def test_later_seq_wins_and_stale_is_counted(self):
        store = CheckpointStore()
        assert store.offer("w0", 0, 1, _result_dict(0, [0]))
        assert store.offer("w0", 0, 3, _result_dict(0, [0, 1, 2]))
        assert not store.offer("w0", 0, 2, _result_dict(0, [0, 1]))
        assert store.frames_offered == 3
        assert store.frames_stale == 1
        assert store.sent_indices() == {0, 1, 2}

    def test_duplicate_offer_is_idempotent(self):
        store = CheckpointStore()
        payload = {"worker": 0, "incarnation": 0, "seq": 2, "final": False,
                   "result": _result_dict(0, [0, 1])}
        assert store.offer_frame("w0", payload)
        assert not store.offer_frame("w0", payload)
        assert store.snapshots() == [_result_dict(0, [0, 1])]

    def test_final_outranks_any_checkpoint_seq(self):
        store = CheckpointStore()
        store.offer("w0", 0, 99, _result_dict(0, [0]))
        assert store.offer("w0", 0, 0, _result_dict(0, [0, 1]), final=True)
        # A late high-seq checkpoint from before the final is stale.
        assert not store.offer("w0", 0, 100, _result_dict(0, [0]))
        assert store.has_final("w0", 0)
        assert store.sent_indices() == {0, 1}

    def test_incarnations_are_tracked_separately(self):
        store = CheckpointStore()
        store.offer("w0", 0, 5, _result_dict(0, [0, 1]))
        store.offer("w0", 1, 1, _result_dict(0, [2]))
        assert len(store.snapshots()) == 2
        assert store.sent_indices() == {0, 1, 2}
        assert not store.has_final("w0", 0)

    def test_answered_indices_filter(self):
        store = CheckpointStore()
        store.offer("w0", 0, 1, _result_dict(0, [0, 1], answered=False))
        store.offer("w1", 0, 1, _result_dict(1, [2]))
        assert store.sent_indices() == {0, 1, 2}
        assert store.answered_indices() == {2}
        assert store.sent_indices(keys=[("w1", 0)]) == {2}


class TestMergeRecovered:
    def test_duplicate_index_collapses_preferring_answered(self):
        crashed = _result_dict(0, [0, 1], answered=False)
        redelivered = _result_dict(1, [1, 2], answered=True)
        merged = merge_recovered([crashed, redelivered])
        assert [q.index for q in merged.sent] == [0, 1, 2]
        by_index = {q.index: q for q in merged.sent}
        assert by_index[1].answered_at is not None     # answered copy won
        assert by_index[1].querier_id == 1
        assert merged.duplicate_merged == 1

    def test_merge_is_order_independent(self):
        a = _result_dict(0, [0, 1], answered=False)
        b = _result_dict(1, [1, 2])
        forward = merge_recovered([a, b]).to_dict()
        backward = merge_recovered([b, a]).to_dict()
        assert forward == backward

    def test_conservation_violations_detects_each_failure_mode(self):
        clean = merge_recovered([_result_dict(0, [0, 1, 2])])
        assert conservation_violations(clean, 3) == []
        missing = merge_recovered([_result_dict(0, [0, 2])])
        assert any("never accounted" in p
                   for p in conservation_violations(missing, 3))
        ghost = merge_recovered([_result_dict(0, [0, 1, 2, 7])])
        assert any("outside the trace" in p
                   for p in conservation_violations(ghost, 3))


class TestChaosEngine:
    CONFIG = ChaosConfig(seed=11, drop_rate=0.3, reorder_rate=0.3,
                         delay_rate=0.0)

    def _run(self, engine, frames=40):
        out = []
        for i in range(frames):
            out.append(engine.process(MSG_RECORD, bytes([i])))
        return out

    def test_same_identity_same_schedule(self):
        first = ChaosEngine(self.CONFIG, ROLE_QUERIER, 3, incarnation=0)
        second = ChaosEngine(self.CONFIG, ROLE_QUERIER, 3, incarnation=0)
        assert self._run(first) == self._run(second)
        assert first.dropped == second.dropped > 0

    def test_incarnation_changes_schedule(self):
        first = ChaosEngine(self.CONFIG, ROLE_QUERIER, 3, incarnation=0)
        respawn = ChaosEngine(self.CONFIG, ROLE_QUERIER, 3, incarnation=1)
        assert self._run(first) != self._run(respawn)

    def test_crash_arming_respects_incarnation_gate(self):
        config = ChaosConfig(seed=1, crash_rate=1.0, crash_incarnations=(0,))
        armed = ChaosEngine(config, ROLE_QUERIER, 0, incarnation=0)
        respawned = ChaosEngine(config, ROLE_QUERIER, 0, incarnation=1)
        disabled = ChaosEngine(config, ROLE_QUERIER, 0, incarnation=0,
                               allow_crash=False)
        assert armed._crash_armed
        assert not respawned._crash_armed
        assert not disabled._crash_armed

    def test_exempt_kind_flushes_held_frame(self):
        config = ChaosConfig(seed=2, reorder_rate=1.0)
        engine = ChaosEngine(config, ROLE_QUERIER, 0)
        assert engine.process(MSG_RECORD, b"a") == []    # held
        # END is exempt: the held data frame must not overtake it... it
        # is released *before* END so the peer still sees all data.
        assert engine.process(MSG_END, b"") \
            == [(MSG_RECORD, b"a"), (MSG_END, b"")]

    def test_drop_releases_held_frame(self):
        config = ChaosConfig(seed=2, reorder_rate=1.0, drop_rate=1.0)
        engine = ChaosEngine(config, ROLE_QUERIER, 0)
        first = engine.process(MSG_RECORD, b"a")
        second = engine.process(MSG_RECORD, b"b")
        # Whatever the interleaving, no frame other than a dropped one
        # may vanish: held frames always resurface.
        emitted = [frame for batch in (first, second) for frame in batch]
        assert len(emitted) + engine.dropped - engine.reordered == 2


class TestPolicies:
    def test_respawn_backoff_is_exponential_and_capped(self):
        policy = RespawnPolicy(backoff_base=0.05, backoff_factor=2.0,
                               backoff_cap=0.15)
        assert policy.backoff(0) == pytest.approx(0.05)
        assert policy.backoff(1) == pytest.approx(0.10)
        assert policy.backoff(2) == pytest.approx(0.15)   # capped
        assert policy.backoff(10) == pytest.approx(0.15)

    def test_checkpoint_policy_due(self):
        policy = CheckpointPolicy(every_records=4, interval_s=0.5)
        assert not policy.due(0, 99.0)          # nothing new: never due
        assert policy.due(4, 0.0)               # record threshold
        assert policy.due(1, 0.5)               # time threshold
        assert not policy.due(3, 0.1)

    def test_reconnect_with_backoff_retries_then_succeeds(self):
        calls = []

        def factory():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("refused")
            return "socket"

        assert reconnect_with_backoff(factory, 5, 0.001) == "socket"
        assert len(calls) == 3

    def test_reconnect_with_backoff_exhausts_to_none(self):
        def factory():
            raise OSError("refused")

        assert reconnect_with_backoff(factory, 2, 0.001) is None

    def test_reconnect_with_backoff_abort(self):
        assert reconnect_with_backoff(
            lambda: "socket", 3, 0.001, abort=lambda: True) is None


class TestCheckpointInterleavings:
    """Satellite (c): any interleaving of CHECKPOINT frames + final
    RESULT with duplicates and reorders merges to the same ReplayResult
    as the clean in-order run."""

    @staticmethod
    def _merge(frames, order):
        store = CheckpointStore()
        for slot in order:
            payload = frames[slot]
            store.offer_frame((1, payload["worker"]), payload)
        return merge_recovered(store.snapshots())

    def _assert_interleaving_clean(self, frames, order, total):
        clean = self._merge(frames, range(len(frames)))
        adversarial = self._merge(frames, order)
        assert adversarial.to_dict() == clean.to_dict()
        assert conservation_violations(adversarial, total) == []

    def test_seeded_interleavings_match_clean_run(self):
        for seed in range(150):
            frames, order, total = checkpoint_deliveries(
                seed, workers=3, total=10)
            self._assert_interleaving_clean(frames, order, total)

    def test_emission_history_shape(self):
        import random
        frames = checkpoint_emission_history(random.Random(0), workers=2,
                                             total=6)
        finals = [f for f in frames if f["final"]]
        assert sorted(f["worker"] for f in finals) == [0, 1]
        # Snapshots are cumulative: within a worker, each frame's index
        # set contains the previous frame's.
        for worker in (0, 1):
            chain = [set(q["index"] for q in f["result"]["sent"])
                     for f in frames if f["worker"] == worker]
            for earlier, later in zip(chain, chain[1:]):
                assert earlier <= later

    if HAVE_HYPOTHESIS:
        from hypothesis import given, settings
        from repro.verify.generators import checkpoint_interleavings

        @settings(max_examples=60, deadline=None)
        @given(case=checkpoint_interleavings(workers=2, total=8))
        def test_hypothesis_interleavings_match_clean_run(self, case):
            frames, order, total = case
            self._assert_interleaving_clean(frames, order, total)


# -- end-to-end crash recovery (real process trees) --------------------------

def _recovering_config(distributors=1, queriers=2, chaos=None):
    return DistributedConfig(
        distributors=distributors, queriers_per_distributor=queriers,
        settle_time=0.5, recovery=RecoveryConfig(chaos=chaos))


@pytest.mark.chaos
class TestCrashRecoveryEndToEnd:
    def test_clean_recovery_run_has_no_overhead_effects(self):
        """Recovery mode with no faults: same conservation guarantees,
        zero respawns, zero redeliveries."""
        trace = fixed_interval_trace(interval=0.002, duration=0.3,
                                     client_count=8)
        with UdpEchoServerProcess() as echo:
            topology = ProcessTopology((echo.address, echo.port),
                                       _recovering_config())
            result = topology.replay(trace)
        assert conservation_violations(result, len(trace.records)) == []
        assert result.respawns == 0
        assert result.redelivered_records == 0

    def test_chaos_crash_is_respawned_and_conserved(self):
        """Queriers crash deterministically on their first incarnation;
        the respawned incarnation finishes the shard and the merge
        accounts for every record exactly once."""
        trace = fixed_interval_trace(interval=0.002, duration=0.4,
                                     client_count=8)
        chaos = ChaosConfig(seed=7, crash_rate=1.0, crash_after_frames=30,
                            crash_incarnations=(0,))
        with UdpEchoServerProcess() as echo:
            topology = ProcessTopology((echo.address, echo.port),
                                       _recovering_config(chaos=chaos))
            result = topology.replay(trace)
        assert conservation_violations(result, len(trace.records)) == []
        assert result.respawns >= 1
        assert result.redelivered_records > 0

    def test_sigkill_two_of_four_queriers_conserves(self):
        """ISSUE acceptance: a 4-querier process replay with 2 workers
        SIGKILLed mid-run completes with conserved per-class counts."""
        trace = fixed_interval_trace(interval=0.002, duration=1.2,
                                     client_count=16)
        with UdpEchoServerProcess() as echo:
            topology = ProcessTopology(
                (echo.address, echo.port),
                _recovering_config(distributors=2, queriers=2))

            def assassin():
                time.sleep(0.4)
                for handle in (topology.querier_handles[0],
                               topology.querier_handles[2]):
                    if handle.pid is not None:
                        os.kill(handle.pid, signal.SIGKILL)

            killer = threading.Thread(target=assassin, daemon=True)
            killer.start()
            result = topology.replay(trace)
            killer.join(timeout=1.0)
        assert conservation_violations(result, len(trace.records)) == []
        assert result.respawns == 2
        answered = sum(1 for q in result.sent if q.answered_at is not None)
        assert answered == len(trace.records)

    def test_shard_topology_respawns_crashed_replicas(self):
        """ROLE_SHARD replicas ride the same respawn path: shards that
        crash while reporting are rerun deterministically."""
        chaos = ChaosConfig(seed=3, crash_rate=1.0, kinds=(MSG_RESULT,),
                            crash_incarnations=(0,))
        topology = ShardTopology(
            2,
            trace_factory=("repro.trace.synthetic", "zipf_trace",
                           {"query_count": 400, "client_count": 16,
                            "server": "10.0.0.2"}),
            recovery=RecoveryConfig(chaos=chaos),
            collect_timeout=60.0)
        result = topology.replay()
        assert len(result.sent) == 400
        assert topology.lost_shards == 0
        assert topology.respawns == 2
        assert result.respawns == 2
