"""Smoke-level tests for every experiment harness: each must run at a
tiny scale and reproduce the paper's qualitative shape."""

import pytest

from repro.experiments import (RootRunConfig, Scale, build_evaluation_topology,
                               gib, run_root_replay)
from repro.experiments import common
from repro.experiments import (fig6_timing, fig7_interarrival, fig8_rate,
                               fig9_throughput, fig10_dnssec, fig11_cpu,
                               fig13_14_footprint, fig15_latency,
                               hierarchy_validation, table1)

TINY = Scale("tiny", rate=40.0, duration=15.0, monitor_period=5.0)


class TestScaleMath:
    def test_report_factor(self):
        assert TINY.report_factor == pytest.approx(38000 / 40)

    def test_clients_scale_with_rate(self):
        assert TINY.clients == int(40 * common.CLIENTS_PER_RATE)

    def test_presets_exist(self):
        assert set(common.SCALES) == {"smoke", "quick", "full"}


class TestTopology:
    def test_fig5_topology(self):
        testbed = build_evaluation_topology()
        assert testbed.server_host.primary_address == testbed.server_address
        assert testbed.network.host("controller")

    def test_fig12_rtt(self):
        testbed = build_evaluation_topology(client_rtt=0.08)
        assert testbed.network.latency.rtt("client-1", "server") == 0.08


class TestRootHarness:
    def test_original_run_answers(self):
        output = run_root_replay(RootRunConfig(scale=TINY))
        assert output.result.answered_fraction() > 0.95
        assert output.monitor.samples

    def test_tcp_mutation_applied(self):
        output = run_root_replay(RootRunConfig(scale=TINY, protocol="tcp"))
        assert all(record.protocol == "tcp" for record in output.trace)

    def test_do_fraction_mutation(self):
        output = run_root_replay(RootRunConfig(scale=TINY, protocol="original",
                                               do_fraction=1.0))
        do = sum(1 for r in output.trace if r.message().dnssec_ok)
        assert do == len(output.trace)


class TestTable1:
    def test_rows_for_every_trace(self):
        output = table1.run(TINY)
        names = [row[0] for row in output.rows]
        for expected in ("B-Root-16", "B-Root-17a", "B-Root-17b", "Rec-17",
                         "syn-0", "syn-4"):
            assert expected in names

    def test_synthetic_interarrivals_exact(self):
        output = table1.run(TINY)
        by_name = {row[0]: row for row in output.rows}
        assert by_name["syn-2"][2] == pytest.approx(0.01)


class TestFig6:
    def test_error_quartiles_in_paper_range(self):
        output = fig6_timing.run(TINY, max_queries=3000)
        by_trace = {row[0]: row for row in output.rows}
        # typical quartiles within a few ms; extremes within ±17 ms
        for label, row in by_trace.items():
            assert abs(row[1]) < 12.0, (label, row)
            assert abs(row[3]) <= 17.01 and abs(row[4]) <= 17.01

    def test_anomaly_at_tenth_second(self):
        output = fig6_timing.run(TINY, max_queries=3000)
        by_trace = {row[0]: row for row in output.rows}
        tenth = by_trace["0.1 s"]
        hundredth = by_trace["0.01 s"]
        assert abs(tenth[3]) > abs(hundredth[1])  # wider distribution


class TestFig7:
    def test_median_on_target(self):
        output = fig7_interarrival.run(TINY, max_queries=2000)
        for row in output.rows:
            original_median, replay_median = row[1], row[2]
            assert replay_median == pytest.approx(original_median,
                                                  rel=0.6)

    def test_broot_cdf_close(self):
        output = fig7_interarrival.run(TINY, max_queries=2000)
        broot = [row for row in output.rows if row[0] == "B-Root"][0]
        assert broot[5] < 0.08  # max CDF distance


class TestFig8:
    def test_rates_track(self):
        output = fig8_rate.run(TINY, trials=2)
        assert len(output.rows) == 2
        for row in output.rows:
            assert row[3] > 0.7  # within ±2 %


class TestFig9:
    def test_live_and_simulated_rows(self):
        output = fig9_throughput.run(TINY, live_duration=0.4,
                                     sim_queries=2000)
        modes = [row[0] for row in output.rows]
        assert "live loopback" in modes
        assert "simulated fast-path" in modes
        live = output.rows[0]
        assert live[2] > 1000  # q/s


class TestFig10:
    @pytest.fixture(scope="class")
    def output(self):
        return fig10_dnssec.run(TINY)

    def test_configuration_set(self, output):
        # Six paper bars + two future-work 4096-bit rows.
        assert len(output.rows) == 8
        zsk_sizes = {row[1] for row in output.rows}
        assert zsk_sizes == {1024, 2048, 4096}

    def test_do_increase(self, output):
        rows = {(row[0], row[1], row[2]): row[3] for row in output.rows}
        base = rows[("72.3%", 2048, "normal")]
        full = rows[("100%", 2048, "normal")]
        increase = full / base - 1
        assert 0.10 < increase < 0.60  # paper: +31 %

    def test_key_size_increase(self, output):
        rows = {(row[0], row[1], row[2]): row[3] for row in output.rows}
        small = rows[("72.3%", 1024, "normal")]
        large = rows[("72.3%", 2048, "normal")]
        increase = large / small - 1
        assert 0.15 < increase < 0.60  # paper: +32 %


class TestFig11:
    @pytest.fixture(scope="class")
    def output(self):
        return fig11_cpu.run(TINY, timeouts=(5.0, 20.0))

    def test_tcp_cheaper_than_original(self, output):
        rows = {(row[0], row[1]): row[2] for row in output.rows}
        assert rows[("tcp", 20.0)] < rows[("original", 20.0)]

    def test_tls_between(self, output):
        rows = {(row[0], row[1]): row[2] for row in output.rows}
        assert rows[("tcp", 20.0)] < rows[("tls", 20.0)]

    def test_magnitudes_near_paper(self, output):
        rows = {(row[0], row[1]): row[2] for row in output.rows}
        assert 2.0 < rows[("tcp", 20.0)] < 9.0       # paper ~5 %
        assert 6.0 < rows[("original", 20.0)] < 15.0  # paper ~10 %

    def test_tls_higher_at_small_timeout(self, output):
        rows = {(row[0], row[1]): row[2] for row in output.rows}
        assert rows[("tls", 5.0)] > rows[("tls", 20.0)]


class TestFig13And14:
    @pytest.fixture(scope="class")
    def tcp_output(self):
        return fig13_14_footprint.run("tcp", TINY, timeouts=(5.0, 20.0),
                                      include_baseline=True)

    def test_memory_grows_with_timeout(self, tcp_output):
        rows = {row[0]: row for row in tcp_output.rows}
        assert rows[20.0][1] > rows[5.0][1]

    def test_connections_grow_with_timeout(self, tcp_output):
        rows = {row[0]: row for row in tcp_output.rows}
        assert rows[20.0][3] > rows[5.0][3]

    def test_tcp_memory_magnitude(self, tcp_output):
        rows = {row[0]: row for row in tcp_output.rows}
        assert 8.0 < rows[20.0][1] < 25.0  # paper ~15 GB

    def test_baseline_small(self, tcp_output):
        rows = {row[0]: row for row in tcp_output.rows}
        assert rows["original/20"][1] < rows[20.0][1] / 2

    def test_tls_costs_more_than_tcp(self, tcp_output):
        tls_output = fig13_14_footprint.run("tls", TINY, timeouts=(20.0,),
                                            include_baseline=False)
        tcp_mem = {row[0]: row for row in tcp_output.rows}[20.0][1]
        tls_mem = tls_output.rows[0][1]
        assert tls_mem > tcp_mem
        assert tls_mem / tcp_mem < 1.6  # paper: ~+20-30 %


class TestFig15:
    @pytest.fixture(scope="class")
    def points(self):
        return fig15_latency.measure(TINY, rtts_ms=(20.0, 160.0))

    def find(self, points, protocol, rtt, group):
        for point in points:
            if (point.protocol, point.rtt_ms, point.group) == \
                    (protocol, rtt, group):
                return point
        raise AssertionError(f"missing {protocol}/{rtt}/{group}")

    def test_udp_latency_is_one_rtt(self, points):
        point = self.find(points, "original", 160.0, "all")
        assert point.stats["median"] == pytest.approx(0.160, rel=0.1)

    def test_tcp_all_clients_near_udp(self, points):
        udp = self.find(points, "original", 160.0, "all")
        tcp = self.find(points, "tcp", 160.0, "all")
        assert tcp.stats["median"] < udp.stats["median"] * 2.2

    def test_tcp_non_busy_about_two_rtt(self, points):
        point = self.find(points, "tcp", 160.0, "non-busy")
        assert 1.4 < point.median_rtt_multiple() < 2.6  # paper ~2

    def test_tls_non_busy_toward_four_rtt(self, points):
        point = self.find(points, "tls", 160.0, "non-busy")
        assert 3.0 < point.median_rtt_multiple() < 4.6  # paper -> 4

    def test_tls_grows_nonlinearly(self, points):
        low = self.find(points, "tls", 20.0, "non-busy")
        high = self.find(points, "tls", 160.0, "non-busy")
        assert high.median_rtt_multiple() > low.median_rtt_multiple()

    def test_threshold_scaling(self):
        assert fig15_latency.non_busy_threshold(1200.0) == 250
        assert fig15_latency.non_busy_threshold(12.0) == 8


class TestHierarchyValidation:
    def test_emulation_equivalence(self):
        output = hierarchy_validation.run(TINY, max_questions=25)
        rows = {row[0]: row for row in output.rows}
        matched, total = rows["answer equivalence"][1].split("/")
        assert matched == total
        repeat, total2 = rows["repeatability"][1].split("/")
        assert repeat == total2

    def test_deployment_cost_reduced(self):
        output = hierarchy_validation.run(TINY, max_questions=10)
        rows = {row[0]: row for row in output.rows}
        naive, meta = rows["deployment cost"][1].split(" -> ")
        assert int(naive.split()[0]) > int(meta.split()[0])


class TestRendering:
    def test_render_contains_paper_claims(self):
        output = table1.run(TINY)
        text = output.render()
        assert "paper" in text
        assert "B-Root-16" in text


class TestFootprintTimeseries:
    def test_timeseries_shape(self):
        series_scale = Scale("ts", rate=40.0, duration=150.0,
                             monitor_period=25.0)
        output = fig13_14_footprint.run_timeseries("tcp", series_scale,
                                                   timeout=20.0)
        assert len(output.rows) >= 5
        times = [row[0] for row in output.rows]
        assert times == sorted(times)
        memories = [row[1] for row in output.rows]
        # Connection-driven memory is far above the baseline and roughly
        # flat once steady (paper: stable after ~5 minutes).
        assert memories[0] > 5.0
        steady = memories[len(memories) // 2 :]
        assert max(steady) - min(steady) < max(steady) * 0.4
        # TIME_WAIT builds toward its 60s-lifetime steady population.
        time_waits = [row[4] for row in output.rows]
        assert max(time_waits) > time_waits[0]
