"""Tests for synthetic DNSSEC: sizes, determinism, signing, NSEC."""

import pytest

from repro.dns import Name, RRType, read_zone
from repro.dns import dnssec
from repro.dns.dnssec import Key, SigningConfig, make_ds, make_rrsig, \
    nsec_chain, sign_zone, verify_rrsig

ZONE = """
$ORIGIN example.
@ 3600 IN SOA ns1 admin 1 7200 900 1209600 86400
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.1
www 300 IN A 192.0.2.80
sub 3600 IN NS ns1.sub
ns1.sub 3600 IN A 192.0.2.53
"""


@pytest.fixture
def zone():
    return read_zone(ZONE)


class TestKeys:
    def test_signature_size_tracks_modulus(self):
        assert Key(Name.from_text("."), 1024).signature_size == 128
        assert Key(Name.from_text("."), 2048).signature_size == 256

    def test_dnskey_material_size(self):
        key = Key(Name.from_text("."), 2048)
        # 1-byte exponent length + 3-byte exponent + modulus
        assert len(key.dnskey().key) == 4 + 256

    def test_deterministic(self):
        a = Key(Name.from_text("example."), 1024)
        b = Key(Name.from_text("example."), 1024)
        assert a.dnskey() == b.dnskey()

    def test_salt_differentiates(self):
        a = Key(Name.from_text("example."), 1024)
        b = Key(Name.from_text("example."), 1024, salt=b"incoming")
        assert a.dnskey() != b.dnskey()

    def test_ksk_flag(self):
        ksk = Key(Name.from_text("."), 2048, flags=257)
        assert ksk.is_ksk()
        assert ksk.dnskey().flags == 257


class TestSigning:
    def test_rrsig_sizes(self, zone):
        rrset = zone.get(Name.from_text("www.example."), RRType.A)
        for bits in (1024, 2048, 4096):
            sig = make_rrsig(rrset, Key(zone.origin, bits))
            assert len(sig.signature) == bits // 8

    def test_verify_accepts_valid(self, zone):
        key = Key(zone.origin, 1024)
        rrset = zone.get(Name.from_text("www.example."), RRType.A)
        assert verify_rrsig(rrset, make_rrsig(rrset, key), key)

    def test_verify_rejects_wrong_key(self, zone):
        key = Key(zone.origin, 1024)
        other = Key(zone.origin, 2048)
        rrset = zone.get(Name.from_text("www.example."), RRType.A)
        assert not verify_rrsig(rrset, make_rrsig(rrset, key), other)

    def test_verify_rejects_tampered_rrset(self, zone):
        key = Key(zone.origin, 1024)
        rrset = zone.get(Name.from_text("www.example."), RRType.A)
        sig = make_rrsig(rrset, key)
        tampered = zone.get(Name.from_text("ns1.example."), RRType.A)
        assert not verify_rrsig(tampered, sig, key)


class TestSignZone:
    def test_every_rrset_signed_except_delegations(self, zone):
        signed = sign_zone(zone, SigningConfig(zsk_bits=1024))
        for rrset in signed.iter_rrsets():
            if rrset.rrtype in (RRType.RRSIG,):
                continue
            if rrset.rrtype == RRType.NS and rrset.name != signed.origin:
                # Delegation NS must stay unsigned.
                sigs = signed.get(rrset.name, RRType.RRSIG)
                covered = [s.type_covered for s in sigs] if sigs else []
                assert RRType.NS not in covered
                continue
            sigs = signed.get(rrset.name, RRType.RRSIG)
            assert sigs is not None
            assert rrset.rrtype in [s.type_covered for s in sigs]

    def test_dnskey_signed_by_ksk(self, zone):
        config = SigningConfig(zsk_bits=1024, ksk_bits=2048)
        signed = sign_zone(zone, config)
        ksk = Key(zone.origin, 2048, flags=257)
        sigs = signed.get(zone.origin, RRType.RRSIG)
        dnskey_sigs = [s for s in sigs if s.type_covered == RRType.DNSKEY]
        assert dnskey_sigs[0].key_tag == ksk.key_tag()

    def test_rollover_publishes_extra_zsk(self, zone):
        normal = sign_zone(zone, SigningConfig(zsk_bits=2048))
        rollover = sign_zone(zone, SigningConfig(
            zsk_bits=2048, rollover_extra_zsk_bits=1024))
        assert len(rollover.get(zone.origin, RRType.DNSKEY)) == \
            len(normal.get(zone.origin, RRType.DNSKEY)) + 1

    def test_original_zone_unmodified(self, zone):
        before = zone.record_count()
        sign_zone(zone)
        assert zone.record_count() == before

    def test_signing_deterministic(self, zone):
        a = sign_zone(zone, SigningConfig(zsk_bits=1024))
        b = sign_zone(zone, SigningConfig(zsk_bits=1024))
        assert [rr.to_text() for rr in a.iter_rrs()] == \
            [rr.to_text() for rr in b.iter_rrs()]


class TestNsec:
    def test_chain_is_cyclic(self, zone):
        chain = nsec_chain(zone)
        owners = {rr.name for rr in chain}
        next_names = {rr.rdata.next_name for rr in chain}
        assert owners == next_names  # a cycle covers every name once

    def test_chain_covers_all_names(self, zone):
        chain = nsec_chain(zone)
        assert {rr.name for rr in chain} == set(zone.names())

    def test_bitmap_includes_node_types(self, zone):
        chain = nsec_chain(zone)
        apex = [rr for rr in chain if rr.name == zone.origin][0]
        assert RRType.SOA in apex.rdata.types
        assert RRType.NSEC in apex.rdata.types


class TestDs:
    def test_ds_matches_key_tag(self):
        key = Key(Name.from_text("child.example."), 2048, flags=257)
        ds = make_ds(Name.from_text("child.example."), key)
        assert ds.key_tag == key.key_tag()
        assert len(ds.digest) == 32  # SHA-256
