"""Tests for the simulated TLS layer."""

import pytest

from repro.netsim import (EventLoop, Network, SessionCache, TcpOptions,
                          TcpStack, TlsEndpoint, TlsState)
from repro.netsim.tls import APPDATA_OVERHEAD, RECORD_HEADER_SIZE

RTT = 0.100


@pytest.fixture
def pair():
    loop = EventLoop()
    network = Network(loop)
    client_host = network.add_host("client", "10.2.0.1")
    server_host = network.add_host("server", "10.2.0.2")
    network.latency.set_rtt("client", "server", RTT)
    return loop, TcpStack(client_host), TcpStack(server_host)


def tls_echo(server, session_cache=None, crypto_hook=None, raw=False):
    endpoints = []

    def on_accept(conn):
        ep = TlsEndpoint(conn, "server", crypto_hook=crypto_hook)
        if raw:
            ep.on_data = lambda e, d: e.send(d)
        else:
            ep.on_data = lambda e, d: e.send(b"tls:" + d)
        conn.on_close = lambda cn: cn.close()
        endpoints.append(ep)

    server.listen("10.2.0.2", 853, on_accept, TcpOptions(nagle=False))
    return endpoints


def tls_connect(loop, client, session_cache=None, crypto_hook=None):
    conn = client.connect("10.2.0.1", "10.2.0.2", 853,
                          TcpOptions(nagle=False))
    return TlsEndpoint(conn, "client", session_cache=session_cache,
                       crypto_hook=crypto_hook)


class TestHandshake:
    def test_full_handshake_three_rtt(self, pair):
        loop, client, server = pair
        tls_echo(server)
        endpoint = tls_connect(loop, client)
        established = []
        endpoint.on_established = lambda ep: established.append(loop.now)
        loop.run(max_time=5)
        assert established and abs(established[0] - 3 * RTT) < 5e-3

    def test_fresh_query_four_rtt(self, pair):
        loop, client, server = pair
        tls_echo(server)
        endpoint = tls_connect(loop, client)
        endpoint.send(b"q")
        answers = []
        endpoint.on_data = lambda ep, d: answers.append((loop.now, d))
        loop.run(max_time=5)
        assert answers and answers[0][1] == b"tls:q"
        assert abs(answers[0][0] - 4 * RTT) < 5e-3

    def test_handshake_bytes_accounted(self, pair):
        loop, client, server = pair
        servers = tls_echo(server)
        endpoint = tls_connect(loop, client)
        loop.run(max_time=5)
        assert endpoint.handshake_bytes > 500
        assert servers[0].handshake_bytes > 1000  # cert-bearing flight

    def test_resumption_shortens_handshake(self, pair):
        loop, client, server = pair
        tls_echo(server)
        cache = SessionCache()
        first = tls_connect(loop, client, session_cache=cache)
        first.send(b"a")
        done = []
        first.on_data = lambda ep, d: (done.append(loop.now), ep.close())
        loop.run(max_time=5)
        assert len(cache) == 1
        start = loop.now
        second = tls_connect(loop, client, session_cache=cache)
        second.send(b"b")
        answers = []
        second.on_data = lambda ep, d: answers.append(loop.now - start)
        loop.run(max_time=20)
        assert second.resumed
        assert answers and answers[0] < 3.5 * RTT  # 3 RTT abbreviated


class TestRecords:
    def test_appdata_roundtrip_exact(self, pair):
        loop, client, server = pair
        tls_echo(server)
        endpoint = tls_connect(loop, client)
        payload = bytes(range(200))
        endpoint.send(payload)
        got = []
        endpoint.on_data = lambda ep, d: got.append(d)
        loop.run(max_time=5)
        assert got == [b"tls:" + payload]

    def test_record_overhead_on_wire(self, pair):
        loop, client, server = pair
        tls_echo(server)
        endpoint = tls_connect(loop, client)
        loop.run(max_time=5)
        before = endpoint.tcp.bytes_sent
        endpoint.send(b"x" * 100)
        loop.run(max_time=10)
        sent = endpoint.tcp.bytes_sent - before
        assert sent == RECORD_HEADER_SIZE + 100 + APPDATA_OVERHEAD

    def test_large_appdata_split_into_records(self, pair):
        loop, client, server = pair
        tls_echo(server, raw=True)
        endpoint = tls_connect(loop, client)
        payload = b"z" * 40000  # > 2 records of 16 KiB
        endpoint.send(payload)
        received = bytearray()
        endpoint.on_data = lambda ep, d: received.extend(d)
        loop.run(max_time=20)
        assert bytes(received) == payload

    def test_queued_before_established(self, pair):
        loop, client, server = pair
        tls_echo(server)
        endpoint = tls_connect(loop, client)
        endpoint.send(b"queued")
        assert endpoint.state != TlsState.ESTABLISHED
        got = []
        endpoint.on_data = lambda ep, d: got.append(d)
        loop.run(max_time=5)
        assert got == [b"tls:queued"]


class TestCryptoHooks:
    def test_server_charged_for_private_key_op(self, pair):
        loop, client, server = pair
        charges = []
        tls_echo(server, crypto_hook=lambda kind, size:
                 charges.append((kind, size)))
        endpoint = tls_connect(loop, client)
        endpoint.send(b"q")
        loop.run(max_time=5)
        kinds = [kind for kind, _size in charges]
        assert "handshake_private_key" in kinds
        assert "record_decrypt" in kinds and "record_encrypt" in kinds

    def test_close_propagates(self, pair):
        loop, client, server = pair
        tls_echo(server)
        endpoint = tls_connect(loop, client)
        closed = []
        endpoint.on_close = lambda ep: closed.append(True)
        loop.run(max_time=2)
        endpoint.close()
        loop.run(max_time=10)
        assert endpoint.state == TlsState.CLOSED
