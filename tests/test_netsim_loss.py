"""Tests for packet loss and TCP retransmission."""

import pytest

from repro.netsim import (EventLoop, Network, TcpOptions, TcpStack)


def make_pair(loss_rate=0.0, loss_seed=0, rtt=0.02):
    loop = EventLoop()
    network = Network(loop, loss_rate=loss_rate, loss_seed=loss_seed)
    client_host = network.add_host("c", "10.55.0.1")
    server_host = network.add_host("s", "10.55.0.2")
    network.latency.set_rtt("c", "s", rtt)
    return loop, network, TcpStack(client_host), TcpStack(server_host)


def echo(server, **options):
    def on_accept(conn):
        conn.on_data = lambda cn, data: cn.send(data)
        conn.on_close = lambda cn: cn.close()
    server.listen("10.55.0.2", 53, on_accept,
                  TcpOptions(nagle=False, **options))


class TestLossModel:
    def test_lossless_by_default(self):
        loop, network, client, server = make_pair()
        assert network.loss_rate == 0.0

    def test_udp_loss_drops_fraction(self):
        loop, network, client, server = make_pair(loss_rate=0.3,
                                                  loss_seed=7)
        received = []
        network.host("s").bind_udp("10.55.0.2", 99,
                                   lambda s, d, a, p: received.append(d))
        sock = network.host("c").bind_udp("10.55.0.1", 0)
        for i in range(200):
            loop.call_at(i * 0.01, sock.sendto, b"x", "10.55.0.2", 99)
        loop.run()
        assert 100 < len(received) < 180  # ~70% delivered
        assert network.dropped_by_loss == 200 - len(received)

    def test_loss_deterministic_by_seed(self):
        counts = []
        for _ in range(2):
            loop, network, client, server = make_pair(loss_rate=0.2,
                                                      loss_seed=3)
            received = []
            network.host("s").bind_udp("10.55.0.2", 99,
                                       lambda s, d, a, p:
                                       received.append(d))
            sock = network.host("c").bind_udp("10.55.0.1", 0)
            for i in range(100):
                loop.call_at(i * 0.01, sock.sendto, b"x",
                             "10.55.0.2", 99)
            loop.run()
            counts.append(len(received))
        assert counts[0] == counts[1]

    def test_loopback_never_lossy(self):
        loop, network, client, server = make_pair(loss_rate=1.0)
        got = []
        host = network.host("c")
        host.bind_udp("10.55.0.1", 88, lambda s, d, a, p: got.append(d))
        sock = host.bind_udp("10.55.0.1", 0)
        sock.sendto(b"self", "10.55.0.1", 88)
        loop.run()
        assert got == [b"self"]


class TestTcpRetransmission:
    def test_data_survives_loss(self):
        loop, network, client, server = make_pair(loss_rate=0.25,
                                                  loss_seed=11)
        echo(server)
        received = bytearray()
        conn = client.connect("10.55.0.1", "10.55.0.2", 53,
                              TcpOptions(nagle=False))
        payload = bytes(range(256)) * 40
        conn.on_connected = lambda cn: cn.send(payload)
        conn.on_data = lambda cn, d: received.extend(d)
        loop.run(max_time=120)
        assert bytes(received) == payload
        total_retransmissions = (
            conn.retransmissions
            + sum(c.retransmissions for c in server.connections()))
        assert total_retransmissions + server.retransmitted_segments \
            + client.retransmitted_segments >= 0  # counters exist
        assert network.dropped_by_loss > 0

    def test_handshake_survives_syn_loss(self):
        # Seed chosen so the first packet (the SYN) is dropped.
        loop, network, client, server = make_pair(loss_rate=0.9,
                                                  loss_seed=1)
        echo(server)
        connected = []
        conn = client.connect("10.55.0.1", "10.55.0.2", 53,
                              TcpOptions(nagle=False))
        conn.on_connected = lambda cn: connected.append(loop.now)
        network.loss_rate = 0.0  # let retries through
        loop.run(max_time=30)
        assert connected
        assert connected[0] >= 1.0  # at least one RTO elapsed

    def test_gives_up_after_max_retransmits(self):
        loop, network, client, server = make_pair(loss_rate=1.0)
        echo(server)
        failed = []
        conn = client.connect("10.55.0.1", "10.55.0.2", 53,
                              TcpOptions(nagle=False))
        conn.on_reset = lambda cn: failed.append(loop.now)
        loop.run(max_time=300)
        assert failed
        from repro.netsim.tcp import TcpState
        assert conn.state == TcpState.CLOSED
        assert conn.retransmissions == 6

    def test_no_retransmissions_on_clean_link(self):
        loop, network, client, server = make_pair(loss_rate=0.0)
        echo(server)
        conn = client.connect("10.55.0.1", "10.55.0.2", 53,
                              TcpOptions(nagle=False))
        conn.on_connected = lambda cn: cn.send(b"q" * 5000)
        loop.run(max_time=30)
        assert conn.retransmissions == 0
        assert client.retransmitted_segments == 0

    def test_rto_backoff_doubles(self):
        loop, network, client, server = make_pair(loss_rate=1.0)
        sent_times = []
        original_send = network.host("c").send_packet

        def spy(packet, **kwargs):
            sent_times.append(loop.now)
            return original_send(packet, **kwargs)

        network.host("c").send_packet = spy
        client.connect("10.55.0.1", "10.55.0.2", 53,
                       TcpOptions(nagle=False))
        loop.run(max_time=300)
        gaps = [b - a for a, b in zip(sent_times, sent_times[1:])]
        # 1, 2, 4, 8, 16, 16 (capped)
        assert gaps[0] == pytest.approx(1.0, abs=0.01)
        assert gaps[1] == pytest.approx(2.0, abs=0.01)
        assert gaps[2] == pytest.approx(4.0, abs=0.01)
        assert gaps[-1] <= 16.01
