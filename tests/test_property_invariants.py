"""Property-based tests on cross-module invariants."""

import struct

from hypothesis import given, settings, strategies as st

from repro.dns import Name, RRClass, RRType, Zone, AnswerKind, make_soa
from repro.dns import rdata as rd
from repro.dns.rrset import RR
from repro.netsim import EventLoop, Network, TcpOptions, TcpStack
from repro.trace.pcap import _TcpStreamAssembler

# ---------------------------------------------------------------------------
# TCP: any payload, any MSS -> exact in-order delivery.
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(payloads=st.lists(st.binary(min_size=1, max_size=4000),
                         min_size=1, max_size=5),
       mss=st.integers(min_value=64, max_value=2000))
def test_tcp_delivers_any_payload_sequence_exactly(payloads, mss):
    loop = EventLoop()
    network = Network(loop)
    client_host = network.add_host("c", "10.50.0.1")
    server_host = network.add_host("s", "10.50.0.2")
    client = TcpStack(client_host)
    server = TcpStack(server_host)

    received = bytearray()

    def on_accept(conn):
        conn.on_data = lambda _cn, data: received.extend(data)

    server.listen("10.50.0.2", 53, on_accept,
                  TcpOptions(nagle=False, mss=mss))
    conn = client.connect("10.50.0.1", "10.50.0.2", 53,
                          TcpOptions(nagle=False, mss=mss))

    def send_all(cn):
        for payload in payloads:
            cn.send(payload)

    conn.on_connected = send_all
    loop.run(max_time=60)
    assert bytes(received) == b"".join(payloads)


# ---------------------------------------------------------------------------
# pcap reassembly: any chunking of a framed stream yields the messages.
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(messages=st.lists(st.binary(min_size=1, max_size=200),
                         min_size=1, max_size=6),
       chunk=st.integers(min_value=1, max_value=64))
def test_assembler_invariant_under_chunking(messages, chunk):
    stream = b"".join(struct.pack("!H", len(m)) + m for m in messages)
    assembler = _TcpStreamAssembler()
    out = []
    for start in range(0, len(stream), chunk):
        assembler.add(1000 + start, stream[start : start + chunk])
        out.extend(assembler.drain_messages())
    assert out == messages


# ---------------------------------------------------------------------------
# Zone lookups: classification is total and consistent.
# ---------------------------------------------------------------------------

LABEL = st.text(alphabet="abcdxyz", min_size=1, max_size=6)


@st.composite
def zone_and_query(draw):
    origin = Name.from_text("prop.example.")
    zone = Zone(origin)
    zone.add_rr(make_soa(origin))
    zone.add_rr(RR(origin, 300, RRClass.IN,
                   rd.NS(Name.from_text("ns.prop.example."))))
    zone.add_rr(RR(Name.from_text("ns.prop.example."), 300, RRClass.IN,
                   rd.A("192.0.2.1")))
    hosts = draw(st.lists(LABEL, min_size=0, max_size=6, unique=True))
    for label in hosts:
        zone.add_rr(RR(Name((label.encode(),) + origin.labels), 300,
                       RRClass.IN, rd.A("192.0.2.2")))
    qlabel = draw(LABEL)
    return zone, hosts, qlabel


@settings(max_examples=100, deadline=None)
@given(zone_and_query())
def test_zone_lookup_classification_consistent(case):
    zone, hosts, qlabel = case
    qname = Name((qlabel.encode(),) + zone.origin.labels)
    result = zone.lookup(qname, RRType.A)
    if qlabel in hosts or qlabel == "ns":
        assert result.kind == AnswerKind.ANSWER
        assert result.rrsets[0].name == qname
    else:
        assert result.kind == AnswerKind.NXDOMAIN
    # A covering name always exists for in-zone queries.
    covering = zone.covering_name(qname)
    assert covering is not None
    # AAAA at an existing name is NODATA, never NXDOMAIN.
    if qlabel in hosts:
        assert zone.lookup(qname, RRType.AAAA).kind == AnswerKind.NODATA


# ---------------------------------------------------------------------------
# Canonical DNS ordering is a total order consistent with subdomain-ness.
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(st.lists(st.lists(LABEL, min_size=0, max_size=3), min_size=2,
                max_size=8))
def test_canonical_order_sorts_parents_before_children(names_labels):
    names = [Name([l.encode() for l in labels])
             for labels in names_labels]
    ordered = sorted(names)
    for index, name in enumerate(ordered):
        parent_positions = [ordered.index(other) for other in ordered
                            if other != name
                            and name.is_subdomain_of(other)]
        # RFC 4034 canonical order sorts every ancestor before the child.
        assert all(pos < index for pos in parent_positions)
