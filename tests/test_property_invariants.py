"""Property-based tests on cross-module invariants."""

import struct

from hypothesis import given, settings, strategies as st

from repro.dns import (AnswerKind, Edns, Message, Name, RRClass, RRType,
                       WireError, Zone, make_soa)
from repro.dns import rdata as rd
from repro.dns.rrset import RR
from repro.netsim import EventLoop, Network, TcpOptions, TcpStack
from repro.trace.pcap import _TcpStreamAssembler
from repro.verify.generators import (dnssec_rdata, edns_options,
                                     wire_messages)

# ---------------------------------------------------------------------------
# TCP: any payload, any MSS -> exact in-order delivery.
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(payloads=st.lists(st.binary(min_size=1, max_size=4000),
                         min_size=1, max_size=5),
       mss=st.integers(min_value=64, max_value=2000))
def test_tcp_delivers_any_payload_sequence_exactly(payloads, mss):
    loop = EventLoop()
    network = Network(loop)
    client_host = network.add_host("c", "10.50.0.1")
    server_host = network.add_host("s", "10.50.0.2")
    client = TcpStack(client_host)
    server = TcpStack(server_host)

    received = bytearray()

    def on_accept(conn):
        conn.on_data = lambda _cn, data: received.extend(data)

    server.listen("10.50.0.2", 53, on_accept,
                  TcpOptions(nagle=False, mss=mss))
    conn = client.connect("10.50.0.1", "10.50.0.2", 53,
                          TcpOptions(nagle=False, mss=mss))

    def send_all(cn):
        for payload in payloads:
            cn.send(payload)

    conn.on_connected = send_all
    loop.run(max_time=60)
    assert bytes(received) == b"".join(payloads)


# ---------------------------------------------------------------------------
# pcap reassembly: any chunking of a framed stream yields the messages.
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(messages=st.lists(st.binary(min_size=1, max_size=200),
                         min_size=1, max_size=6),
       chunk=st.integers(min_value=1, max_value=64))
def test_assembler_invariant_under_chunking(messages, chunk):
    stream = b"".join(struct.pack("!H", len(m)) + m for m in messages)
    assembler = _TcpStreamAssembler()
    out = []
    for start in range(0, len(stream), chunk):
        assembler.add(1000 + start, stream[start : start + chunk])
        out.extend(assembler.drain_messages())
    assert out == messages


# ---------------------------------------------------------------------------
# Zone lookups: classification is total and consistent.
# ---------------------------------------------------------------------------

LABEL = st.text(alphabet="abcdxyz", min_size=1, max_size=6)


@st.composite
def zone_and_query(draw):
    origin = Name.from_text("prop.example.")
    zone = Zone(origin)
    zone.add_rr(make_soa(origin))
    zone.add_rr(RR(origin, 300, RRClass.IN,
                   rd.NS(Name.from_text("ns.prop.example."))))
    zone.add_rr(RR(Name.from_text("ns.prop.example."), 300, RRClass.IN,
                   rd.A("192.0.2.1")))
    hosts = draw(st.lists(LABEL, min_size=0, max_size=6, unique=True))
    for label in hosts:
        zone.add_rr(RR(Name((label.encode(),) + origin.labels), 300,
                       RRClass.IN, rd.A("192.0.2.2")))
    qlabel = draw(LABEL)
    return zone, hosts, qlabel


@settings(max_examples=100, deadline=None)
@given(zone_and_query())
def test_zone_lookup_classification_consistent(case):
    zone, hosts, qlabel = case
    qname = Name((qlabel.encode(),) + zone.origin.labels)
    result = zone.lookup(qname, RRType.A)
    if qlabel in hosts or qlabel == "ns":
        assert result.kind == AnswerKind.ANSWER
        assert result.rrsets[0].name == qname
    else:
        assert result.kind == AnswerKind.NXDOMAIN
    # A covering name always exists for in-zone queries.
    covering = zone.covering_name(qname)
    assert covering is not None
    # AAAA at an existing name is NODATA, never NXDOMAIN.
    if qlabel in hosts:
        assert zone.lookup(qname, RRType.AAAA).kind == AnswerKind.NODATA


# ---------------------------------------------------------------------------
# Codec round trips: EDNS options and DNSSEC rdata survive the wire.
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(options=edns_options(),
       payload_size=st.integers(min_value=512, max_value=4096),
       dnssec_ok=st.booleans(),
       version=st.integers(min_value=0, max_value=255))
def test_edns_round_trips_through_wire(options, payload_size, dnssec_ok,
                                       version):
    edns = Edns(payload_size=payload_size, dnssec_ok=dnssec_ok,
                version=version, options=options)
    query = Message.make_query(Name.from_text("e.example.com."), RRType.A,
                               msg_id=7, edns=edns)
    decoded = Message.from_wire(query.to_wire()).edns
    assert decoded is not None
    assert decoded.payload_size == payload_size
    assert decoded.dnssec_ok == dnssec_ok
    assert decoded.version == version
    assert [(o.code, o.data) for o in decoded.options] == \
        [(o.code, o.data) for o in options]


@settings(max_examples=100, deadline=None)
@given(rdata=dnssec_rdata())
def test_dnssec_rdata_round_trips_through_wire(rdata):
    rrtype = RRType[type(rdata).__name__]
    response = Message(msg_id=9)
    response.answer.append(
        RR(Name.from_text("sec.example.com."), 300, RRClass.IN, rdata))
    decoded = Message.from_wire(response.to_wire())
    assert decoded.answer[0].rrtype == rrtype
    assert decoded.answer[0].rdata == rdata


@settings(max_examples=150, deadline=None)
@given(wire=wire_messages())
def test_decoder_total_on_hostile_wires(wire):
    # The hardening satellite's closure property: any byte string either
    # decodes (and then re-encodes and re-decodes) or raises WireError —
    # no other exception type, no cursor corruption.
    try:
        message = Message.from_wire(wire)
    except WireError:
        return
    reencoded = message.to_wire()
    Message.from_wire(reencoded)


# ---------------------------------------------------------------------------
# Canonical DNS ordering is a total order consistent with subdomain-ness.
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(st.lists(st.lists(LABEL, min_size=0, max_size=3), min_size=2,
                max_size=8))
def test_canonical_order_sorts_parents_before_children(names_labels):
    names = [Name([l.encode() for l in labels])
             for labels in names_labels]
    ordered = sorted(names)
    for index, name in enumerate(ordered):
        parent_positions = [ordered.index(other) for other in ordered
                            if other != name
                            and name.is_subdomain_of(other)]
        # RFC 4034 canonical order sorts every ancestor before the child.
        assert all(pos < index for pos in parent_positions)
