"""Tests for synthetic workloads and zone generators."""

import pytest

from repro.dns import AnswerKind, Name, RRType
from repro.hierarchy import nameserver_addresses
from repro.trace import (BRootWorkload, RecursiveWorkload, SYNTHETIC_SPECS,
                         fixed_interval_trace, inactive_client_fraction,
                         interarrivals, make_hierarchy_zones, make_root_zone,
                         summarize, table1_synthetic, top_client_share)


class TestFixedInterval:
    def test_exact_count_and_spacing(self):
        trace = fixed_interval_trace(0.01, 1.0)
        assert len(trace) == 100
        gaps = interarrivals(trace)
        assert all(abs(g - 0.01) < 1e-12 for g in gaps)

    def test_unique_names(self):
        trace = fixed_interval_trace(0.1, 5.0)
        names = {str(r.question()[0]) for r in trace}
        assert len(names) == len(trace)

    def test_client_rotation(self):
        trace = fixed_interval_trace(0.01, 1.0, client_count=7)
        assert len(trace.clients()) == 7

    def test_table1_specs(self):
        for name, (interval, clients) in SYNTHETIC_SPECS.items():
            trace = table1_synthetic(name, duration=interval * 20)
            assert len(trace) == 20
            summary = summarize(trace)
            assert summary.interarrival_mean == pytest.approx(interval)


class TestBRootWorkload:
    @pytest.fixture(scope="class")
    def trace(self):
        return BRootWorkload(duration=30.0, mean_rate=400,
                             client_count=8000, seed=11).generate()

    def test_rate_near_target(self, trace):
        rate = len(trace) / 30.0
        assert 300 < rate < 500

    def test_sorted_timestamps(self, trace):
        times = [r.timestamp for r in trace]
        assert times == sorted(times)
        assert all(0 <= t <= 30.0 for t in times)

    def test_heavy_tailed_clients(self, trace):
        assert top_client_share(trace, 0.01) > 0.3
        assert inactive_client_fraction(trace, 10) > 0.6

    def test_protocol_mix(self, trace):
        tcp = sum(1 for r in trace if r.protocol == "tcp") / len(trace)
        assert 0.015 < tcp < 0.05  # ~3 %

    def test_do_fraction(self, trace):
        do = sum(1 for r in trace if r.message().dnssec_ok) / len(trace)
        assert 0.65 < do < 0.80  # ~72.3 %

    def test_burst_companions_share_source_and_port(self, trace):
        # Companion queries reuse the initial query's source and sport.
        by_key = {}
        for record in trace:
            by_key.setdefault((record.src, record.sport), []).append(record)
        bursts = [records for records in by_key.values() if len(records) > 1]
        assert bursts, "expected burst companions"

    def test_deterministic(self):
        a = BRootWorkload(duration=5.0, mean_rate=100, seed=2).generate()
        b = BRootWorkload(duration=5.0, mean_rate=100, seed=2).generate()
        assert [r.wire for r in a] == [r.wire for r in b]
        assert [r.timestamp for r in a] == [r.timestamp for r in b]

    def test_seed_changes_trace(self):
        a = BRootWorkload(duration=5.0, mean_rate=100, seed=2).generate()
        b = BRootWorkload(duration=5.0, mean_rate=100, seed=3).generate()
        assert [r.wire for r in a] != [r.wire for r in b]

    def test_rate_varies_over_time(self):
        trace = BRootWorkload(duration=600.0, mean_rate=200,
                              swing_period=300.0, seed=4).generate()
        from repro.trace import per_second_rates
        rates = [count for _s, count in per_second_rates(trace)]
        assert max(rates) > 1.1 * (sum(rates) / len(rates))


class TestRecursiveWorkload:
    def test_shape(self):
        zones = make_hierarchy_zones(3, 4)
        trace = RecursiveWorkload(duration=120, total_queries=1000,
                                  zones=zones).generate()
        assert len(trace) == 1000
        assert len(trace.clients()) <= 91
        times = [r.timestamp for r in trace]
        assert times == sorted(times)

    def test_names_within_hierarchy(self):
        zones = make_hierarchy_zones(2, 3)
        origins = {z.origin for z in zones}
        trace = RecursiveWorkload(duration=10, total_queries=100,
                                  zones=zones).generate()
        for record in trace:
            qname = record.question()[0]
            assert any(qname.is_subdomain_of(origin) for origin in origins
                       if len(origin) >= 2)


class TestZoneGenerators:
    def test_root_zone_valid(self):
        zone = make_root_zone(25)
        zone.validate()
        assert zone.origin.is_root()

    def test_root_delegations_with_glue(self):
        zone = make_root_zone(10)
        result = zone.lookup(Name.from_text("www.example.com."), RRType.A)
        assert result.kind == AnswerKind.REFERRAL
        assert zone.glue_for(result.rrsets[0])

    def test_hierarchy_zones_consistent(self):
        zones = make_hierarchy_zones(2, 3)
        for zone in zones:
            zone.validate()
        # Every zone must have resolvable nameserver addresses.
        addresses = nameserver_addresses(zones)
        assert all(addresses[z.origin] for z in zones)

    def test_hierarchy_delegations_line_up(self):
        zones = make_hierarchy_zones(2, 2)
        root = zones[0]
        tlds = [z for z in zones if len(z.origin) == 1]
        assert tlds
        for tld in tlds:
            result = root.lookup(tld.origin, RRType.A)
            assert result.kind == AnswerKind.REFERRAL

    def test_scaling_parameters(self):
        zones = make_hierarchy_zones(3, 5)
        slds = [z for z in zones if len(z.origin) == 2]
        assert len(slds) == 15
