"""Tests for the verification harness itself — test the tester.

Three layers: the seeded generators must be pure functions of the
seed, the Oracle library must detect (not just pass) divergence, and
the explorer/fuzz drivers must both exhaust clean models and catch a
deliberately broken one.
"""

import json
import random

import pytest

from repro.dns import Message, WireError
from repro.verify import (ExplorationResult, Explorer, Observation, Oracle,
                          ddmin, diff_observations, explore_admission,
                          explore_tcp, hostile_frames, hostile_wires,
                          run_fuzz, tcp_schedules, valid_message,
                          wire_seed_corpus, zero_msg_id)
from repro.verify.explorer import (ADMISSION_POLICIES, RECOVERY_SCENARIOS,
                                   TCP_SCENARIOS, explore_recovery)
from repro.verify.fuzz import TARGETS, fuzz_target
from repro.verify.generators import fault_plan, frame_seed_corpus


class TestGenerators:
    def test_hostile_wires_pure_function_of_seed(self):
        assert list(hostile_wires(3, 60)) == list(hostile_wires(3, 60))
        assert list(hostile_wires(3, 60)) != list(hostile_wires(4, 60))

    def test_seed_corpus_leads_the_stream(self):
        corpus = wire_seed_corpus()
        stream = list(hostile_wires(0, len(corpus) + 5))
        assert stream[:len(corpus)] == corpus
        assert len(stream) == len(corpus) + 5

    def test_hostile_frames_pure_function_of_seed(self):
        assert list(hostile_frames(9, 40)) == list(hostile_frames(9, 40))
        assert len(frame_seed_corpus()) >= 10

    def test_valid_messages_round_trip(self):
        rng = random.Random(5)
        for _ in range(30):
            message = valid_message(rng)
            Message.from_wire(message.to_wire())

    def test_fault_plans_are_valid(self):
        # FaultSpec validates in its constructor; surviving construction
        # for many seeds is the property.
        for seed in range(50):
            plan = fault_plan(random.Random(seed))
            assert plan.specs

    def test_tcp_schedules_deterministic(self):
        first = [vars(s) | {"plan": None} for s in tcp_schedules(11, 10)]
        second = [vars(s) | {"plan": None} for s in tcp_schedules(11, 10)]
        assert first == second

    def test_checkpoint_deliveries_pure_function_of_seed(self):
        from repro.verify.generators import checkpoint_deliveries
        assert checkpoint_deliveries(5) == checkpoint_deliveries(5)
        assert checkpoint_deliveries(5) != checkpoint_deliveries(6)
        frames, order, total = checkpoint_deliveries(5, workers=3, total=9)
        assert total == 9
        assert {frame["worker"] for frame in frames} <= {0, 1, 2}
        # Every worker ends with exactly one final frame.
        finals = [f for f in frames if f["final"]]
        assert sorted(f["worker"] for f in finals) == [0, 1, 2]
        # The delivery order covers every emitted frame at least once.
        assert set(order) >= set(range(len(frames)))


class TestOracle:
    def observation(self, **kwargs):
        base = dict(wires=(b"\x12\x34abc",), facts={"sent": 3},
                    metrics={"counts": {"q": 1}})
        base.update(kwargs)
        return Observation(**base)

    def test_identical_observations_pass(self):
        oracle = Oracle("t", lambda _w: self.observation(),
                        lambda _w: self.observation())
        report = oracle.check(None)
        assert report.ok and "no divergence" in report.describe()

    def test_wire_divergence_detected(self):
        oracle = Oracle("t", lambda _w: self.observation(),
                        lambda _w: self.observation(wires=(b"\x12\x34abX",)))
        report = oracle.run(None)
        assert [d.field for d in report.divergences] == ["wires[0]"]
        with pytest.raises(AssertionError, match="oracle t"):
            report.raise_if_diverged()

    def test_wire_count_divergence_detected(self):
        oracle = Oracle("t", lambda _w: self.observation(),
                        lambda _w: self.observation(wires=()))
        assert [d.field for d in oracle.run(None).divergences] == \
            ["wires.count"]

    def test_nested_fact_and_metric_divergence(self):
        candidate = self.observation(facts={"sent": 4, "extra": 1},
                                     metrics={"counts": {}})
        report = Oracle("t", lambda _w: self.observation(),
                        lambda _w: candidate).run(None)
        fields = sorted(d.field for d in report.divergences)
        assert fields == ["facts.extra", "facts.sent", "metrics.counts.q"]

    def test_normalize_wire_masks_ids(self):
        oracle = Oracle("t", lambda _w: self.observation(),
                        lambda _w: self.observation(wires=(b"\x99\x99abc",)),
                        normalize_wire=zero_msg_id)
        assert oracle.check(None).ok

    def test_runner_must_return_observation(self):
        oracle = Oracle("t", lambda _w: {"not": "an observation"},
                        lambda _w: self.observation())
        with pytest.raises(TypeError, match="oracle t"):
            oracle.run(None)

    def test_capture_filters_ignored_metrics(self):
        from repro.telemetry import MetricsRegistry
        registry = MetricsRegistry()
        registry.incr("replay.records_sent")
        registry.incr("process.rss_bytes")
        observation = Observation.capture(
            registry=registry, ignore_metrics=("process.",))
        assert "replay.records_sent" in observation.metrics["counts"]
        assert "process.rss_bytes" not in observation.metrics["counts"]

    def test_diff_observations_symmetric_on_missing_keys(self):
        want = Observation(facts={"a": 1})
        got = Observation(facts={"b": 2})
        fields = {d.field: (d.baseline, d.candidate)
                  for d in diff_observations(want, got)}
        assert fields == {"facts.a": (1, "<absent>"),
                          "facts.b": ("<absent>", 2)}


class _CounterModel:
    """Toy model: two increments and a doubling, any order.

    ``inc inc double`` reaches 4; the invariant says <= 3, so the
    explorer must surface exactly the orderings that double last.
    """

    LIMIT = 3

    def __init__(self, limit=LIMIT):
        self.limit = limit
        self.value = 0
        self.applied = []

    def choices(self):
        return [c for c in ("inc-a", "inc-b", "double")
                if c not in self.applied]

    def apply(self, index):
        choice = self.choices()[index]
        self.applied.append(choice)
        self.value = self.value * 2 if choice == "double" else self.value + 1

    def check(self):
        if self.value > self.limit:
            return [("bounded", f"value={self.value}")]
        return []

    def check_terminal(self):
        return []

    def fingerprint(self):
        return (tuple(self.applied), self.value)


class TestExplorer:
    def test_broken_model_is_caught_with_trace(self):
        result = Explorer(_CounterModel).run()
        assert not result.ok and result.exhausted
        assert all(v.invariant == "bounded" for v in result.violations)
        # The only bad ordering ends in the doubling.
        assert all(v.trace == ("inc-a", "inc-b", "double")
                   or v.trace == ("inc-b", "inc-a", "double")
                   for v in result.violations)

    def test_clean_model_exhausts(self):
        result = Explorer(lambda: _CounterModel(limit=10)).run()
        assert result.ok and result.exhausted
        assert result.paths == 6   # 3! orderings, fingerprints all unique

    def test_depth_bound_reports_truncation(self):
        result = Explorer(lambda: _CounterModel(limit=10),
                          max_depth=1).run()
        assert not result.exhausted
        assert "TRUNCATED" in result.summary()

    @pytest.mark.fuzz
    @pytest.mark.parametrize("scenario", TCP_SCENARIOS)
    def test_tcp_scenarios_exhaust_clean(self, scenario):
        result = explore_tcp(scenario)
        assert result.exhausted, result.summary()
        assert result.ok, "\n".join(str(v) for v in result.violations)

    @pytest.mark.fuzz
    @pytest.mark.parametrize("policy", ADMISSION_POLICIES)
    def test_admission_scenarios_exhaust_clean(self, policy):
        result = explore_admission(policy)
        assert result.exhausted, result.summary()
        assert result.ok, "\n".join(str(v) for v in result.violations)

    @pytest.mark.fuzz
    def test_admission_with_rrl_exhausts_clean(self):
        result = explore_admission("drop-oldest", rrl=True)
        assert result.exhausted and result.ok

    @pytest.mark.fuzz
    @pytest.mark.parametrize("scenario", RECOVERY_SCENARIOS)
    def test_recovery_scenarios_exhaust_clean(self, scenario):
        """ISSUE acceptance: worker-crash × frame-reorder (and its dup
        and double-crash variants) exhaust with zero violations."""
        result = explore_recovery(scenario)
        assert result.exhausted, result.summary()
        assert result.ok, "\n".join(str(v) for v in result.violations)


class TestDdmin:
    def test_minimizes_to_the_culprit(self):
        data = bytes(range(200)) + b"\xde\xad" + bytes(range(100))
        minimized = ddmin(data, lambda d: b"\xde\xad" in d)
        assert minimized == b"\xde\xad"

    def test_returns_input_when_not_reducible(self):
        assert ddmin(b"\x01", lambda d: d == b"\x01") == b"\x01"

    def test_respects_probe_budget(self):
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return b"\xff" in candidate

        ddmin(bytes(5000) + b"\xff" + bytes(5000), predicate,
              max_probes=30)
        assert len(calls) <= 31


class TestFuzzDriver:
    @pytest.mark.fuzz
    def test_campaign_deterministic_and_clean(self):
        kwargs = dict(seed=5, targets=["wire-decode", "protocol-frames"],
                      examples=60)
        first, second = run_fuzz(**kwargs), run_fuzz(**kwargs)
        assert not first.crashes
        assert [(t.target, t.examples) for t in first.targets] == \
            [(t.target, t.examples) for t in second.targets]

    def test_crash_is_reported_minimized_and_persisted(self, tmp_path):
        from repro.verify.fuzz import FuzzTarget

        def explode(data: bytes) -> None:
            if b"\xba\xad" in data:
                raise ValueError("boom")

        target = FuzzTarget("toy", lambda seed: iter(
            [b"fine", b"also fine", bytes(40) + b"\xba\xad" + bytes(40)]),
            explode, True, 10)
        report = fuzz_target(target, seed=1, corpus_dir=str(tmp_path))
        assert [c.exception for c in report.crashes] == ["ValueError"]
        crash = report.crashes[0]
        assert crash.data == b"\xba\xad"          # ddmin ran
        assert crash.original_size == 82
        stem = tmp_path / "toy" / crash.digest()
        assert stem.with_suffix(".bin").read_bytes() == b"\xba\xad"
        sidecar = json.loads(stem.with_suffix(".json").read_text())
        assert sidecar["exception"] == "ValueError"

    def test_all_targets_registered(self):
        assert sorted(TARGETS) == ["fault-replay", "protocol-frames",
                                   "recovery-schedule", "tcp-schedule",
                                   "wire-cache", "wire-decode"]
        for target in TARGETS.values():
            assert target.default_examples > 0
