"""Unit tests for the benchmark regression guard (benchmarks/)."""

import importlib.util
import sys
from pathlib import Path

SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
sys.modules["check_regression"] = check_regression
spec.loader.exec_module(check_regression)

compare = check_regression.compare
throughput_keys = check_regression.throughput_keys


def record(**fields):
    base = {"cpu_count": 4, "skip_reason": None}
    base.update(fields)
    return base


class TestThroughputKeys:
    def test_selects_rate_scalars_only(self):
        row = record(fastpath_qps=100.0, aggregate_qps_concurrent=5,
                     baseline_qps_pr5=9843.2, speedup=2.0,
                     cache={"hits": 3}, aggregate_asserted=True)
        assert throughput_keys(row) == ["aggregate_qps_concurrent",
                                        "fastpath_qps"]


class TestCompare:
    def test_within_tolerance_passes(self):
        _lines, failures = compare(
            {"run": record(fastpath_qps=100.0)},
            {"run": record(fastpath_qps=81.0)}, tolerance=0.20)
        assert failures == []

    def test_drop_beyond_tolerance_fails(self):
        _lines, failures = compare(
            {"run": record(fastpath_qps=100.0)},
            {"run": record(fastpath_qps=79.0)}, tolerance=0.20)
        assert len(failures) == 1
        assert "REGRESSED" in failures[0]

    def test_improvement_always_passes(self):
        _lines, failures = compare(
            {"run": record(fastpath_qps=100.0)},
            {"run": record(fastpath_qps=500.0)}, tolerance=0.20)
        assert failures == []

    def test_skip_reason_suppresses_comparison(self):
        reason = "host has 1 cpu(s) < 4"
        lines, failures = compare(
            {"run": record(aggregate_qps_concurrent=60000.0)},
            {"run": record(aggregate_qps_concurrent=100.0,
                           skip_reason=reason)}, tolerance=0.20)
        assert failures == []
        assert any(reason in line for line in lines)

    def test_cpu_count_mismatch_is_incomparable(self):
        lines, failures = compare(
            {"run": record(processes_qps=50000.0, cpu_count=8)},
            {"run": record(processes_qps=100.0, cpu_count=1)},
            tolerance=0.20)
        assert failures == []
        assert any("not comparable" in line for line in lines)

    def test_missing_record_fails(self):
        _lines, failures = compare(
            {"run": record(fastpath_qps=100.0)}, {}, tolerance=0.20)
        assert failures == ["run: record missing from candidate run"]

    def test_dropped_metric_fails(self):
        _lines, failures = compare(
            {"run": record(fastpath_qps=100.0)},
            {"run": record()}, tolerance=0.20)
        assert failures == ["run.fastpath_qps: dropped from candidate"]

    def test_null_metric_treated_as_dropped(self):
        # A self-gated host may record the key with a null value; the
        # guard must not TypeError comparing None against the floor.
        _lines, failures = compare(
            {"run": record(fastpath_qps=100.0)},
            {"run": record(fastpath_qps=None)}, tolerance=0.20)
        assert failures == ["run.fastpath_qps: dropped from candidate"]

    def test_non_dict_records_skipped_not_crashed(self):
        lines, failures = compare(
            {"generated_at": "2026-08-08", "run": record(fastpath_qps=9.0)},
            {"generated_at": "2026-08-09", "run": record(fastpath_qps=9.0)},
            tolerance=0.20)
        assert failures == []
        assert any("not a measurement record" in line for line in lines)

    def test_new_record_is_reported_not_failed(self):
        lines, failures = compare(
            {}, {"fresh": record(fastpath_qps=1.0)}, tolerance=0.20)
        assert failures == []
        assert any("new record" in line for line in lines)


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        candidate = tmp_path / "cand.json"
        baseline.write_text('{"run": {"fastpath_qps": 100.0}}')
        candidate.write_text('{"run": {"fastpath_qps": 95.0}}')
        assert check_regression.main(
            ["--baseline", str(baseline),
             "--candidate", str(candidate)]) == 0
        assert "no regressions" in capsys.readouterr().out

        candidate.write_text('{"run": {"fastpath_qps": 10.0}}')
        assert check_regression.main(
            ["--baseline", str(baseline),
             "--candidate", str(candidate)]) == 1
        assert "REGRESSED" in capsys.readouterr().err

    def test_unreadable_input_is_a_clean_error(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text('{"run": {"fastpath_qps": 100.0}}')
        assert check_regression.main(
            ["--baseline", str(baseline),
             "--candidate", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err

        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert check_regression.main(
            ["--baseline", str(baseline),
             "--candidate", str(broken)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_object_document_is_a_clean_error(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        candidate = tmp_path / "cand.json"
        baseline.write_text('[1, 2]')
        candidate.write_text('{}')
        assert check_regression.main(
            ["--baseline", str(baseline),
             "--candidate", str(candidate)]) == 2
        assert "JSON objects" in capsys.readouterr().err
