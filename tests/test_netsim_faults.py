"""Tests for the fault-injection subsystem (netsim.faults)."""

import pytest

from repro.netsim import (EventLoop, FaultInjector, FaultPlan, FaultSpec,
                          Network, RetryPolicy, TcpOptions, TcpStack)

pytestmark = pytest.mark.faults


def make_net():
    loop = EventLoop()
    network = Network(loop)
    network.add_host("c", "10.77.0.1")
    network.add_host("s", "10.77.0.2")
    network.latency.set_rtt("c", "s", 0.02)
    return loop, network


def udp_flood(loop, network, count=100, interval=0.01, start=0.0):
    """Schedule ``count`` UDP sends c→s; returns the received list."""
    received = []
    network.host("s").bind_udp("10.77.0.2", 99,
                               lambda s, d, a, p: received.append(d))
    sock = network.host("c").bind_udp("10.77.0.1", 0)
    for i in range(count):
        loop.call_at(start + i * interval, sock.sendto,
                     bytes([i % 251]), "10.77.0.2", 99)
    return received


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(udp_timeout=1.0, backoff=2.0, max_timeout=5.0)
        assert policy.timeout_for(0) == 1.0
        assert policy.timeout_for(1) == 2.0
        assert policy.timeout_for(2) == 4.0
        assert policy.timeout_for(3) == 5.0   # capped
        assert policy.timeout_for(10) == 5.0


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor", 0.0, 1.0)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec("loss", 0.0, 1.0, rate=1.5)

    def test_crash_needs_host(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", 0.0, 1.0)

    def test_delay_needs_extra_delay(self):
        with pytest.raises(ValueError):
            FaultSpec("delay", 0.0, 1.0)

    def test_round_trip_serialization(self):
        plan = (FaultPlan()
                .loss_burst(1.0, 2.0, 0.5, src="c", dst="s")
                .server_outage(3.0, 1.0, host="s"))
        rebuilt = FaultPlan.from_dicts(plan.to_dicts())
        assert len(rebuilt) == 2
        assert rebuilt.specs == plan.specs


class TestLossBurst:
    def test_drops_only_inside_window(self):
        loop, network = make_net()
        plan = FaultPlan().loss_burst(start=0.2, duration=0.3, rate=1.0)
        injector = FaultInjector(network, plan)
        received = udp_flood(loop, network, count=100, interval=0.01)
        loop.run()
        # Sends in [0.2, 0.5) all die; the rest arrive.
        assert injector.dropped_by_loss == 30
        assert len(received) == 70
        assert injector.faults_activated == 1
        assert injector.faults_cleared == 1

    def test_partial_rate_deterministic_by_seed(self):
        counts = []
        for _ in range(2):
            loop, network = make_net()
            plan = FaultPlan().loss_burst(0.0, 10.0, rate=0.5)
            FaultInjector(network, plan, seed=5)
            received = udp_flood(loop, network, count=200)
            loop.run()
            counts.append(len(received))
        assert counts[0] == counts[1]
        assert 50 < counts[0] < 150

    def test_scoped_to_pair(self):
        loop, network = make_net()
        network.add_host("other", "10.77.0.3")
        plan = FaultPlan().loss_burst(0.0, 10.0, 1.0, src="c", dst="s")
        FaultInjector(network, plan)
        received = udp_flood(loop, network, count=10)
        # Same client, different destination: unaffected.
        other_got = []
        network.host("other").bind_udp("10.77.0.3", 99,
                                       lambda s, d, a, p:
                                       other_got.append(d))
        sock = network.host("c").bind_udp("10.77.0.1", 0)
        for i in range(10):
            loop.call_at(i * 0.01, sock.sendto, b"y", "10.77.0.3", 99)
        loop.run()
        assert received == []
        assert len(other_got) == 10


class TestPartition:
    def test_severs_both_directions(self):
        loop, network = make_net()
        plan = FaultPlan().partition(0.0, 10.0, src="s", dst="c")
        injector = FaultInjector(network, plan)
        received = udp_flood(loop, network, count=5)  # c→s direction
        loop.run()
        assert received == []
        assert injector.dropped_by_partition == 5


class TestDuplication:
    def test_both_copies_arrive(self):
        loop, network = make_net()
        plan = FaultPlan().duplication(0.0, 10.0, rate=1.0)
        injector = FaultInjector(network, plan)
        received = udp_flood(loop, network, count=20)
        loop.run()
        assert len(received) == 40
        assert injector.packets_duplicated == 20


class TestCorruption:
    def test_corrupted_packets_fail_checksum(self):
        loop, network = make_net()
        plan = FaultPlan().corruption(0.0, 10.0, rate=1.0)
        injector = FaultInjector(network, plan)
        received = udp_flood(loop, network, count=15)
        loop.run()
        # Damaged payloads are dropped by the receiver's checksum path.
        assert received == []
        assert injector.packets_corrupted == 15
        assert network.host("s").counters.checksum_drops == 15


class TestDelaySpike:
    def test_adds_latency_inside_window(self):
        loop, network = make_net()
        plan = FaultPlan().delay_spike(0.0, 10.0, extra_delay=0.5)
        FaultInjector(network, plan)
        arrivals = []
        network.host("s").bind_udp("10.77.0.2", 99,
                                   lambda s, d, a, p:
                                   arrivals.append(loop.now))
        sock = network.host("c").bind_udp("10.77.0.1", 0)
        loop.call_at(0.01, sock.sendto, b"z", "10.77.0.2", 99)
        loop.run()
        assert len(arrivals) == 1
        assert arrivals[0] >= 0.51   # spike dominates the 10 ms link


class TestCrashRestart:
    def test_host_down_drops_both_directions(self):
        loop, network = make_net()
        plan = FaultPlan().server_outage(0.1, 0.3, host="s")
        injector = FaultInjector(network, plan)
        received = udp_flood(loop, network, count=50, interval=0.01)
        loop.run()
        assert injector.crashes == 1
        assert injector.restarts == 1
        assert not network.host("s").down
        # Sends in [0.1, 0.4) die; 0.0-0.09 and 0.4-0.49 arrive.
        assert injector.dropped_host_down == 30
        assert len(received) == 20

    def test_crash_kills_tcp_connections_silently(self):
        loop, network = make_net()
        server_stack = TcpStack(network.host("s"))
        client_stack = TcpStack(network.host("c"))
        server_stack.listen("10.77.0.2", 53, lambda conn: None,
                            TcpOptions(nagle=False))
        conn = client_stack.connect("10.77.0.1", "10.77.0.2", 53,
                                    TcpOptions(nagle=False))
        resets = []
        conn.on_reset = lambda cn: resets.append(cn)
        loop.run_until(1.0)
        assert conn.state.name == "ESTABLISHED"

        plan = FaultPlan().server_outage(1.5, 1.0, host="s")
        FaultInjector(network, plan)
        loop.run_until(3.0)
        # The server side died with no FIN/RST emitted...
        assert not server_stack.connections()
        # ...and the client only finds out when it next sends: its
        # segment hits the restarted server's fresh stack → RST.
        conn.send(b"\x00\x01x")
        loop.run_until(6.0)
        assert resets

    def test_empty_plan_changes_nothing(self):
        loop, network = make_net()
        injector = FaultInjector(network, FaultPlan())
        received = udp_flood(loop, network, count=25)
        loop.run()
        assert len(received) == 25
        assert all(value == 0 for value in injector.counters().values())


class TestBatchPathDifferential:
    """``send_packet_batch`` honors the FaultPlan per packet.

    Same seed, same packets, same simulated send times: the batched
    datagram path must produce byte- and time-identical deliveries,
    identical injector verdicts, and identical host counters to the
    one-by-one path — for every fault kind that can touch a packet in
    flight.
    """

    GROUPS = 6
    GROUP_SIZE = 20

    @staticmethod
    def _plans():
        return {
            "loss": lambda: FaultPlan().loss_burst(0.05, 0.2, 0.5),
            "corrupt": lambda: FaultPlan().corruption(0.05, 0.2, 0.5),
            "duplicate": lambda: FaultPlan().duplication(0.05, 0.2, 0.5),
            "delay": lambda: FaultPlan().delay_spike(0.05, 0.2, 0.05,
                                                     rate=0.5),
            "reorder": lambda: FaultPlan().reordering(0.05, 0.2, 0.03,
                                                      rate=0.5),
            "mixed": lambda: (FaultPlan()
                              .loss_burst(0.05, 0.1, 0.3)
                              .duplication(0.12, 0.1, 0.4)
                              .delay_spike(0.2, 0.1, 0.02, rate=0.5)),
        }

    def _run(self, plan, batched, seed=5):
        from repro.netsim.packet import (IpPacket, UdpSegment,
                                         packet_checksum)
        loop, network = make_net()
        injector = FaultInjector(network, plan, seed=seed)
        received = []
        network.host("s").bind_udp(
            "10.77.0.2", 99,
            lambda s, d, a, p: received.append((bytes(d), loop.now)))
        client = network.host("c")
        sock = client.bind_udp("10.77.0.1", 0)

        def send(group):
            packets = []
            for item in range(self.GROUP_SIZE):
                payload = bytes([group, item]) * 8
                segment = UdpSegment(sock.port, 99, payload)
                packets.append(IpPacket(
                    "10.77.0.1", "10.77.0.2", segment,
                    packet_checksum("10.77.0.1", "10.77.0.2", segment)))
            if batched:
                client.send_packet_batch(packets)
            else:
                for packet in packets:
                    client.send_packet(packet)

        for group in range(self.GROUPS):
            loop.call_at(0.02 + group * 0.05, send, group)
        loop.run()
        server = network.host("s")
        return {
            "received": received,
            "injector": injector.counters(),
            "server_in": (server.counters.packets_in,
                          server.counters.bytes_in),
            "client_out": (client.counters.packets_out,
                           client.counters.bytes_out),
        }

    @pytest.mark.parametrize("kind", sorted(_plans.__func__()))
    def test_batch_verdicts_match_sequential(self, kind):
        builder = self._plans()[kind]
        batched = self._run(builder(), batched=True)
        sequential = self._run(builder(), batched=False)
        assert batched == sequential
        # The plan actually fired — a vacuous pass would prove nothing.
        touched = sum(value for key, value in batched["injector"].items()
                      if key.startswith(("dropped", "packets_")))
        assert touched > 0, batched["injector"]
