"""Tests for the simulated TCP state machine."""

import pytest

from repro.netsim import (EventLoop, Network, NetworkError, TcpOptions,
                          TcpStack, TcpState)

RTT = 0.100


@pytest.fixture
def pair():
    loop = EventLoop()
    network = Network(loop)
    client_host = network.add_host("client", "10.1.0.1")
    server_host = network.add_host("server", "10.1.0.2")
    network.latency.set_rtt("client", "server", RTT)
    return loop, TcpStack(client_host), TcpStack(server_host)


def echo_listener(server, port=53, raw=False, **options):
    def on_accept(conn):
        if raw:
            conn.on_data = lambda cn, data: cn.send(data)
        else:
            conn.on_data = lambda cn, data: cn.send(b"echo:" + data)
        conn.on_close = lambda cn: cn.close()  # close when peer closes
    return server.listen("10.1.0.2", port, on_accept,
                         TcpOptions(**options))


class TestHandshake:
    def test_connect_takes_one_rtt(self, pair):
        loop, client, server = pair
        echo_listener(server)
        connected = []
        conn = client.connect("10.1.0.1", "10.1.0.2", 53)
        conn.on_connected = lambda cn: connected.append(loop.now)
        loop.run(max_time=5)
        assert connected and abs(connected[0] - RTT) < 1e-9

    def test_fresh_query_takes_two_rtt(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False)
        events = []
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False))
        conn.on_connected = lambda cn: cn.send(b"q")
        conn.on_data = lambda cn, d: events.append(loop.now)
        loop.run(max_time=5)
        assert events and abs(events[0] - 2 * RTT) < 2e-3

    def test_data_queued_before_connect_flushes(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False)
        got = []
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False))
        conn.send(b"early")  # before ESTABLISHED
        conn.on_data = lambda cn, d: got.append(d)
        loop.run(max_time=5)
        assert got == [b"echo:early"]

    def test_connect_to_closed_port_resets(self, pair):
        loop, client, server = pair
        reset = []
        conn = client.connect("10.1.0.1", "10.1.0.2", 53)
        conn.on_reset = lambda cn: reset.append(loop.now)
        loop.run(max_time=5)
        assert reset
        assert conn.state == TcpState.CLOSED
        assert server.resets_sent == 1

    def test_accept_callback_runs(self, pair):
        loop, client, server = pair
        accepted = []
        server.listen("10.1.0.2", 53, accepted.append)
        client.connect("10.1.0.1", "10.1.0.2", 53).send(b"x")
        loop.run(max_time=5)
        assert len(accepted) == 1
        assert accepted[0].remote_addr == "10.1.0.1"
        assert server.total_accepted == 1


class TestDataTransfer:
    def test_large_message_segmented_and_reassembled(self, pair):
        loop, client, server = pair
        echo_listener(server, raw=True, nagle=False)
        payload = bytes(range(256)) * 20  # 5120 bytes > 3 MSS
        received = bytearray()
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False))
        conn.on_connected = lambda cn: cn.send(payload)
        conn.on_data = lambda cn, d: received.extend(d)
        loop.run(max_time=10)
        assert bytes(received) == payload
        assert conn.segments_sent > 3

    def test_sequencing_multiple_sends(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False)
        received = bytearray()
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False))

        def go(cn):
            cn.send(b"111")
            cn.send(b"222")
            cn.send(b"333")

        conn.on_connected = go
        conn.on_data = lambda cn, d: received.extend(d)
        loop.run(max_time=10)
        assert b"111" in received and b"333" in received
        assert received.index(b"111") < received.index(b"222")

    def test_send_on_closed_raises(self, pair):
        loop, client, server = pair
        conn = client.connect("10.1.0.1", "10.1.0.2", 53)
        conn.abort()
        with pytest.raises(NetworkError):
            conn.send(b"late")


class TestNagle:
    def test_nagle_delays_second_small_write(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False)
        arrivals = []
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=True))

        def go(cn):
            cn.send(b"first")   # flies immediately
            cn.send(b"second")  # held: small and unacked data in flight

        conn.on_connected = go
        conn.on_data = lambda cn, d: arrivals.append((loop.now, bytes(d)))
        loop.run(max_time=10)
        combined = b"".join(d for _t, d in arrivals)
        assert b"first" in combined and b"second" in combined
        # The second write needed the first's ACK: > 2.5 RTT total.
        assert arrivals[-1][0] > 2.5 * RTT

    def test_nodelay_sends_back_to_back(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False)
        arrivals = []
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False))

        def go(cn):
            cn.send(b"first")
            cn.send(b"second")

        conn.on_connected = go
        conn.on_data = lambda cn, d: arrivals.append(loop.now)
        loop.run(max_time=10)
        assert arrivals and arrivals[-1] < 2.3 * RTT


class TestTimeoutsAndClose:
    def test_idle_timeout_closes(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False, idle_timeout=1.0)
        closed = []
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False))
        conn.on_connected = lambda cn: cn.send(b"q")
        conn.on_close = lambda cn: (closed.append(loop.now), cn.close())
        loop.run(max_time=30)
        assert closed and 1.0 <= closed[0] <= 2.0
        assert server.idle_closes == 1

    def test_activity_defers_idle_timeout(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False, idle_timeout=1.0)
        closed = []
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False))
        conn.on_close = lambda cn: (closed.append(loop.now), cn.close())
        for i in range(5):
            loop.call_at(0.2 + 0.8 * i, conn.send, b"keepalive")
        loop.run(max_time=30)
        # Last activity ~3.4s; close fires >= 4.4s.
        assert closed and closed[0] >= 4.3

    def test_server_holds_time_wait_then_expires(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False, idle_timeout=1.0)
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False))
        conn.on_connected = lambda cn: cn.send(b"q")
        conn.on_close = lambda cn: cn.close()
        loop.run(max_time=10)
        assert server.time_wait_count() == 1
        assert client.count_by_state() == {}
        loop.run(max_time=100)  # TIME_WAIT (60 s) expires
        assert server.time_wait_count() == 0
        assert server.count_by_state() == {}

    def test_client_active_close(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False)
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False, time_wait_duration=5.0))
        conn.on_connected = lambda cn: cn.send(b"q")
        conn.on_data = lambda cn, d: cn.close()
        loop.run(max_time=4)
        # Client closed actively: client in TIME_WAIT, not the server.
        assert client.time_wait_count() == 1
        assert server.time_wait_count() == 0
        loop.run(max_time=60)
        assert client.count_by_state() == {}

    def test_simultaneous_close_both_sides_time_wait(self, pair):
        # Both ends close while the peer's FIN is still in flight: each
        # goes FIN_WAIT_1 -> TIME_WAIT (the stack's shortcut for the
        # CLOSING leg) and both tables must eventually empty.
        loop, client, server = pair
        accepted = []

        def on_accept(conn):
            accepted.append(conn)
        server.listen("10.1.0.2", 53, on_accept,
                      TcpOptions(nagle=False, time_wait_duration=5.0))
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False,
                                         time_wait_duration=5.0))
        loop.call_at(1.0, conn.close)
        loop.call_at(1.0, lambda: accepted[0].close())
        loop.run(max_time=4)
        assert conn.state == TcpState.TIME_WAIT
        assert accepted[0].state == TcpState.TIME_WAIT
        assert client.time_wait_count() == server.time_wait_count() == 1
        loop.run(max_time=20)   # both TIME_WAIT timers expire
        assert client.count_by_state() == {}
        assert server.count_by_state() == {}
        assert conn.state == TcpState.CLOSED
        assert accepted[0].state == TcpState.CLOSED

    def test_send_after_close_raises_cleanly(self, pair):
        # The API contract the fuzz harness leans on: writing to a
        # connection the application already closed is a NetworkError
        # naming the state, never silent loss or corruption.
        loop, client, server = pair
        echo_listener(server, nagle=False)
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=False,
                                         time_wait_duration=5.0))
        conn.on_connected = lambda cn: cn.send(b"q")
        conn.on_data = lambda cn, d: cn.close()
        loop.run(max_time=4)
        assert conn.state == TcpState.TIME_WAIT
        with pytest.raises(NetworkError, match="TIME_WAIT"):
            conn.send(b"late")
        loop.run(max_time=60)
        assert conn.state == TcpState.CLOSED
        with pytest.raises(NetworkError, match="CLOSED"):
            conn.send(b"later")

    def test_close_flushes_pending_data_first(self, pair):
        loop, client, server = pair
        got = []

        def on_accept(conn):
            conn.on_data = lambda cn, d: got.append(bytes(d))
        server.listen("10.1.0.2", 53, on_accept, TcpOptions(nagle=False))
        conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                              TcpOptions(nagle=True))
        conn.on_connected = lambda cn: (cn.send(b"a"), cn.send(b"b"),
                                        cn.close())
        loop.run(max_time=10)
        assert b"".join(got) == b"ab"


class TestAccounting:
    def test_buffer_memory_scales_with_connections(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False)
        for i in range(5):
            conn = client.connect("10.1.0.1", "10.1.0.2", 53,
                                  TcpOptions(nagle=False))
            conn.on_connected = lambda cn: cn.send(b"q")
        loop.run(max_time=3)
        assert server.established_count() == 5
        per_conn = server.buffer_memory_bytes() / 5
        assert per_conn > 100_000  # ~216 KB calibration

    def test_history_counter(self, pair):
        loop, client, server = pair
        echo_listener(server, nagle=False)
        for _ in range(3):
            client.connect("10.1.0.1", "10.1.0.2", 53).send(b"x")
        loop.run(max_time=3)
        assert server.history_established == 3
