"""Tests for TCP transport backpressure (accept backlog, watermarks)."""

import pytest

from repro.dns import DNS_PORT, Message, Name, RRType, read_zone
from repro.netsim import (EventLoop, Network, TcpFlags, TcpOptions,
                          TcpStack, make_tcp_packet)
from repro.perf import PerfCounters
from repro.server import (AuthoritativeServer, HostedDnsServer,
                          StreamFramer, TransportConfig, frame_message)

ZONE = """
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 10.5.0.2
www 300 IN A 192.0.2.80
"""


def make_pair():
    loop = EventLoop()
    network = Network(loop)
    server_host = network.add_host("server", "10.5.0.2")
    client_host = network.add_host("client", "10.5.0.1")
    return loop, network, server_host, client_host


def spoofed_syn(attacker, server="10.5.0.2", sport=5000, seq=1):
    return make_tcp_packet(attacker, sport, server, DNS_PORT,
                           seq=seq, ack=0, flags=TcpFlags.SYN)


class TestAcceptBacklog:
    def flood_syns(self, backlog, count=5):
        loop, network, server_host, client_host = make_pair()
        stack = TcpStack(server_host)
        stack.perf = PerfCounters()
        listener = stack.listen("10.5.0.2", DNS_PORT, lambda conn: None,
                                TcpOptions(accept_backlog=backlog))
        # Spoofed SYNs that never complete the handshake: each parks a
        # half-open connection until the backlog refuses the rest.
        for i in range(count):
            loop.call_at(0.001 * i, client_host.send_packet,
                         spoofed_syn(f"203.0.113.{i + 1}", sport=6000 + i))
        loop.run(max_time=1.0)
        return loop, stack, listener

    def test_overflow_refused_with_rst(self):
        _loop, stack, listener = self.flood_syns(backlog=2, count=5)
        assert listener.half_open == 2
        assert listener.backlog_refusals == 3
        assert stack.backlog_refusals == 3
        assert stack.perf.snapshot()["tcp.backlog_refusals"] == 3
        # The refusals were loud: one RST per refused SYN.
        assert stack.resets_sent >= 3

    def test_no_backlog_accepts_everything(self):
        _loop, stack, listener = self.flood_syns(backlog=None, count=5)
        assert listener.half_open == 5
        assert listener.backlog_refusals == 0

    def test_established_frees_backlog_slot(self):
        loop, network, server_host, client_host = make_pair()
        server_stack = TcpStack(server_host)
        listener = server_stack.listen("10.5.0.2", DNS_PORT,
                                       lambda conn: None,
                                       TcpOptions(accept_backlog=1))
        client_stack = TcpStack(client_host)
        client_stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        loop.run(max_time=1.0)
        # The handshake completed, so the slot is free again.
        assert listener.half_open == 0
        assert server_stack.established_count() == 1
        client_host.send_packet(spoofed_syn("203.0.113.9"))
        loop.run(max_time=1.0)
        assert listener.backlog_refusals == 0


class TestConnectionTableRefusal:
    def fill_table(self, refuse_when_full):
        loop, network, server_host, client_host = make_pair()
        stack = TcpStack(server_host, max_connections=0,
                         refuse_when_full=refuse_when_full)
        stack.perf = PerfCounters()
        stack.listen("10.5.0.2", DNS_PORT, lambda conn: None,
                     TcpOptions())
        client_host.send_packet(spoofed_syn("203.0.113.1"))
        loop.run(max_time=1.0)
        return stack

    def test_silent_drop_by_default(self):
        stack = self.fill_table(refuse_when_full=False)
        assert stack.syn_drops == 1
        assert stack.syn_refused == 0
        assert stack.resets_sent == 0
        # Satellite fix: the silent drop is no longer invisible.
        assert stack.perf.snapshot()["tcp.syn_drops"] == 1

    def test_rst_refusal_when_configured(self):
        stack = self.fill_table(refuse_when_full=True)
        assert stack.syn_refused == 1
        assert stack.syn_drops == 0
        assert stack.resets_sent == 1
        assert stack.perf.snapshot()["tcp.syn_refused"] == 1


class TestSendHighwater:
    def test_watermark_pauses_then_resumes(self):
        loop, network, server_host, client_host = make_pair()
        server_stack = TcpStack(server_host)
        server_stack.listen("10.5.0.2", DNS_PORT, lambda conn: None,
                            TcpOptions())
        client_stack = TcpStack(client_host)
        conn = client_stack.connect(
            "10.5.0.1", "10.5.0.2", DNS_PORT,
            TcpOptions(nagle=False, send_highwater=2048))
        resumed = []
        conn.on_writable = lambda cn: resumed.append(loop.now)
        # Writes during the handshake queue in the send buffer (nothing
        # can flush in SYN_SENT): far above the watermark.
        conn.send(b"x" * 65536)
        assert not conn.writable
        # Establishment flushes the buffer and signals writable.
        loop.run(max_time=5.0)
        assert conn.writable
        assert len(resumed) == 1

    def test_no_watermark_always_writable(self):
        loop, network, server_host, client_host = make_pair()
        server_stack = TcpStack(server_host)
        server_stack.listen("10.5.0.2", DNS_PORT, lambda conn: None,
                            TcpOptions())
        client_stack = TcpStack(client_host)
        conn = client_stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                                    TcpOptions(nagle=False))
        conn.send(b"x" * 65536)   # still SYN_SENT: all of it buffered
        assert conn.writable


class SlowEngine:
    """Answers queries only after a long delay (pipelining builds up)."""

    def __init__(self, loop, delay=5.0):
        self.loop = loop
        self.delay = delay
        self.perf = None

    def handle_query_async(self, query, source, transport, respond):
        response = Message.make_response(query)
        self.loop.call_later(self.delay, respond, response)


class TestHostedStreamLimits:
    def deploy(self, engine=None, **config_kwargs):
        loop, network, server_host, client_host = make_pair()
        if engine is None:
            zone = read_zone(ZONE, origin=Name.from_text("example.com."))
            engine = AuthoritativeServer.single_view([zone])
        server = HostedDnsServer(
            server_host, engine,
            config=TransportConfig(udp=False, tcp=True, **config_kwargs))
        return loop, server, client_host

    def query_wire(self, msg_id=1):
        return Message.make_query(Name.from_text("www.example.com."),
                                  RRType.A, msg_id=msg_id).to_wire()

    def test_pipelining_cap_aborts_abusers(self):
        loop, server, client = self.deploy(engine=SlowEngine(None),
                                           max_pipelined=2)
        server.engine.loop = loop
        resets = []
        stack = TcpStack(client)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_reset = lambda cn: resets.append(1)
        # Three queries pipelined while the engine is still busy with
        # the first two: the third breaches the cap.
        for msg_id in (1, 2, 3):
            conn.send(frame_message(self.query_wire(msg_id)))
        loop.run(max_time=2.0)
        assert server.pipelining_aborts == 1
        assert server.perf.snapshot()["hosting.pipeline_aborts"] == 1
        assert resets

    def test_pipelining_within_cap_served(self):
        loop, server, client = self.deploy(max_pipelined=2)
        stack = TcpStack(client)
        framer = StreamFramer()
        answers = []
        framer.on_message = lambda w: answers.append(w)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_data = lambda cn, d: framer.feed(d)
        # The fast engine answers inline, so outstanding never exceeds
        # one even with many queries on the wire.
        for msg_id in range(1, 6):
            conn.send(frame_message(self.query_wire(msg_id)))
        loop.run(max_time=2.0)
        assert len(answers) == 5
        assert server.pipelining_aborts == 0

    def test_stream_buffer_overflow_aborts(self):
        loop, server, client = self.deploy(max_stream_buffer=64)
        resets = []
        stack = TcpStack(client)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_reset = lambda cn: resets.append(1)
        # A length prefix promising a 60000-byte frame, then a partial
        # body: the reassembly buffer exceeds its 64-byte bound.
        conn.send((60000).to_bytes(2, "big") + b"z" * 500)
        loop.run(max_time=2.0)
        assert server.stream_overflows == 1
        assert server.perf.snapshot()["hosting.stream_overflows"] == 1
        assert resets
