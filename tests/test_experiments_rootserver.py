"""Tests for the shared root-server harness and its workload builder."""

import pytest

from repro.dns import Name, RRType
from repro.experiments import Scale
from repro.experiments.rootserver import (SERVER_CORES, RootRunConfig,
                                          build_workload, make_signed_root,
                                          run_root_replay)
from repro.experiments.topology import build_evaluation_topology
from repro.netsim import ResourceMonitor, ServerResourceModel
from repro.replay import (QuerierConfig, ReplayConfig, SimReplayEngine,
                          TimerJitterModel)
from repro.server import (AuthoritativeServer, HostedDnsServer,
                          TransportConfig)

TINY = Scale("hrn", rate=30.0, duration=10.0, monitor_period=5.0)


class TestSignedRoot:
    def test_unsigned(self):
        zone = make_signed_root(RootRunConfig(signed=False))
        assert zone.get(zone.origin, RRType.DNSKEY) is None

    def test_signed_has_keys_and_nsec(self):
        zone = make_signed_root(RootRunConfig(zsk_bits=1024))
        dnskeys = zone.get(zone.origin, RRType.DNSKEY)
        assert dnskeys is not None and len(dnskeys) == 2
        assert zone.get(zone.origin, RRType.NSEC) is not None

    def test_rollover_adds_incoming_key(self):
        normal = make_signed_root(RootRunConfig(zsk_bits=2048))
        rolling = make_signed_root(RootRunConfig(zsk_bits=2048,
                                                 rollover=True))
        assert len(rolling.get(rolling.origin, RRType.DNSKEY)) == \
            len(normal.get(normal.origin, RRType.DNSKEY)) + 1

    def test_tld_count_respected(self):
        zone = make_signed_root(RootRunConfig(tld_count=12, signed=False))
        tlds = [name for name in zone.names()
                if len(name) == 1 and zone.get(name, RRType.NS)]
        assert len(tlds) == 12


class TestWorkloadBuilder:
    def test_retargeted_to_server(self):
        trace = build_workload(RootRunConfig(scale=TINY))
        assert all(record.dst == "10.0.0.2" for record in trace)

    def test_protocol_mutation(self):
        trace = build_workload(RootRunConfig(scale=TINY, protocol="tls"))
        assert all(record.protocol == "tls" for record in trace)

    def test_original_keeps_mixed_protocols(self):
        trace = build_workload(RootRunConfig(scale=TINY,
                                             protocol="original"))
        protocols = {record.protocol for record in trace}
        assert "udp" in protocols

    def test_do_fraction_override(self):
        trace = build_workload(RootRunConfig(scale=TINY, do_fraction=0.0))
        assert not any(record.message().dnssec_ok for record in trace)

    def test_seed_controls_workload(self):
        a = build_workload(RootRunConfig(scale=TINY, seed=1))
        b = build_workload(RootRunConfig(scale=TINY, seed=1))
        c = build_workload(RootRunConfig(scale=TINY, seed=2))
        assert [r.wire for r in a] == [r.wire for r in b]
        assert [r.wire for r in a] != [r.wire for r in c]


class TestRunOutput:
    @pytest.fixture(scope="class")
    def output(self):
        return run_root_replay(RootRunConfig(scale=TINY, protocol="tcp",
                                             tcp_timeout=5.0))

    def test_samples_cover_run(self, output):
        times = [sample.time for sample in output.monitor.samples]
        assert times == sorted(times)
        assert times[-1] >= TINY.duration - TINY.monitor_period

    def test_scale_factor_attached(self, output):
        assert output.scale_factor == pytest.approx(TINY.report_factor)
        assert output.resources.scale_factor == output.scale_factor

    def test_bandwidth_series_scaled(self, output):
        series = output.response_mbps_series()
        assert series
        # Scaled bandwidth should be in a plausible root-server range
        # (tens to hundreds of Mb/s), not the raw sampled kb/s.
        assert 1.0 < max(series) < 2000.0

    def test_cpu_utilization_positive(self, output):
        assert 0.0 < output.cpu_utilization_scaled() < 1.0

    def test_steady_samples_subset(self, output):
        steady = output.steady_samples()
        assert len(steady) <= len(output.monitor.samples)

    def test_telemetry_attached_to_output(self, output):
        assert output.telemetry is not None
        assert output.telemetry.sampler is output.monitor.sampler
        assert output.telemetry.sampler.period == TINY.monitor_period
        # Hosting-layer probes landed on the sampler.
        assert "server.queue_depth" in output.telemetry.sampler.columns()


def run_with_resource_monitor(config):
    """The pre-telemetry harness: same workload, polled by the old
    :class:`ResourceMonitor` instead of the telemetry sampler."""
    testbed = build_evaluation_topology(client_rtt=config.client_rtt)
    zone = make_signed_root(config)
    trace = build_workload(config)

    resources = ServerResourceModel(testbed.loop, cores=SERVER_CORES)
    resources.scale_factor = config.scale.report_factor
    HostedDnsServer(
        testbed.server_host,
        AuthoritativeServer.single_view([zone]),
        config=TransportConfig(udp=True, tcp=True, tls=True,
                               tcp_idle_timeout=config.tcp_timeout,
                               nagle=config.server_nagle),
        resources=resources)
    monitor = ResourceMonitor(testbed.loop, resources,
                              period=config.scale.monitor_period)
    monitor.start()

    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(client_instances=4, queriers_per_instance=6,
                     track_timing=config.track_timing,
                     jitter=TimerJitterModel(None, seed=config.seed)
                     if config.jitter else None,
                     querier=QuerierConfig(nagle=False)))
    start_time = testbed.loop.now
    engine.schedule_trace(trace)
    testbed.loop.run_until(start_time + config.scale.duration + 5.0)
    monitor.stop()
    return monitor


class TestSamplerAgreesWithResourceMonitor:
    """Fig 11/13/14 now read the telemetry sampler; the series must be
    the ones the old bespoke ResourceMonitor polling produced."""

    @pytest.fixture(scope="class", params=["original", "tcp"])
    def pair(self, request):
        config = RootRunConfig(scale=TINY, protocol=request.param,
                               tcp_timeout=5.0)
        return (run_with_resource_monitor(config),
                run_root_replay(config).monitor)

    def test_sample_times_identical(self, pair):
        old, new = pair
        assert [s.time for s in old.samples] == \
            [s.time for s in new.samples]

    def test_cpu_series_identical(self, pair):
        old, new = pair
        assert [s.cpu_utilization for s in old.samples] == \
            [s.cpu_utilization for s in new.samples]

    def test_memory_and_connection_series_identical(self, pair):
        old, new = pair
        for field in ("memory_total", "memory_process", "established",
                      "time_wait"):
            assert [getattr(s, field) for s in old.samples] == \
                [getattr(s, field) for s in new.samples], field

    def test_steady_state_identical(self, pair):
        old, new = pair
        assert [s.time for s in old.steady_state(skip=5.0)] == \
            [s.time for s in new.steady_state(skip=5.0)]
