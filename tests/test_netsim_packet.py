"""Tests for the packet model: checksums, rewriting, sizes."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim import (IpPacket, TcpFlags, TcpSegment, UdpSegment,
                          make_tcp_packet, make_udp_packet)
from repro.netsim.packet import IP_HEADER_SIZE, validate_address


class TestSegments:
    def test_udp_sizes(self):
        segment = UdpSegment(1000, 53, b"x" * 40)
        assert segment.header_size() == 8
        assert segment.wire_size() == 48

    def test_tcp_sizes(self):
        segment = TcpSegment(1000, 53, 1, 0, TcpFlags.SYN, b"y" * 10)
        assert segment.header_size() == 20
        assert segment.wire_size() == 30

    def test_tcp_describe(self):
        segment = TcpSegment(1, 2, 100, 50, TcpFlags.SYN | TcpFlags.ACK,
                             b"abc")
        text = segment.describe()
        assert "SYN" in text and "ACK" in text and "len=3" in text


class TestChecksum:
    def test_checksum_valid_after_construction(self):
        packet = make_udp_packet("10.0.0.1", 1000, "10.0.0.2", 53, b"hi")
        assert packet.checksum_ok()

    def test_checksum_covers_addresses(self):
        packet = make_udp_packet("10.0.0.1", 1000, "10.0.0.2", 53, b"hi")
        moved = packet.rewritten(src="10.0.0.9", recompute_checksum=False)
        assert not moved.checksum_ok()

    def test_checksum_covers_payload(self):
        a = make_udp_packet("10.0.0.1", 1, "10.0.0.2", 53, b"aaaa")
        b = make_udp_packet("10.0.0.1", 1, "10.0.0.2", 53, b"aaab")
        assert a.checksum != b.checksum

    def test_rewrite_recomputes_by_default(self):
        packet = make_udp_packet("10.0.0.1", 1000, "10.0.0.2", 53, b"hi")
        moved = packet.rewritten(src="192.0.2.7", dst="192.0.2.8")
        assert moved.checksum_ok()
        assert moved.src == "192.0.2.7" and moved.dst == "192.0.2.8"

    def test_rewrite_preserves_payload(self):
        packet = make_tcp_packet("10.0.0.1", 1, "10.0.0.2", 53, 5, 6,
                                 TcpFlags.ACK, b"data")
        moved = packet.rewritten(dst="203.0.113.1")
        assert moved.segment == packet.segment


class TestPacket:
    def test_protocol_property(self):
        udp = make_udp_packet("10.0.0.1", 1, "10.0.0.2", 53, b"")
        tcp = make_tcp_packet("10.0.0.1", 1, "10.0.0.2", 53, 0, 0,
                              TcpFlags.SYN)
        assert udp.protocol == "udp"
        assert tcp.protocol == "tcp"

    def test_wire_size(self):
        packet = make_udp_packet("10.0.0.1", 1, "10.0.0.2", 53, b"12345")
        assert packet.wire_size() == IP_HEADER_SIZE + 8 + 5

    def test_flow_tuple(self):
        packet = make_udp_packet("10.0.0.1", 1234, "10.0.0.2", 53, b"")
        assert packet.flow() == ("10.0.0.1", 1234, "10.0.0.2", 53, "udp")

    def test_validate_address(self):
        assert validate_address("192.0.2.1") == "192.0.2.1"
        with pytest.raises(ValueError):
            validate_address("not-an-ip")


@given(st.binary(max_size=100), st.integers(1, 65535),
       st.integers(1, 65535))
def test_property_checksum_deterministic(payload, sport, dport):
    a = make_udp_packet("10.0.0.1", sport, "10.0.0.2", dport, payload)
    b = make_udp_packet("10.0.0.1", sport, "10.0.0.2", dport, payload)
    assert a.checksum == b.checksum
    assert a.checksum_ok()
