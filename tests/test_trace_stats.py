"""Tests for trace statistics utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.trace import (Trace, cdf_points, client_load_cdf,
                         fixed_interval_trace, inactive_client_fraction,
                         interarrivals, make_query_record, mean,
                         per_client_counts, per_second_rates, percentile,
                         quartile_summary, stddev, summarize,
                         top_client_share)


def trace_with_counts(counts):
    """Build a trace where client i sends counts[i] queries."""
    records = []
    t = 0.0
    for index, count in enumerate(counts):
        for _ in range(count):
            records.append(make_query_record(t, f"10.0.0.{index + 1}",
                                             "q.example.com."))
            t += 0.001
    return Trace(records)


class TestSummarize:
    def test_fixed_interval_summary(self):
        trace = fixed_interval_trace(0.5, 10.0, client_count=3)
        summary = summarize(trace)
        assert summary.records == 20
        assert summary.client_ips == 3
        assert summary.interarrival_mean == pytest.approx(0.5)
        assert summary.interarrival_std == pytest.approx(0.0)
        assert summary.unique_names == 20

    def test_row_renders(self):
        trace = fixed_interval_trace(0.5, 5.0)
        assert "records" in summarize(trace).row()


class TestRates:
    def test_per_second_buckets(self):
        records = [make_query_record(t, "10.0.0.1", "q.example.com.")
                   for t in (0.1, 0.2, 1.5, 2.9)]
        rates = per_second_rates(Trace(records))
        # Buckets are relative to the first timestamp.
        assert dict(rates) == {0: 2, 1: 1, 2: 1}

    def test_interarrivals_sorted(self):
        records = [make_query_record(t, "10.0.0.1", "q.example.com.")
                   for t in (3.0, 1.0, 2.0)]
        assert interarrivals(Trace(records)) == [1.0, 1.0]


class TestClientLoad:
    def test_counts(self):
        trace = trace_with_counts([5, 3, 1])
        counts = per_client_counts(trace)
        assert sorted(counts.values()) == [1, 3, 5]

    def test_top_share(self):
        # 100 clients; the busiest sends 901 of 1000 queries.
        trace = trace_with_counts([901] + [1] * 99)
        assert top_client_share(trace, 0.01) == pytest.approx(0.901)

    def test_inactive_fraction(self):
        trace = trace_with_counts([100, 50, 3, 2, 1])
        assert inactive_client_fraction(trace, threshold=10) == \
            pytest.approx(3 / 5)

    def test_load_cdf_monotone(self):
        trace = trace_with_counts([10, 5, 1, 1])
        points = client_load_cdf(trace)
        fractions = [f for _count, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestNumerics:
    def test_percentile_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 10.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_quartile_summary_keys(self):
        summary = quartile_summary(list(range(101)))
        assert summary["median"] == 50
        assert summary["p25"] == 25
        assert summary["p95"] == 95
        assert summary["min"] == 0 and summary["max"] == 100

    def test_mean_stddev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stddev([1.0, 2.0, 3.0]) == pytest.approx(1.0)
        assert stddev([5.0]) == 0.0

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50),
       st.floats(min_value=0.0, max_value=1.0))
def test_property_percentile_within_range(values, fraction):
    ordered = sorted(values)
    result = percentile(ordered, fraction)
    assert ordered[0] - 1e-9 <= result <= ordered[-1] + 1e-9


@given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False),
                min_size=2, max_size=50))
def test_property_quartiles_ordered(values):
    summary = quartile_summary(values)
    epsilon = 1e-9 * (1 + max(abs(v) for v in values))
    ordered = [summary["min"], summary["p25"], summary["median"],
               summary["p75"], summary["p95"], summary["max"]]
    assert all(a <= b + epsilon for a, b in zip(ordered, ordered[1:]))
