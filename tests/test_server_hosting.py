"""Tests for the transport hosting layer (UDP/TCP/TLS serving)."""

import pytest

from repro.dns import (DNS_OVER_TLS_PORT, DNS_PORT, Message, Name, RRType,
                       Rcode, read_zone)
from repro.netsim import (EventLoop, Network, TcpOptions, TcpStack,
                          TlsEndpoint)
from repro.server import (AuthoritativeServer, HostedDnsServer, StreamFramer,
                          TransportConfig, frame_message, iter_framed)
from repro.server.dnsio import FramingError

ZONE = """
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 10.5.0.2
www 300 IN A 192.0.2.80
"""


@pytest.fixture
def deployment():
    loop = EventLoop()
    network = Network(loop)
    server_host = network.add_host("server", "10.5.0.2")
    client_host = network.add_host("client", "10.5.0.1")
    zone = read_zone(ZONE, origin=Name.from_text("example.com."))
    server = HostedDnsServer(
        server_host, AuthoritativeServer.single_view([zone]),
        config=TransportConfig(udp=True, tcp=True, tls=True,
                               tcp_idle_timeout=5.0))
    return loop, network, server, client_host


def make_query(qname="www.example.com.", msg_id=7):
    return Message.make_query(Name.from_text(qname), RRType.A,
                              msg_id=msg_id).to_wire()


class TestUdpServing:
    def test_udp_query_answered(self, deployment):
        loop, network, server, client = deployment
        got = []
        sock = client.bind_udp("10.5.0.1", 0,
                               lambda s, d, a, p: got.append(
                                   Message.from_wire(d)))
        sock.sendto(make_query(), "10.5.0.2", DNS_PORT)
        loop.run(max_time=5)
        assert got and got[0].rcode == Rcode.NOERROR
        assert got[0].answer[0].rdata.address == "192.0.2.80"

    def test_garbage_counted_not_crashing(self, deployment):
        loop, network, server, client = deployment
        sock = client.bind_udp("10.5.0.1", 0)
        sock.sendto(b"\x00\x01nonsense-but-12-bytes-at-least", "10.5.0.2",
                    DNS_PORT)
        loop.run(max_time=5)
        assert server.decode_errors == 1


class TestTcpServing:
    def test_tcp_query_answered(self, deployment):
        loop, network, server, client = deployment
        stack = TcpStack(client)
        framer = StreamFramer()
        answers = []
        framer.on_message = lambda wire: answers.append(
            Message.from_wire(wire))
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_data = lambda cn, d: framer.feed(d)
        conn.send(frame_message(make_query()))
        loop.run(max_time=5)
        assert answers and answers[0].rcode == Rcode.NOERROR

    def test_multiple_queries_one_connection(self, deployment):
        loop, network, server, client = deployment
        stack = TcpStack(client)
        framer = StreamFramer()
        answers = []
        framer.on_message = lambda wire: answers.append(wire)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_data = lambda cn, d: framer.feed(d)
        for msg_id in (1, 2, 3):
            conn.send(frame_message(make_query(msg_id=msg_id)))
        loop.run(max_time=5)
        assert len(answers) == 3
        assert server.tcp_stack.established_count() == 1

    def test_queries_split_across_segments(self, deployment):
        # A query framed in two halves must still be parsed when the
        # second half lands (stream reassembly).
        loop, network, server, client = deployment
        stack = TcpStack(client)
        framer = StreamFramer()
        answers = []
        framer.on_message = lambda wire: answers.append(wire)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_data = lambda cn, d: framer.feed(d)
        framed = frame_message(make_query())

        def send_halves(cn):
            cn.send(framed[:7])
            loop.call_later(0.05, cn.send, framed[7:])

        loop.call_soon(send_halves, conn)
        loop.run(max_time=5)
        assert len(answers) == 1

    def test_idle_timeout_closes_server_side(self, deployment):
        loop, network, server, client = deployment
        stack = TcpStack(client)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_close = lambda cn: cn.close()
        conn.send(frame_message(make_query()))
        loop.run(max_time=30)
        assert server.tcp_stack.established_count() == 0
        assert server.tcp_stack.time_wait_count() == 1


class TestTlsServing:
    def test_tls_query_answered(self, deployment):
        loop, network, server, client = deployment
        stack = TcpStack(client)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_OVER_TLS_PORT,
                             TcpOptions(nagle=False))
        endpoint = TlsEndpoint(conn, "client")
        framer = StreamFramer()
        answers = []
        framer.on_message = lambda wire: answers.append(
            Message.from_wire(wire))
        endpoint.on_data = lambda ep, d: framer.feed(d)
        endpoint.send(frame_message(make_query()))
        loop.run(max_time=5)
        assert answers and answers[0].rcode == Rcode.NOERROR

    def test_tls_sessions_counted(self, deployment):
        loop, network, server, client = deployment
        stack = TcpStack(client)
        for _ in range(3):
            conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_OVER_TLS_PORT,
                                 TcpOptions(nagle=False))
            TlsEndpoint(conn, "client").send(frame_message(make_query()))
        loop.run(max_time=4)
        assert server.resources.tls_sessions == 3

    def test_cpu_charged_for_crypto(self, deployment):
        loop, network, server, client = deployment
        stack = TcpStack(client)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_OVER_TLS_PORT,
                             TcpOptions(nagle=False))
        TlsEndpoint(conn, "client").send(frame_message(make_query()))
        loop.run(max_time=5)
        busy = server.resources.cpu.busy_seconds
        assert "tls_handshake_private_key" in busy
        assert busy["tls_handshake_private_key"] > 0


class TestFraming:
    def test_frame_roundtrip(self):
        wires = [make_query(msg_id=i) for i in (1, 2, 3)]
        stream = b"".join(frame_message(w) for w in wires)
        assert list(iter_framed(stream)) == wires

    def test_oversize_frame_rejected(self):
        with pytest.raises(FramingError):
            frame_message(b"\x00" * 70000)

    def test_truncated_stream_rejected(self):
        stream = frame_message(make_query())[:-1]
        with pytest.raises(FramingError):
            list(iter_framed(stream))

    def test_framer_incremental(self):
        framer = StreamFramer()
        framed = frame_message(make_query())
        assert framer.feed(framed[:3]) == []
        out = framer.feed(framed[3:])
        assert len(out) == 1
        assert framer.pending_bytes() == 0


class TestTransportConfig:
    def make(self, **kwargs):
        loop = EventLoop()
        network = Network(loop)
        server_host = network.add_host("server2", "10.5.1.2")
        client_host = network.add_host("client2", "10.5.1.1")
        zone = read_zone(ZONE.replace("10.5.0.2", "10.5.1.2"),
                         origin=Name.from_text("example.com."))
        server = HostedDnsServer(
            server_host, AuthoritativeServer.single_view([zone]),
            config=TransportConfig(**kwargs))
        return loop, network, server, client_host

    def test_udp_disabled(self):
        loop, network, server, client = self.make(udp=False, tcp=True)
        sock = client.bind_udp("10.5.1.1", 0)
        sock.sendto(make_query(), "10.5.1.2", DNS_PORT)
        loop.run(max_time=2)
        assert network.host("server2").counters.unreachable_drops == 1

    def test_tls_disabled_by_default(self):
        loop, network, server, client = self.make()
        stack = TcpStack(client)
        refused = []
        conn = stack.connect("10.5.1.1", "10.5.1.2", DNS_OVER_TLS_PORT,
                             TcpOptions(nagle=False))
        conn.on_reset = lambda cn: refused.append(True)
        loop.run(max_time=2)
        assert refused  # RST: no TLS listener

    def test_tcp_disabled(self):
        loop, network, server, client = self.make(tcp=False)
        stack = TcpStack(client)
        refused = []
        conn = stack.connect("10.5.1.1", "10.5.1.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_reset = lambda cn: refused.append(True)
        loop.run(max_time=2)
        assert refused

    def test_no_idle_timeout_keeps_connection(self):
        loop, network, server, client = self.make(tcp_idle_timeout=None)
        stack = TcpStack(client)
        conn = stack.connect("10.5.1.1", "10.5.1.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.send(frame_message(make_query()))
        loop.run(max_time=120)
        assert server.tcp_stack.established_count() == 1


class SlowEngine:
    """Answers asynchronously after a delay — long enough for the
    client to reset the connection while the response is in flight."""

    def __init__(self, loop, delay=0.5):
        self.loop = loop
        self.delay = delay

    def handle_query_async(self, query, source, transport, respond):
        self.loop.call_later(self.delay, respond,
                             Message.make_response(query))


class TestResponseDroppedOnClosed:
    """The reset-while-response-in-flight branches of the send path."""

    def deploy_slow(self):
        loop = EventLoop()
        network = Network(loop)
        server_host = network.add_host("server", "10.5.0.2")
        client_host = network.add_host("client", "10.5.0.1")
        server = HostedDnsServer(
            server_host, SlowEngine(loop),
            config=TransportConfig(udp=True, tcp=True, tls=True))
        return loop, server, client_host

    def test_tcp_reset_while_response_in_flight(self):
        loop, server, client = self.deploy_slow()
        stack = TcpStack(client)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.send(frame_message(make_query()))
        # The engine responds at ~0.5 s; reset the connection first.
        loop.call_at(0.2, conn.abort)
        loop.run(max_time=5)
        assert server.responses_dropped_on_closed == 1

    def test_tls_reset_while_response_in_flight(self):
        loop, server, client = self.deploy_slow()
        stack = TcpStack(client)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_OVER_TLS_PORT,
                             TcpOptions(nagle=False))
        endpoint = TlsEndpoint(conn, "client")
        endpoint.send(frame_message(make_query()))
        loop.call_at(0.2, conn.abort)
        loop.run(max_time=5)
        assert server.responses_dropped_on_closed == 1

    def test_graceful_serving_does_not_count_drops(self):
        loop, server, client = self.deploy_slow()
        got = []
        stack = TcpStack(client)
        conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                             TcpOptions(nagle=False))
        conn.on_data = lambda cn, data: got.append(data)
        conn.send(frame_message(make_query()))
        loop.run(max_time=5)
        assert got
        assert server.responses_dropped_on_closed == 0
