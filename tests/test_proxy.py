"""Tests for the address-rewriting proxies (Figure 2 machinery)."""

import pytest

from repro.dns import DNS_PORT, Message, Name, RRType, Rcode, read_zone
from repro.netsim import (EventLoop, FilterRule, Network, UdpSegment,
                          make_udp_packet)
from repro.proxy import (AddressRewritingProxy, install_authoritative_proxy,
                         install_recursive_proxy)
from repro.server import AuthoritativeServer, HostedDnsServer, View, ZoneSet


class TestRewriteRules:
    def setup_method(self):
        self.loop = EventLoop()
        self.network = Network(self.loop)
        self.host = self.network.add_host("proxy-host", "10.6.0.1")
        self.target = self.network.add_host("target", "10.6.0.2")

    def test_source_becomes_old_destination(self):
        tun = self.host.create_tun()
        proxy = AddressRewritingProxy(tun, "10.6.0.2",
                                      processing_delay=0.0)
        seen = []
        self.target.bind_udp("10.6.0.2", 53,
                             lambda s, d, a, p: seen.append((a, p)))
        packet = make_udp_packet("10.6.0.1", 40000, "198.41.0.4", 53, b"q")
        tun.push(packet)
        self.loop.run(max_time=1)
        # The OQDA (198.41.0.4) became the source address.
        assert seen == [("198.41.0.4", 40000)]
        assert proxy.stats.packets_rewritten == 1
        assert proxy.stats.rewrites_by_oqda == {"198.41.0.4": 1}

    def test_checksum_recomputed(self):
        tun = self.host.create_tun()
        AddressRewritingProxy(tun, "10.6.0.2", processing_delay=0.0)
        got = []
        self.target.bind_udp("10.6.0.2", 53, lambda s, d, a, p: got.append(d))
        tun.push(make_udp_packet("10.6.0.1", 40000, "198.41.0.4", 53, b"ok"))
        self.loop.run(max_time=1)
        assert got == [b"ok"]
        assert self.target.counters.checksum_drops == 0

    def test_broken_proxy_without_recompute_is_dropped(self):
        # §2.4: "after recalculating the checksum" — skip it and the
        # receiving host discards the packet.
        tun = self.host.create_tun()
        AddressRewritingProxy(tun, "10.6.0.2", processing_delay=0.0,
                              recompute_checksum=False)
        got = []
        self.target.bind_udp("10.6.0.2", 53, lambda s, d, a, p: got.append(d))
        tun.push(make_udp_packet("10.6.0.1", 40000, "198.41.0.4", 53, b"x"))
        self.loop.run(max_time=1)
        assert got == []
        assert self.target.counters.checksum_drops == 1

    def test_processing_delay_applied(self):
        tun = self.host.create_tun()
        AddressRewritingProxy(tun, "10.6.0.2", processing_delay=0.010)
        times = []
        self.target.bind_udp("10.6.0.2", 53,
                             lambda s, d, a, p: times.append(self.loop.now))
        tun.push(make_udp_packet("10.6.0.1", 1, "9.9.9.9", 53, b"z"))
        self.loop.run(max_time=1)
        assert times and times[0] >= 0.010


class TestInstallers:
    def test_recursive_proxy_rules(self):
        loop = EventLoop()
        network = Network(loop)
        host = network.add_host("rec", "10.7.0.1")
        proxy = install_recursive_proxy(host, "10.7.0.2")
        # dport-53 UDP and TCP rules on the output chain.
        sock = host.bind_udp("10.7.0.1", 0)
        sock.sendto(b"query", "203.0.113.1", 53)
        sock.sendto(b"not-dns", "203.0.113.1", 80)
        loop.run(max_time=1)
        assert proxy.tun.packets_diverted == 1

    def test_authoritative_proxy_rules(self):
        loop = EventLoop()
        network = Network(loop)
        host = network.add_host("auth", "10.7.0.3")
        proxy = install_authoritative_proxy(host, "10.7.0.1")
        sock = host.bind_udp("10.7.0.3", 53)
        sock.sendto(b"response", "203.0.113.1", 40000)
        loop.run(max_time=1)
        assert proxy.tun.packets_diverted == 1


class TestFigure2EndToEnd:
    """The complete Figure 2 flow with a hand-rolled resolver side."""

    def test_query_and_reply_traverse_both_proxies(self):
        loop = EventLoop()
        network = Network(loop)
        rec_host = network.add_host("recursive", "172.16.9.1")
        meta_host = network.add_host("meta", "172.16.9.2")

        root = read_zone("""
$ORIGIN .
@ 3600 IN SOA a.root-servers.net. n. 1 2 3 4 5
@ 3600 IN NS a.root-servers.net.
a.root-servers.net. 3600 IN A 198.41.0.4
com. 172800 IN NS a.gtld-servers.net.
a.gtld-servers.net. 172800 IN A 192.5.6.30
""", origin=Name.from_text("."))
        engine = AuthoritativeServer([
            View("root", ZoneSet([root]), match_clients=("198.41.0.4",)),
        ])
        HostedDnsServer(meta_host, engine)

        recursive_proxy = install_recursive_proxy(rec_host, "172.16.9.2",
                                                  processing_delay=0.0)
        authoritative_proxy = install_authoritative_proxy(
            meta_host, "172.16.9.1", processing_delay=0.0)

        replies = []
        sock = rec_host.bind_udp(
            "172.16.9.1", 0,
            lambda s, d, a, p: replies.append((a, Message.from_wire(d))))
        # The "resolver" queries the root's PUBLIC address...
        query = Message.make_query(Name.from_text("www.example.com."),
                                   RRType.A, msg_id=3,
                                   recursion_desired=False)
        sock.sendto(query.to_wire(), "198.41.0.4", DNS_PORT)
        loop.run(max_time=2)

        # ...and receives a referral that APPEARS to come from it.
        assert replies, "no reply traversed the proxy pair"
        source, message = replies[0]
        assert source == "198.41.0.4"
        assert message.msg_id == 3
        ns_targets = [rr.rdata.target for rr in message.authority
                      if rr.rrtype == RRType.NS]
        assert Name.from_text("a.gtld-servers.net.") in ns_targets
        assert recursive_proxy.stats.packets_rewritten == 1
        assert authoritative_proxy.stats.packets_rewritten == 1

    def test_wrong_view_refused_through_proxies(self):
        loop = EventLoop()
        network = Network(loop)
        rec_host = network.add_host("recursive", "172.16.9.1")
        meta_host = network.add_host("meta", "172.16.9.2")
        root = read_zone("""
$ORIGIN .
@ 3600 IN SOA a.root-servers.net. n. 1 2 3 4 5
@ 3600 IN NS a.root-servers.net.
a.root-servers.net. 3600 IN A 198.41.0.4
""", origin=Name.from_text("."))
        engine = AuthoritativeServer([
            View("root", ZoneSet([root]), match_clients=("198.41.0.4",)),
        ])
        HostedDnsServer(meta_host, engine)
        install_recursive_proxy(rec_host, "172.16.9.2", processing_delay=0.0)
        install_authoritative_proxy(meta_host, "172.16.9.1",
                                    processing_delay=0.0)
        replies = []
        sock = rec_host.bind_udp(
            "172.16.9.1", 0,
            lambda s, d, a, p: replies.append(Message.from_wire(d)))
        query = Message.make_query(Name.from_text("x."), RRType.A, msg_id=9)
        # Addressed to an IP no view matches:
        sock.sendto(query.to_wire(), "203.0.113.77", DNS_PORT)
        loop.run(max_time=2)
        assert replies and replies[0].rcode == Rcode.REFUSED
