"""Tests for the DNS message codec."""

import pytest
from hypothesis import given, strategies as st

from repro.dns import (Edns, Flag, Message, Name, Opcode, Question, RRClass,
                       RRType, Rcode, WireError)
from repro.dns import rdata as rd
from repro.dns.rrset import RR


def make_sample_response():
    query = Message.make_query(Name.from_text("www.example.com."),
                               RRType.A, msg_id=99,
                               edns=Edns(dnssec_ok=True))
    response = Message.make_response(query)
    response.answer.append(RR(Name.from_text("www.example.com."), 300,
                              RRClass.IN, rd.A("192.0.2.1")))
    response.authority.append(RR(Name.from_text("example.com."), 3600,
                                 RRClass.IN,
                                 rd.NS(Name.from_text("ns1.example.com."))))
    response.additional.append(RR(Name.from_text("ns1.example.com."), 3600,
                                  RRClass.IN, rd.A("192.0.2.53")))
    return query, response


class TestQueries:
    def test_make_query_defaults(self):
        query = Message.make_query(Name.from_text("a.b."), RRType.AAAA)
        assert query.flags & Flag.RD
        assert not query.is_response
        assert query.question[0].rrtype == RRType.AAAA

    def test_query_roundtrip(self):
        query = Message.make_query(Name.from_text("x.y."), RRType.MX,
                                   msg_id=0x1234)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.msg_id == 0x1234
        assert decoded.question == query.question
        assert decoded.edns is None

    def test_no_rd(self):
        query = Message.make_query(Name.from_text("x."), RRType.A,
                                   recursion_desired=False)
        assert not Message.from_wire(query.to_wire()).flags & Flag.RD


class TestResponses:
    def test_response_roundtrip_sections(self):
        _query, response = make_sample_response()
        decoded = Message.from_wire(response.to_wire())
        assert decoded.is_response
        assert len(decoded.answer) == 1
        assert len(decoded.authority) == 1
        assert len(decoded.additional) == 1
        assert decoded.answer[0].rdata == rd.A("192.0.2.1")

    def test_response_copies_do_bit(self):
        query, response = make_sample_response()
        assert response.edns is not None and response.edns.dnssec_ok

    def test_response_id_matches_query(self):
        query, response = make_sample_response()
        assert response.msg_id == query.msg_id

    def test_rcode_roundtrip(self):
        query = Message.make_query(Name.from_text("x."), RRType.A)
        response = Message.make_response(query, rcode=Rcode.NXDOMAIN)
        assert Message.from_wire(response.to_wire()).rcode == Rcode.NXDOMAIN


class TestEdns:
    def test_opt_roundtrip(self):
        message = Message.make_query(
            Name.from_text("e."), RRType.A,
            edns=Edns(payload_size=1232, dnssec_ok=True, version=0))
        decoded = Message.from_wire(message.to_wire())
        assert decoded.edns.payload_size == 1232
        assert decoded.edns.dnssec_ok

    def test_duplicate_opt_rejected(self):
        message = Message.make_query(Name.from_text("e."), RRType.A,
                                     edns=Edns())
        wire = bytearray(message.to_wire())
        # Duplicate the OPT record and bump ARCOUNT.
        opt_start = len(wire) - 11
        wire += wire[opt_start:]
        wire[11] = 2
        with pytest.raises(WireError):
            Message.from_wire(bytes(wire))

    def test_no_edns_means_none(self):
        message = Message.make_query(Name.from_text("e."), RRType.A)
        assert Message.from_wire(message.to_wire()).edns is None


class TestTruncation:
    def test_truncates_over_limit(self):
        _query, response = make_sample_response()
        full = response.to_wire()
        truncated_wire = response.to_wire(max_size=len(full) - 1)
        truncated = Message.from_wire(truncated_wire)
        assert truncated.flags & Flag.TC
        assert not truncated.answer
        assert truncated.question  # question is preserved

    def test_no_truncation_when_fits(self):
        _query, response = make_sample_response()
        wire = response.to_wire(max_size=4096)
        assert not Message.from_wire(wire).flags & Flag.TC

    def test_wire_size(self):
        _query, response = make_sample_response()
        assert response.wire_size() == len(response.to_wire())

    def test_fast_path_matches_full_reencode(self):
        # The truncated wire is assembled from the cached encode; it
        # must equal what encoding a freshly built truncated message
        # produces (the pre-optimization behaviour).
        _query, response = make_sample_response()
        full = response.to_wire()
        reference = Message(
            msg_id=response.msg_id, flags=response.flags | Flag.TC,
            opcode=response.opcode, rcode=response.rcode,
            question=list(response.question), edns=response.edns,
        )._encode()
        assert response.to_wire(max_size=len(full) - 1) == reference

    def test_fast_path_without_edns(self):
        query = Message.make_query(Name.from_text("www.example.com."),
                                   RRType.A, msg_id=5)
        response = Message.make_response(query)
        for i in range(40):
            response.answer.append(RR(Name.from_text("www.example.com."),
                                      300, RRClass.IN, rd.A(f"10.0.0.{i + 1}")))
        truncated = Message.from_wire(response.to_wire(max_size=512))
        assert truncated.flags & Flag.TC
        assert truncated.edns is None
        assert not truncated.answer
        assert truncated.question[0].name == query.question[0].name


class TestEncodeCache:
    def test_repeat_encode_returns_same_bytes(self):
        _query, response = make_sample_response()
        assert response.to_wire() == response.to_wire()
        assert response.wire_size() == len(response.to_wire())

    def test_appending_record_invalidates(self):
        _query, response = make_sample_response()
        size = response.wire_size()
        response.answer.append(RR(Name.from_text("www.example.com."), 300,
                                  RRClass.IN, rd.A("192.0.2.2")))
        assert response.wire_size() > size
        assert response.wire_size() == len(response.to_wire())

    def test_header_field_changes_invalidate(self):
        _query, response = make_sample_response()
        before = response.to_wire()
        response.msg_id = 12345
        wire = response.to_wire()
        assert wire != before
        assert Message.from_wire(wire).msg_id == 12345
        response.flags |= Flag.TC
        assert Message.from_wire(response.to_wire()).flags & Flag.TC

    def test_edns_mutation_invalidates(self):
        _query, response = make_sample_response()
        response.to_wire()
        response.edns.payload_size = 1400
        assert Message.from_wire(response.to_wire()).edns.payload_size == 1400


class TestCompressionInMessages:
    def test_compression_shrinks_message(self):
        _query, response = make_sample_response()
        wire = response.to_wire()
        # Owner names compress against the question; RDATA names are
        # deliberately uncompressed.  The suffix therefore appears twice
        # (question + NS rdata) instead of five times.
        assert wire.count(b"\x07example\x03com") == 2
        # And at least one compression pointer is present.
        assert any(byte & 0xC0 == 0xC0 and wire[i + 1] == 0x0C
                   for i, byte in enumerate(wire[:-1]))


class TestText:
    def test_to_text_contains_sections(self):
        _query, response = make_sample_response()
        text = response.to_text()
        assert "ANSWER" in text and "AUTHORITY" in text
        assert "www.example.com." in text


QNAMES = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10),
    min_size=1, max_size=4)


@given(QNAMES,
       st.sampled_from([RRType.A, RRType.AAAA, RRType.NS, RRType.TXT,
                        RRType.DNSKEY, RRType.ANY]),
       st.integers(0, 0xFFFF), st.booleans(), st.booleans())
def test_property_query_roundtrip(labels, rrtype, msg_id, rd_flag, do):
    name = Name([l.encode() for l in labels])
    message = Message.make_query(name, rrtype, msg_id=msg_id,
                                 recursion_desired=rd_flag,
                                 edns=Edns(dnssec_ok=do) if do else None)
    decoded = Message.from_wire(message.to_wire())
    assert decoded.msg_id == msg_id
    assert decoded.question[0].name == name
    assert decoded.question[0].rrtype == rrtype
    assert bool(decoded.flags & Flag.RD) == rd_flag
    assert decoded.dnssec_ok == do
