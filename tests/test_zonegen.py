"""Tests for zone construction from traces (§2.3)."""

import pytest

from repro.dns import (Flag, Message, Name, RRClass, RRType, Rcode)
from repro.dns import rdata as rd
from repro.dns.rrset import RR
from repro.trace import RecursiveWorkload, make_hierarchy_zones
from repro.zonegen import (ZoneConstructor, build_zones_from_trace,
                           unique_questions)


def response(source, qname, answers=(), authority=(), additional=(),
             rcode=Rcode.NOERROR):
    query = Message.make_query(Name.from_text(qname), RRType.A, msg_id=1)
    message = Message.make_response(query, rcode=rcode)
    message.answer.extend(answers)
    message.authority.extend(authority)
    message.additional.extend(additional)
    return source, message


def a(name, address, ttl=300):
    return RR(Name.from_text(name), ttl, RRClass.IN, rd.A(address))


def ns(owner, target, ttl=3600):
    return RR(Name.from_text(owner), ttl, RRClass.IN,
              rd.NS(Name.from_text(target)))


def cname(owner, target, ttl=300):
    return RR(Name.from_text(owner), ttl, RRClass.IN,
              rd.CNAME(Name.from_text(target)))


class TestHarvest:
    def build(self, observations, root_addresses=("198.41.0.4",)):
        constructor = ZoneConstructor()
        for source, message in observations:
            constructor.add_response(source, message)
        return constructor.build(root_addresses=root_addresses)

    def test_referral_data_lands_in_parent_zone(self):
        library = self.build([
            response("198.41.0.4", "www.example.com.",
                     authority=[ns("com.", "a.gtld-servers.net.")],
                     additional=[a("a.gtld-servers.net.", "192.5.6.30",
                                   172800)]),
        ])
        root = library.zones[Name(())]
        assert root.get(Name.from_text("com."), RRType.NS) is not None
        assert root.get(Name.from_text("a.gtld-servers.net."),
                        RRType.A) is not None

    def test_answer_data_lands_in_child_zone(self):
        library = self.build([
            response("198.41.0.4", "www.example.com.",
                     authority=[ns("com.", "a.gtld-servers.net.")],
                     additional=[a("a.gtld-servers.net.", "192.5.6.30")]),
            response("192.5.6.30", "www.example.com.",
                     authority=[ns("example.com.", "ns1.example.com.")],
                     additional=[a("ns1.example.com.", "192.0.2.53")]),
            response("192.0.2.53", "www.example.com.",
                     answers=[a("www.example.com.", "192.0.2.80")]),
        ])
        example = library.zones[Name.from_text("example.com.")]
        rrset = example.get(Name.from_text("www.example.com."), RRType.A)
        assert rrset is not None
        assert rrset.rdatas[0].address == "192.0.2.80"
        # And the com zone holds the delegation, not the address record.
        com = library.zones[Name.from_text("com.")]
        assert com.get(Name.from_text("www.example.com."), RRType.A) is None

    def test_missing_soa_recovered(self):
        library = self.build([
            response("198.41.0.4", "x.example.",
                     authority=[ns("example.", "ns.example.")],
                     additional=[a("ns.example.", "203.0.113.5")]),
        ])
        assert library.zones[Name.from_text("example.")].soa is not None
        assert "example." in library.report.soa_recovered

    def test_apex_ns_recovered_from_delegation(self):
        library = self.build([
            response("198.41.0.4", "x.example.",
                     authority=[ns("example.", "ns.example.")],
                     additional=[a("ns.example.", "203.0.113.5")]),
        ])
        child = library.zones[Name.from_text("example.")]
        assert child.get(child.origin, RRType.NS) is not None

    def test_conflicting_cnames_first_wins(self):
        first = cname("www.cdn.example.", "edge1.cdn.example.")
        second = cname("www.cdn.example.", "edge2.cdn.example.")
        library = self.build([
            response("198.41.0.4", "www.cdn.example.",
                     authority=[ns("cdn.example.", "ns.cdn.example.")],
                     additional=[a("ns.cdn.example.", "203.0.113.9")]),
            response("203.0.113.9", "www.cdn.example.", answers=[first]),
            response("203.0.113.9", "www.cdn.example.", answers=[second]),
        ])
        zone = library.zones[Name.from_text("cdn.example.")]
        rrset = zone.get(Name.from_text("www.cdn.example."), RRType.CNAME)
        assert len(rrset) == 1
        assert rrset.rdatas[0].target == Name.from_text(
            "edge1.cdn.example.")
        assert library.report.conflicts_dropped == 1

    def test_multi_address_rrset_within_one_response(self):
        # A multi-record answer arrives as ONE response; it is kept
        # whole.  A later DIFFERING response is dropped (first wins).
        library = self.build([
            response("198.41.0.4", "multi.example.",
                     authority=[ns("example.", "ns.example.")],
                     additional=[a("ns.example.", "203.0.113.5")]),
            response("203.0.113.5", "multi.example.",
                     answers=[a("multi.example.", "192.0.2.1"),
                              a("multi.example.", "192.0.2.2")]),
            response("203.0.113.5", "multi.example.",
                     answers=[a("multi.example.", "192.0.2.9")]),
        ])
        zone = library.zones[Name.from_text("example.")]
        rrset = zone.get(Name.from_text("multi.example."), RRType.A)
        assert len(rrset) == 2
        assert {r.address for r in rrset.rdatas} == \
            {"192.0.2.1", "192.0.2.2"}
        assert library.report.conflicts_dropped == 1

    def test_unattributed_source_counted(self):
        library = self.build([
            response("203.0.113.222", "x.example.",
                     answers=[a("x.example.", "192.0.2.1")]),
        ], root_addresses=["198.41.0.4"])
        assert library.report.unattributed_responses == 1

    def test_queries_ignored(self):
        constructor = ZoneConstructor()
        query = Message.make_query(Name.from_text("q.example."), RRType.A)
        constructor.add_response("198.41.0.4", query)
        assert constructor.report.responses == 0

    def test_merge_combines_traces(self):
        first = ZoneConstructor()
        src, msg = response("198.41.0.4", "a.example.",
                            authority=[ns("example.", "ns.example.")],
                            additional=[a("ns.example.", "203.0.113.5")])
        first.add_response(src, msg)
        second = ZoneConstructor()
        src2, msg2 = response("203.0.113.5", "a.example.",
                              answers=[a("a.example.", "192.0.2.7")])
        second.add_response(src2, msg2)
        first.merge(second)
        library = first.build(root_addresses=["198.41.0.4"])
        zone = library.zones[Name.from_text("example.")]
        assert zone.get(Name.from_text("a.example."), RRType.A) is not None

    def test_nameserver_map(self):
        library = self.build([
            response("198.41.0.4", "x.example.",
                     authority=[ns("example.", "ns.example.")],
                     additional=[a("ns.example.", "203.0.113.5")]),
        ])
        assert library.nameservers[Name.from_text("example.")] == \
            ["203.0.113.5"]


class TestUniqueQuestions:
    def test_dedupes(self):
        zones = make_hierarchy_zones(2, 2)
        trace = RecursiveWorkload(duration=10, total_queries=200,
                                  zones=zones).generate()
        questions = unique_questions(trace)
        assert len(set(questions)) == len(questions)
        assert len(questions) < 200


class TestOneTimeFetch:
    @pytest.fixture(scope="class")
    def library(self):
        zones = make_hierarchy_zones(2, 3)
        trace = RecursiveWorkload(duration=20, total_queries=150,
                                  zones=zones).generate()
        return build_zones_from_trace(trace, zones), zones, trace

    def test_builds_all_levels(self, library):
        lib, zones, _trace = library
        assert Name(()) in lib
        assert any(len(origin) == 1 for origin in lib.zones)  # TLDs
        assert any(len(origin) == 2 for origin in lib.zones)  # SLDs

    def test_zones_are_valid(self, library):
        lib, _zones, _trace = library
        for zone in lib.zone_list():
            zone.validate()

    def test_rebuilt_hierarchy_answers_original_queries(self, library):
        lib, _zones, trace = library
        from repro.hierarchy import HierarchyEmulation
        from repro.netsim import EventLoop, Network
        loop = EventLoop()
        network = Network(loop)
        emulation = HierarchyEmulation(network, lib.zone_list())
        stub = network.add_host("stub", "10.9.0.1")
        results = {}

        def callback_for(key):
            def callback(_s, data, _a, _p):
                results[key] = Message.from_wire(data).rcode
            return callback

        questions = unique_questions(trace)[:25]
        for index, (qname, qtype) in enumerate(questions):
            sock = stub.bind_udp("10.9.0.1", 0, callback_for((qname, qtype)))
            sock.sendto(Message.make_query(qname, qtype,
                                           msg_id=index + 1).to_wire(),
                        emulation.recursive_address, 53)
        loop.run(max_time=120)
        answered = [results.get(key) for key in questions]
        assert all(rcode is not None for rcode in answered)
        noerror = sum(1 for rcode in answered if rcode == Rcode.NOERROR)
        assert noerror >= len(questions) * 0.8
