"""Tests for the inter-node replay protocol and distributed live replay."""

import json
import socket
import struct
import threading
import time

import pytest

from repro.replay import (DistributedConfig, LiveDistributedReplay,
                          LiveUdpEchoServer, MAX_FRAME, MSG_CHECKPOINT,
                          MSG_END, MSG_HELLO, MSG_METRICS, MSG_RECORD,
                          MSG_RECORD_SEQ, MSG_RESULT, MSG_SHUTDOWN,
                          MSG_TELEMETRY, MSG_TIME_SYNC, MessageSocket,
                          ProtocolError, ROLE_QUERIER, SendError, connect,
                          connected_pair)
from repro.replay.distributed import _LiveQuerier
from repro.trace import BRootWorkload, fixed_interval_trace, \
    make_query_record

_HEADER = struct.Struct("!IB")


class TestMessageSocket:
    def test_time_sync_roundtrip(self):
        sender, receiver = connected_pair()
        sender.send_time_sync(1234.5678)
        kind, payload = receiver.receive()
        assert kind == MSG_TIME_SYNC
        assert payload == pytest.approx(1234.5678)
        sender.close(), receiver.close()

    def test_record_roundtrip(self):
        sender, receiver = connected_pair()
        record = make_query_record(7.25, "10.1.2.3", "x.example.com.",
                                   protocol="tcp", sport=4444)
        sender.send_record(record)
        kind, payload = receiver.receive()
        assert kind == MSG_RECORD
        assert payload.src == "10.1.2.3"
        assert payload.sport == 4444
        assert payload.protocol == "tcp"
        assert payload.wire == record.wire
        assert payload.timestamp == pytest.approx(7.25)
        sender.close(), receiver.close()

    def test_end_terminates_iteration(self):
        sender, receiver = connected_pair()
        sender.send_record(make_query_record(0, "10.0.0.1",
                                             "a.example.com."))
        sender.send_end()
        messages = list(receiver.messages())
        assert [kind for kind, _p in messages] == [MSG_RECORD, MSG_END]
        sender.close(), receiver.close()

    def test_eof_returns_none(self):
        sender, receiver = connected_pair()
        sender.close()
        assert receiver.receive() is None
        receiver.close()

    def test_many_records_in_order(self):
        sender, receiver = connected_pair()
        records = [make_query_record(float(i), "10.0.0.1",
                                     f"q{i}.example.com.")
                   for i in range(50)]

        def pump():
            for record in records:
                sender.send_record(record)
            sender.send_end()

        thread = threading.Thread(target=pump)
        thread.start()
        received = [payload for kind, payload in receiver.messages()
                    if kind == MSG_RECORD]
        thread.join()
        assert [r.wire for r in received] == [r.wire for r in records]
        assert receiver.messages_received == 51
        sender.close(), receiver.close()


class TestControlFrames:
    def test_hello_roundtrip(self):
        sender, receiver = connected_pair()
        sender.send_hello(ROLE_QUERIER, 7, 5353)
        kind, payload = receiver.receive()
        assert kind == MSG_HELLO
        assert payload == (ROLE_QUERIER, 7, 5353, 0)
        sender.close(), receiver.close()

    def test_hello_carries_incarnation(self):
        sender, receiver = connected_pair()
        sender.send_hello(ROLE_QUERIER, 7, 5353, incarnation=3)
        kind, payload = receiver.receive()
        assert kind == MSG_HELLO
        assert payload == (ROLE_QUERIER, 7, 5353, 3)
        sender.close(), receiver.close()

    def test_legacy_hello_defaults_incarnation(self):
        # A 5-byte v1 HELLO (no incarnation field) must still decode.
        sender, receiver = connected_pair()
        sender._socket.sendall(
            _HEADER.pack(1 + 5, MSG_HELLO)
            + struct.pack("!BHH", ROLE_QUERIER, 7, 5353))
        kind, payload = receiver.receive()
        assert kind == MSG_HELLO
        assert payload == (ROLE_QUERIER, 7, 5353, 0)
        sender.close(), receiver.close()

    def test_result_roundtrip(self):
        from repro.replay import ReplayResult, SentQuery
        shard = ReplayResult("querier-3")
        shard.add(SentQuery(index=0, source="10.0.0.1", trace_time=0.0,
                            scheduled_at=1.0, sent_at=1.001,
                            protocol="udp", qname="a.example.com.",
                            answered_at=1.02, querier_id=3))
        shard.deadline_shed = 4
        sender, receiver = connected_pair()
        sender.send_result(shard.to_dict())
        kind, payload = receiver.receive()
        assert kind == MSG_RESULT
        restored = ReplayResult.from_dict(payload)
        assert len(restored) == 1
        assert restored.sent[0].qname == "a.example.com."
        assert restored.sent[0].latency == pytest.approx(0.019)
        assert restored.deadline_shed == 4
        sender.close(), receiver.close()

    def test_metrics_roundtrip(self):
        from repro.telemetry import MetricsRegistry
        metrics = MetricsRegistry()
        metrics.incr("replay.records_sent", 42)
        metrics.observe("query.latency_s", 0.003)
        sender, receiver = connected_pair()
        sender.send_metrics(metrics.to_state())
        kind, payload = receiver.receive()
        assert kind == MSG_METRICS
        restored = MetricsRegistry.from_state(payload)
        merged = MetricsRegistry()
        merged.merge_state(payload)
        for registry in (restored, merged):
            state = registry.to_state()
            assert state["counts"]["replay.records_sent"] == 42
            assert state["histograms"]["query.latency_s"]["count"] == 1
        sender.close(), receiver.close()

    def test_shutdown_roundtrip(self):
        sender, receiver = connected_pair()
        sender.send_shutdown()
        assert receiver.receive() == (MSG_SHUTDOWN, None)
        sender.close(), receiver.close()

    def test_checkpoint_roundtrip(self):
        sender, receiver = connected_pair()
        snapshot = {"name": "querier-2", "sent": []}
        sender.send_checkpoint(2, 1, 5, snapshot, final=True)
        kind, payload = receiver.receive()
        assert kind == MSG_CHECKPOINT
        assert payload["worker"] == 2
        assert payload["incarnation"] == 1
        assert payload["seq"] == 5
        assert payload["final"] is True
        assert payload["result"] == snapshot
        sender.close(), receiver.close()

    def test_record_seq_roundtrip(self):
        sender, receiver = connected_pair()
        record = make_query_record(3.5, "10.9.8.7", "seq.example.com.")
        sender.send_record_seq(1234, record)
        kind, payload = receiver.receive()
        assert kind == MSG_RECORD_SEQ
        index, restored = payload
        assert index == 1234
        assert restored.wire == record.wire
        assert restored.src == "10.9.8.7"
        sender.close(), receiver.close()

    def test_send_on_dead_socket_raises_typed_send_error(self):
        sender, receiver = connected_pair()
        receiver.close()
        # The first sends may land in kernel buffers; keep writing until
        # the RST surfaces.  It must come back as SendError (a
        # ProtocolError *and* ConnectionError) naming the frame kind.
        with pytest.raises(SendError, match="RECORD") as excinfo:
            for _ in range(100):
                sender.send_record(
                    make_query_record(0.0, "10.0.0.1", "x.example.com."))
                time.sleep(0.005)
        assert isinstance(excinfo.value, ProtocolError)
        assert isinstance(excinfo.value, ConnectionError)
        sender.close()

    def test_hello_deadline_is_protocol_error_with_peer(self):
        from repro.replay.multiproc import _accept_hello
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        # Connect but never speak: the accept loop must not hang.
        mute = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        mute.connect(listener.getsockname())
        with pytest.raises(ProtocolError, match=r"127\.0\.0\.1:\d+.*HELLO"):
            _accept_hello(listener, ROLE_QUERIER, timeout=0.2)
        mute.close()
        listener.close()

    def test_connect_reaches_listener(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = connect(listener.getsockname())
        accepted, _peer = listener.accept()
        server_side = MessageSocket(accepted)
        client.send_end()
        assert server_side.receive() == (MSG_END, None)
        client.close(), server_side.close(), listener.close()


class TestProtocolErrorPaths:
    """ISSUE satellite: a hostile or corrupt peer must raise
    ProtocolError — never hang, never buffer unbounded memory.  Each
    case crafts raw bytes below the framing layer."""

    def raw_pair(self):
        sender, receiver = connected_pair()
        return sender._socket, receiver, sender, receiver

    def test_zero_length_frame_rejected(self):
        raw, receiver, s, r = self.raw_pair()
        # length=0 claims a frame with no kind byte; pre-fix this asked
        # the buffer for -1 payload bytes and desynchronized the stream.
        raw.sendall(_HEADER.pack(0, MSG_END))
        with pytest.raises(ProtocolError, match="length"):
            receiver.receive()
        s.close(), r.close()

    def test_oversized_frame_rejected_without_buffering(self):
        raw, receiver, s, r = self.raw_pair()
        # A corrupt length field must be rejected from the header alone
        # (pre-fix the receiver tried to buffer 4 GiB).
        raw.sendall(_HEADER.pack(0xFFFFFFFF, MSG_RECORD))
        with pytest.raises(ProtocolError, match="length"):
            receiver.receive()
        assert len(receiver._buffer) < 1024
        s.close(), r.close()

    def test_max_frame_boundary(self):
        sender, receiver = connected_pair()
        raw = sender._socket
        raw.sendall(_HEADER.pack(MAX_FRAME + 1, MSG_RECORD))
        with pytest.raises(ProtocolError):
            receiver.receive()
        sender.close(), receiver.close()

    def test_truncated_header_raises(self):
        raw, receiver, s, r = self.raw_pair()
        raw.sendall(b"\x00\x00")   # 2 of the 5 header bytes
        s.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            receiver.receive()
        r.close()

    def test_eof_mid_payload_raises(self):
        raw, receiver, s, r = self.raw_pair()
        raw.sendall(_HEADER.pack(100, MSG_RECORD) + b"partial")
        s.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            receiver.receive()
        r.close()

    def test_unknown_kind_rejected(self):
        raw, receiver, s, r = self.raw_pair()
        raw.sendall(_HEADER.pack(1, 99))
        with pytest.raises(ProtocolError, match="unknown"):
            receiver.receive()
        s.close(), r.close()

    def test_bad_time_sync_payload(self):
        raw, receiver, s, r = self.raw_pair()
        raw.sendall(_HEADER.pack(1 + 3, MSG_TIME_SYNC) + b"abc")
        with pytest.raises(ProtocolError, match="TIME_SYNC"):
            receiver.receive()
        s.close(), r.close()

    def test_bad_json_payload(self):
        raw, receiver, s, r = self.raw_pair()
        raw.sendall(_HEADER.pack(1 + 4, MSG_RESULT) + b"{oop")
        with pytest.raises(ProtocolError, match="JSON"):
            receiver.receive()
        s.close(), r.close()

    def test_bad_hello_payload(self):
        raw, receiver, s, r = self.raw_pair()
        raw.sendall(_HEADER.pack(1 + 2, MSG_HELLO) + b"xy")
        with pytest.raises(ProtocolError, match="HELLO"):
            receiver.receive()
        s.close(), r.close()

    def test_clean_eof_still_returns_none(self):
        sender, receiver = connected_pair()
        sender.send_end()
        sender.close()
        assert receiver.receive() == (MSG_END, None)
        assert receiver.receive() is None   # frame-boundary EOF: orderly
        receiver.close()


class TestSchemaValidation:
    """ISSUE satellite: RESULT/METRICS JSON from a peer is checked
    against the shard/metrics schemas before it reaches the controller
    merge loop; every malformation is a ProtocolError at the boundary."""

    def good_result(self):
        return {"name": "querier-1",
                "sent": [{"index": 0, "source": "10.0.0.1",
                          "trace_time": 0.0, "scheduled_at": 1.0,
                          "sent_at": 1.001, "protocol": "udp",
                          "qname": "a.example.com.",
                          "answered_at": 1.02, "querier_id": 1}],
                "counters": {"deadline_shed": 4}}

    def good_metrics(self):
        from repro.telemetry import MetricsRegistry
        metrics = MetricsRegistry()
        metrics.incr("replay.records_sent", 42)
        metrics.observe("query.latency_s", 0.003)
        return metrics.to_state()

    def roundtrip(self, send):
        sender, receiver = connected_pair()
        try:
            send(sender)
            return receiver.receive()
        finally:
            sender.close(), receiver.close()

    def test_valid_payloads_pass(self):
        from repro.replay.protocol import (validate_metrics_payload,
                                           validate_result_payload)
        assert validate_result_payload(self.good_result())
        assert validate_metrics_payload(self.good_metrics()) is not None
        kind, payload = self.roundtrip(
            lambda s: s.send_result(self.good_result()))
        assert kind == MSG_RESULT and payload["name"] == "querier-1"

    @pytest.mark.parametrize("mangle,match", [
        (lambda p: p.pop("sent"), "exactly one of 'sent' or 'aggregate'"),
        (lambda p: p.update(sent={}), "field 'sent' has type dict"),
        (lambda p: p.update(extra=1), "unknown field 'extra'"),
        (lambda p: p["sent"][0].pop("qname"), r"sent\[0\] missing"),
        (lambda p: p["sent"][0].update(qname=7), "field 'qname'"),
        (lambda p: p["sent"][0].update(surprise=1), "unknown field"),
        (lambda p: p["sent"][0].update(answered_at="soon"),
         "field 'answered_at'"),
        (lambda p: p["counters"].update(bad="x"), "counter 'bad'"),
    ], ids=["no-sent", "sent-not-list", "unknown-top", "missing-qname",
            "qname-int", "unknown-sent-field", "answered-str",
            "counter-str"])
    def test_bad_result_rejected(self, mangle, match):
        payload = self.good_result()
        mangle(payload)
        with pytest.raises(ProtocolError, match=match):
            self.roundtrip(lambda s: s.send_result(payload))

    def test_result_must_be_object(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            self.roundtrip(lambda s: s.send_result([1, 2, 3]))

    @pytest.mark.parametrize("mangle,match", [
        (lambda p: p.update(surprise={}), "unknown field 'surprise'"),
        (lambda p: p["counts"].update(bad="x"), "counts entry 'bad'"),
        (lambda p: p["histograms"]["query.latency_s"].pop("count"),
         "missing field 'count'"),
        (lambda p: p["histograms"]["query.latency_s"].update(count=1.5),
         "field 'count'"),
        (lambda p: p["histograms"]["query.latency_s"]["buckets"]
         .update({"xx": 1}), "bucket 'xx'"),
        (lambda p: p["histograms"]["query.latency_s"]["buckets"]
         .update({"3": 1.5}), "bucket '3'"),
    ], ids=["unknown-section", "count-str", "histogram-missing-count",
            "count-float", "bucket-key", "bucket-value"])
    def test_bad_metrics_rejected(self, mangle, match):
        payload = self.good_metrics()
        mangle(payload)
        with pytest.raises(ProtocolError, match=match):
            self.roundtrip(lambda s: s.send_metrics(payload))

    def test_bad_hello_role_rejected(self):
        sender, receiver = connected_pair()
        sender._socket.sendall(
            _HEADER.pack(1 + 5, MSG_HELLO) + struct.pack("!BHH", 9, 0, 0))
        with pytest.raises(ProtocolError, match="HELLO role 9"):
            receiver.receive()
        sender.close(), receiver.close()

    @pytest.mark.parametrize("kind", [MSG_END, MSG_SHUTDOWN],
                             ids=["end", "shutdown"])
    def test_end_frames_must_be_empty(self, kind):
        sender, receiver = connected_pair()
        sender._socket.sendall(_HEADER.pack(1 + 1, kind) + b"x")
        with pytest.raises(ProtocolError, match="no payload"):
            receiver.receive()
        sender.close(), receiver.close()

    def test_corrupt_record_body_is_protocol_error(self):
        sender, receiver = connected_pair()
        sender._socket.sendall(_HEADER.pack(1 + 3, MSG_RECORD) + b"abc")
        with pytest.raises(ProtocolError, match="RECORD"):
            receiver.receive()
        sender.close(), receiver.close()


class TestControlSchemaValidation:
    """ISSUE 9 satellite: CHECKPOINT, RECORD_SEQ and TELEMETRY frames get
    the same boundary treatment as RESULT/METRICS — a worker (or a fault
    injector) can only deliver well-formed control payloads; everything
    else dies as a ProtocolError before it reaches recovery bookkeeping
    or the cluster aggregator."""

    def good_checkpoint(self):
        return {"worker": 3, "incarnation": 1, "seq": 7,
                "result": {"name": "querier-3", "sent": [],
                           "counters": {}},
                "final": False}

    def good_telemetry(self):
        from repro.telemetry import MetricsRegistry
        metrics = MetricsRegistry()
        metrics.incr("replay.records_sent", 5)
        return {"role": ROLE_QUERIER, "worker": 2, "incarnation": 0,
                "seq": 4, "mono": 12.5, "sync_mono": 12.0,
                "metrics": metrics.to_state(),
                "health": {"rss_kb": 20480, "queue_depth": 3},
                "spans": [[0.001, "b", 17, "query", "querier-2", None],
                          [0.004, "e", 17, "query", "querier-2",
                           {"rcode": 0}]],
                "ring": {"spans": [[0.001, "i", None, "mark",
                                    "querier-2", None]],
                         "log": [[0.0, "querier-2 inc0 up"]]},
                "final": False}

    def roundtrip(self, send):
        sender, receiver = connected_pair()
        try:
            send(sender)
            return receiver.receive()
        finally:
            sender.close(), receiver.close()

    def test_valid_checkpoint_passes(self):
        kind, payload = self.roundtrip(
            lambda s: s.send_checkpoint(3, 1, 7,
                                        self.good_checkpoint()["result"]))
        assert kind == MSG_CHECKPOINT
        assert (payload["worker"], payload["seq"]) == (3, 7)

    @pytest.mark.parametrize("mangle,match", [
        (lambda p: p.pop("result"), "missing field 'result'"),
        (lambda p: p.update(result=[]), "field 'result' has type list"),
        (lambda p: p.update(worker=True), "worker must be a non-negative"),
        (lambda p: p.update(worker=-1), "worker must be a non-negative"),
        (lambda p: p.update(incarnation=0x10000), "exceeds u16"),
        (lambda p: p.update(final="yes"), "field 'final'"),
        (lambda p: p.update(surprise=1), "unknown field 'surprise'"),
        (lambda p: p["result"].pop("sent"),
         "exactly one of 'sent' or 'aggregate'"),
    ], ids=["no-result", "result-not-dict", "worker-bool", "worker-neg",
            "incarnation-overflow", "final-str", "unknown-field",
            "nested-result-invalid"])
    def test_bad_checkpoint_rejected(self, mangle, match):
        payload = self.good_checkpoint()
        mangle(payload)
        sender, receiver = connected_pair()
        try:
            sender._send(MSG_CHECKPOINT, json.dumps(payload).encode())
            with pytest.raises(ProtocolError, match=match):
                receiver.receive()
        finally:
            sender.close(), receiver.close()

    def test_record_seq_roundtrips_index_and_record(self):
        record = make_query_record(0.25, "10.9.9.9", "seq.example.com.")
        kind, payload = self.roundtrip(
            lambda s: s.send_record_seq(41, record))
        assert kind == MSG_RECORD_SEQ
        index, got = payload
        assert index == 41 and got.src == "10.9.9.9"
        assert got.wire == record.wire

    @pytest.mark.parametrize("body", [b"", b"\x00\x00", b"\x00\x00\x00\x05"],
                             ids=["empty", "short-index", "index-no-record"])
    def test_truncated_record_seq_rejected(self, body):
        sender, receiver = connected_pair()
        sender._socket.sendall(_HEADER.pack(1 + len(body), MSG_RECORD_SEQ)
                               + body)
        with pytest.raises(ProtocolError, match="RECORD_SEQ"):
            receiver.receive()
        sender.close(), receiver.close()

    def test_corrupt_record_seq_body_rejected(self):
        body = struct.pack("!I", 9) + b"not a record"
        sender, receiver = connected_pair()
        sender._socket.sendall(_HEADER.pack(1 + len(body), MSG_RECORD_SEQ)
                               + body)
        with pytest.raises(ProtocolError, match="RECORD_SEQ"):
            receiver.receive()
        sender.close(), receiver.close()

    def test_valid_telemetry_passes(self):
        kind, payload = self.roundtrip(
            lambda s: s.send_telemetry(self.good_telemetry()))
        assert kind == MSG_TELEMETRY
        assert payload["health"]["queue_depth"] == 3
        assert len(payload["spans"]) == 2

    @pytest.mark.parametrize("mangle,match", [
        (lambda p: p.pop("mono"), "missing field 'mono'"),
        (lambda p: p.update(role=9), "bad role 9"),
        (lambda p: p.update(seq=-2), "seq must be a non-negative"),
        (lambda p: p["metrics"].update(surprise={}), "unknown field"),
        (lambda p: p["health"].update(note="hot"),
         "health entry 'note'"),
        (lambda p: p["health"].update(ok=True), "health entry 'ok'"),
        (lambda p: p["spans"].append([0.1, "x", 1, "q", "t", None]),
         "bad phase"),
        (lambda p: p["spans"].append([0.1, "b", 1, "q", "t"]),
         "6-element span event"),
        (lambda p: p["ring"].update(extra=[]), "unknown field 'extra'"),
        (lambda p: p["ring"]["log"].append(["late", 1]),
         r"ring log\[1\]"),
        (lambda p: p.update(surprise=1), "unknown field 'surprise'"),
    ], ids=["no-mono", "bad-role", "seq-neg", "metrics-invalid",
            "health-str", "health-bool", "span-phase", "span-arity",
            "ring-unknown", "ring-log-shape", "unknown-top"])
    def test_bad_telemetry_rejected(self, mangle, match):
        payload = self.good_telemetry()
        mangle(payload)
        with pytest.raises(ProtocolError, match=match):
            self.roundtrip(lambda s: s.send_telemetry(payload))

    def test_telemetry_payload_must_be_object(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            self.roundtrip(lambda s: s.send_telemetry(["nope"]))


class _MangledEchoServer:
    """Echoes each datagram with the same message id but a *different*
    question section: a stale/forged response.  A querier matching on id
    alone credits it to the in-flight query; full-key matching must not."""

    def __init__(self):
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.bind(("127.0.0.1", 0))
        self._socket.settimeout(0.2)
        self.address, self.port = self._socket.getsockname()
        self._mangled = make_query_record(
            0.0, "10.9.9.9", "forged.elsewhere.example.").wire
        self._running = False
        self._thread = None

    def __enter__(self):
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def _serve(self):
        while self._running:
            try:
                data, peer = self._socket.recvfrom(65535)
            except socket.timeout:
                continue
            except OSError:
                break
            if len(data) < 12:
                continue
            reply = bytearray(data[:2] + self._mangled[2:])
            reply[2] |= 0x80  # QR
            try:
                self._socket.sendto(bytes(reply), peer)
            except OSError:
                break

    def __exit__(self, *exc):
        self._running = False
        self._thread.join(timeout=2.0)
        self._socket.close()


class TestResponseMatching:
    def test_forged_qname_not_credited(self):
        """ISSUE bugfix: live queriers matched UDP responses on message
        id alone; a response with a colliding id but the wrong question
        was credited to the query.  Match on (id, qname, qtype)."""
        trace = fixed_interval_trace(0.05, 0.3, client_count=2,
                                     name="mangled")
        with _MangledEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=1,
                                  queriers_per_distributor=1))
            result = replay.replay(trace)
        assert len(result) == len(trace)
        # Pre-fix: answered_fraction == 1.0 (forged responses credited).
        assert result.answered_fraction() == 0.0
        assert result.unmatched_responses >= 1


class _WedgedQuerier(_LiveQuerier):
    """Never services its sockets: simulates a thread wedged in C code."""

    def run(self):
        self._wedge = threading.Event()
        self._wedge.wait(30.0)


class TestQuerierSocketReclaim:
    def test_abandoned_querier_sockets_closed(self):
        """ISSUE bugfix: a querier thread that outlives the join
        deadline used to be abandoned as a daemon with its UDP socket
        and both MessageSocket ends open (FD leak).  The controller now
        force-closes them on the way out."""
        queriers = []

        def factory(*args, **kwargs):
            querier = _WedgedQuerier(*args, **kwargs)
            queriers.append(querier)
            return querier

        trace = fixed_interval_trace(0.05, 0.2, client_count=2,
                                     name="wedged")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=1,
                                  queriers_per_distributor=1,
                                  settle_time=0.1,
                                  querier_factory=factory))
            replay.replay(trace)
        assert len(queriers) == 1
        wedged = queriers[0]
        assert wedged.is_alive()            # thread is genuinely stuck
        # Pre-fix: both fds stayed open until interpreter exit.
        assert wedged._sock.fileno() == -1
        assert wedged.inbound._socket.fileno() == -1


class TestDistributedLiveReplay:
    def test_replays_and_answers(self):
        trace = BRootWorkload(duration=1.0, mean_rate=150,
                              seed=4).generate()
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=2,
                                  queriers_per_distributor=2))
            result = replay.replay(trace)
        assert len(result) == len(trace)
        assert result.answered_fraction() > 0.9

    def test_same_source_affinity_across_tiers(self):
        trace = BRootWorkload(duration=1.0, mean_rate=150,
                              seed=5).generate()
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=3,
                                  queriers_per_distributor=2))
            result = replay.replay(trace)
        per_source = {}
        for query in result.sent:
            per_source.setdefault(query.source, set()).add(query.querier_id)
        assert all(len(ids) == 1 for ids in per_source.values())
        # And the work actually spread over multiple queriers.
        assert len({q.querier_id for q in result.sent}) > 1

    def test_timing_discipline_holds(self):
        trace = fixed_interval_trace(0.02, 1.0, name="dist-timing")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=2,
                                  queriers_per_distributor=2))
            result = replay.replay(trace)
        errors = result.send_time_errors(skip_seconds=0.1)
        assert errors
        assert max(abs(e) for e in errors) < 0.05

    def test_empty_trace(self):
        from repro.trace import Trace
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay((server.address, server.port))
            result = replay.replay(Trace())
        assert len(result) == 0
