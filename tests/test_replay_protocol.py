"""Tests for the inter-node replay protocol and distributed live replay."""

import threading

import pytest

from repro.replay import (DistributedConfig, LiveDistributedReplay,
                          LiveUdpEchoServer, MSG_END, MSG_RECORD,
                          MSG_TIME_SYNC, MessageSocket, connected_pair)
from repro.trace import BRootWorkload, fixed_interval_trace, \
    make_query_record


class TestMessageSocket:
    def test_time_sync_roundtrip(self):
        sender, receiver = connected_pair()
        sender.send_time_sync(1234.5678)
        kind, payload = receiver.receive()
        assert kind == MSG_TIME_SYNC
        assert payload == pytest.approx(1234.5678)
        sender.close(), receiver.close()

    def test_record_roundtrip(self):
        sender, receiver = connected_pair()
        record = make_query_record(7.25, "10.1.2.3", "x.example.com.",
                                   protocol="tcp", sport=4444)
        sender.send_record(record)
        kind, payload = receiver.receive()
        assert kind == MSG_RECORD
        assert payload.src == "10.1.2.3"
        assert payload.sport == 4444
        assert payload.protocol == "tcp"
        assert payload.wire == record.wire
        assert payload.timestamp == pytest.approx(7.25)
        sender.close(), receiver.close()

    def test_end_terminates_iteration(self):
        sender, receiver = connected_pair()
        sender.send_record(make_query_record(0, "10.0.0.1",
                                             "a.example.com."))
        sender.send_end()
        messages = list(receiver.messages())
        assert [kind for kind, _p in messages] == [MSG_RECORD, MSG_END]
        sender.close(), receiver.close()

    def test_eof_returns_none(self):
        sender, receiver = connected_pair()
        sender.close()
        assert receiver.receive() is None
        receiver.close()

    def test_many_records_in_order(self):
        sender, receiver = connected_pair()
        records = [make_query_record(float(i), "10.0.0.1",
                                     f"q{i}.example.com.")
                   for i in range(50)]

        def pump():
            for record in records:
                sender.send_record(record)
            sender.send_end()

        thread = threading.Thread(target=pump)
        thread.start()
        received = [payload for kind, payload in receiver.messages()
                    if kind == MSG_RECORD]
        thread.join()
        assert [r.wire for r in received] == [r.wire for r in records]
        assert receiver.messages_received == 51
        sender.close(), receiver.close()


class TestDistributedLiveReplay:
    def test_replays_and_answers(self):
        trace = BRootWorkload(duration=1.0, mean_rate=150,
                              seed=4).generate()
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=2,
                                  queriers_per_distributor=2))
            result = replay.replay(trace)
        assert len(result) == len(trace)
        assert result.answered_fraction() > 0.9

    def test_same_source_affinity_across_tiers(self):
        trace = BRootWorkload(duration=1.0, mean_rate=150,
                              seed=5).generate()
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=3,
                                  queriers_per_distributor=2))
            result = replay.replay(trace)
        per_source = {}
        for query in result.sent:
            per_source.setdefault(query.source, set()).add(query.querier_id)
        assert all(len(ids) == 1 for ids in per_source.values())
        # And the work actually spread over multiple queriers.
        assert len({q.querier_id for q in result.sent}) > 1

    def test_timing_discipline_holds(self):
        trace = fixed_interval_trace(0.02, 1.0, name="dist-timing")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                DistributedConfig(distributors=2,
                                  queriers_per_distributor=2))
            result = replay.replay(trace)
        errors = result.send_time_errors(skip_seconds=0.1)
        assert errors
        assert max(abs(e) for e in errors) < 0.05

    def test_empty_trace(self):
        from repro.trace import Trace
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay((server.address, server.port))
            result = replay.replay(Trace())
        assert len(result) == 0
