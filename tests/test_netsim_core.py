"""Tests for the discrete-event loop."""

import pytest

from repro.netsim import EventLoop, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.call_at(3.0, fired.append, "c")
        loop.call_at(1.0, fired.append, "a")
        loop.call_at(2.0, fired.append, "b")
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        loop = EventLoop()
        fired = []
        for label in "abc":
            loop.call_at(1.0, fired.append, label)
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        loop = EventLoop()
        seen = []
        loop.call_at(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]
        assert loop.now == 5.0

    def test_call_later_relative(self):
        loop = EventLoop(start_time=10.0)
        seen = []
        loop.call_later(2.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [12.5]

    def test_past_scheduling_rejected(self):
        loop = EventLoop(start_time=5.0)
        with pytest.raises(SimulationError):
            loop.call_at(1.0, lambda: None)

    def test_call_soon(self):
        loop = EventLoop(start_time=7.0)
        seen = []
        loop.call_soon(lambda: seen.append(loop.now))
        loop.run()
        assert seen == [7.0]


class TestCancellation:
    def test_cancelled_timer_skipped(self):
        loop = EventLoop()
        fired = []
        timer = loop.call_at(1.0, fired.append, "x")
        timer.cancel()
        loop.run()
        assert fired == []

    def test_pending_counts_exclude_cancelled(self):
        loop = EventLoop()
        keep = loop.call_at(1.0, lambda: None)
        cancel = loop.call_at(2.0, lambda: None)
        cancel.cancel()
        assert loop.pending_events() == 1

    def test_double_cancel_counts_once(self):
        loop = EventLoop()
        loop.call_at(1.0, lambda: None)
        timer = loop.call_at(2.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert loop.pending_events() == 1

    def test_cancel_after_fire_does_not_corrupt_accounting(self):
        loop = EventLoop()
        timer = loop.call_at(1.0, lambda: None)
        loop.run()
        timer.cancel()  # response arrived, then cleanup cancels anyway
        assert loop.pending_events() == 0
        loop.call_at(2.0, lambda: None)
        assert loop.pending_events() == 1


class TestLazyDeletion:
    def test_cancelled_timers_compacted_out_of_heap(self):
        from repro.netsim.core import COMPACTION_MIN_SIZE
        loop = EventLoop()
        total = COMPACTION_MIN_SIZE * 2
        fired = []
        timers = [loop.call_at(1.0 + i, fired.append, i)
                  for i in range(total)]
        survivors = timers[:8]
        for timer in timers[8:]:
            timer.cancel()
        # Mostly-cancelled heap must have been rebuilt, not kept around.
        assert loop.pending_events() == 8
        assert loop.heap_size() < COMPACTION_MIN_SIZE
        loop.run()
        assert fired == list(range(8))
        assert all(not t.cancelled for t in survivors)

    def test_small_heaps_not_compacted(self):
        loop = EventLoop()
        timers = [loop.call_at(1.0 + i, lambda: None) for i in range(10)]
        for timer in timers[1:]:
            timer.cancel()
        # Below the threshold the cancelled entries stay until they pop.
        assert loop.heap_size() == 10
        assert loop.pending_events() == 1


class TestCallAtMany:
    def test_matches_call_at_semantics(self):
        loop = EventLoop()
        fired = []
        loop.call_at(2.0, fired.append, "single")
        timers = loop.call_at_many([
            (3.0, fired.append, ("late",)),
            (1.0, fired.append, ("early",)),
            (2.0, fired.append, ("tied-after",)),
        ])
        assert len(timers) == 3
        assert loop.pending_events() == 4
        loop.run()
        # Equal times fire in scheduling order, across both APIs.
        assert fired == ["early", "single", "tied-after", "late"]

    def test_large_batch_heapified(self):
        loop = EventLoop()
        fired = []
        loop.call_at_many([(float(i % 7), fired.append, (i,))
                           for i in range(1000)])
        loop.run()
        # (time, scheduling order) — FIFO among equal times.
        assert fired == sorted(range(1000), key=lambda i: (i % 7, i))

    def test_past_time_rejected(self):
        loop = EventLoop(start_time=5.0)
        with pytest.raises(SimulationError):
            loop.call_at_many([(1.0, lambda: None, ())])

    def test_batch_timers_cancellable(self):
        loop = EventLoop()
        fired = []
        timers = loop.call_at_many([(1.0, fired.append, (i,))
                                    for i in range(3)])
        timers[1].cancel()
        loop.run()
        assert fired == [0, 2]


class TestEventsProcessed:
    def test_counts_fired_events_only(self):
        loop = EventLoop()
        loop.call_at(1.0, lambda: None)
        cancelled = loop.call_at(2.0, lambda: None)
        cancelled.cancel()
        loop.call_at(3.0, lambda: None)
        loop.run()
        assert loop.events_processed == 2
        loop.call_at(4.0, lambda: None)
        loop.run()
        assert loop.events_processed == 3


class TestRunControl:
    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, fired.append, 1)
        loop.call_at(5.0, fired.append, 5)
        loop.run_until(2.0)
        assert fired == [1]
        assert loop.now == 2.0
        loop.run_until(10.0)
        assert fired == [1, 5]

    def test_run_max_events(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.call_at(float(i), fired.append, i)
        processed = loop.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_run_max_time(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, fired.append, 1)
        loop.call_at(3.0, fired.append, 3)
        loop.run(max_time=2.0)
        assert fired == [1]
        assert loop.now == 2.0

    def test_events_scheduling_events(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.call_later(1.0, chain, n + 1)

        loop.call_at(0.0, chain, 0)
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.now == 3.0
