"""Tests for the discrete-event loop."""

import pytest

from repro.netsim import EventLoop, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.call_at(3.0, fired.append, "c")
        loop.call_at(1.0, fired.append, "a")
        loop.call_at(2.0, fired.append, "b")
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        loop = EventLoop()
        fired = []
        for label in "abc":
            loop.call_at(1.0, fired.append, label)
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        loop = EventLoop()
        seen = []
        loop.call_at(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]
        assert loop.now == 5.0

    def test_call_later_relative(self):
        loop = EventLoop(start_time=10.0)
        seen = []
        loop.call_later(2.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [12.5]

    def test_past_scheduling_rejected(self):
        loop = EventLoop(start_time=5.0)
        with pytest.raises(SimulationError):
            loop.call_at(1.0, lambda: None)

    def test_call_soon(self):
        loop = EventLoop(start_time=7.0)
        seen = []
        loop.call_soon(lambda: seen.append(loop.now))
        loop.run()
        assert seen == [7.0]


class TestCancellation:
    def test_cancelled_timer_skipped(self):
        loop = EventLoop()
        fired = []
        timer = loop.call_at(1.0, fired.append, "x")
        timer.cancel()
        loop.run()
        assert fired == []

    def test_pending_counts_exclude_cancelled(self):
        loop = EventLoop()
        keep = loop.call_at(1.0, lambda: None)
        cancel = loop.call_at(2.0, lambda: None)
        cancel.cancel()
        assert loop.pending_events() == 1


class TestRunControl:
    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, fired.append, 1)
        loop.call_at(5.0, fired.append, 5)
        loop.run_until(2.0)
        assert fired == [1]
        assert loop.now == 2.0
        loop.run_until(10.0)
        assert fired == [1, 5]

    def test_run_max_events(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.call_at(float(i), fired.append, i)
        processed = loop.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_run_max_time(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, fired.append, 1)
        loop.call_at(3.0, fired.append, 3)
        loop.run(max_time=2.0)
        assert fired == [1]
        assert loop.now == 2.0

    def test_events_scheduling_events(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.call_later(1.0, chain, n + 1)

        loop.call_at(0.0, chain, 0)
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.now == 3.0
