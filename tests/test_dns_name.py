"""Tests for repro.dns.name: parsing, ordering, wire format, compression."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import (CompressionContext, MAX_LABEL_LENGTH, Name,
                            NameError_, ROOT, parse_wire_name)

LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1, max_size=15)
NAMES = st.lists(LABEL, min_size=0, max_size=6).map(
    lambda labels: Name([l.encode() for l in labels]))


class TestParsing:
    def test_root_forms(self):
        assert Name.from_text(".") == ROOT
        assert Name.from_text("") == ROOT
        assert ROOT.is_root()

    def test_simple(self):
        name = Name.from_text("www.example.com.")
        assert name.labels == (b"www", b"example", b"com")

    def test_relative_treated_absolute(self):
        assert Name.from_text("example.com") == Name.from_text("example.com.")

    def test_case_preserved_in_text(self):
        assert Name.from_text("WwW.Example.COM.").to_text() == \
            "WwW.Example.COM."

    def test_decimal_escape(self):
        name = Name.from_text("a\\032b.example.")
        assert name.labels[0] == b"a b"

    def test_character_escape(self):
        name = Name.from_text("a\\.b.example.")
        assert name.labels == (b"a.b", b"example")

    def test_escape_roundtrip(self):
        original = Name((b"a.b", b"ex\x01mple"))
        assert Name.from_text(original.to_text()) == original

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            Name((b"x" * (MAX_LABEL_LENGTH + 1),))

    def test_name_too_long(self):
        with pytest.raises(NameError_):
            Name(tuple(b"abcdefgh" for _ in range(32)))

    def test_empty_interior_label_rejected(self):
        with pytest.raises(NameError_):
            Name((b"a", b"", b"b"))


class TestComparison:
    def test_case_insensitive_equality(self):
        assert Name.from_text("EXAMPLE.com.") == Name.from_text("example.COM.")

    def test_hash_consistency(self):
        a, b = Name.from_text("A.B."), Name.from_text("a.b.")
        assert hash(a) == hash(b)

    def test_canonical_order_by_reversed_labels(self):
        # RFC 4034 §6.1 example ordering
        order = [Name.from_text(t) for t in
                 (".", "example.", "a.example.", "yljkjljk.a.example.",
                  "z.a.example.", "zabc.a.example.", "z.example.")]
        assert sorted(order) == order

    def test_subdomain(self):
        child = Name.from_text("a.b.example.com.")
        assert child.is_subdomain_of(Name.from_text("example.com."))
        assert child.is_subdomain_of(ROOT)
        assert not Name.from_text("example.org.").is_subdomain_of(
            Name.from_text("example.com."))

    def test_subdomain_not_substring(self):
        # "xexample.com" must not match "example.com"
        assert not Name.from_text("xexample.com.").is_subdomain_of(
            Name.from_text("example.com."))


class TestStructure:
    def test_parent(self):
        assert Name.from_text("a.b.c.").parent() == Name.from_text("b.c.")
        with pytest.raises(NameError_):
            ROOT.parent()

    def test_ancestors_order(self):
        ancestors = list(Name.from_text("a.b.c.").ancestors())
        assert ancestors[0] == Name.from_text("a.b.c.")
        assert ancestors[-1] == ROOT
        assert len(ancestors) == 4

    def test_wildcard(self):
        wild = Name.from_text("*.example.com.")
        assert wild.is_wild()
        assert Name.from_text("host.example.com.").wildcard_sibling() == wild

    def test_split_and_derelativize(self):
        name = Name.from_text("www.example.com.")
        prefix, suffix = name.split(1)
        assert prefix.labels == (b"www",)
        assert prefix.derelativize(suffix) == name


class TestWire:
    def test_uncompressed_roundtrip(self):
        name = Name.from_text("www.example.com.")
        wire = name.to_wire()
        decoded, end = parse_wire_name(wire, 0)
        assert decoded == name
        assert end == len(wire)

    def test_root_wire(self):
        assert ROOT.to_wire() == b"\x00"

    def test_compression_pointer_emitted(self):
        context = CompressionContext()
        first = Name.from_text("www.example.com.").to_wire(context, offset=0)
        second = Name.from_text("ftp.example.com.").to_wire(
            context, offset=len(first))
        # second should be: 3:ftp + 2-byte pointer
        assert len(second) == 4 + 2
        assert second[4] & 0xC0 == 0xC0

    def test_compressed_decode(self):
        context = CompressionContext()
        buffer = bytearray()
        buffer += Name.from_text("example.com.").to_wire(context, 0)
        offset = len(buffer)
        buffer += Name.from_text("www.example.com.").to_wire(context, offset)
        decoded, _ = parse_wire_name(bytes(buffer), offset)
        assert decoded == Name.from_text("www.example.com.")

    def test_pointer_loop_rejected(self):
        # pointer to itself
        with pytest.raises(NameError_):
            parse_wire_name(b"\xc0\x00", 0)

    def test_truncated_rejected(self):
        with pytest.raises(NameError_):
            parse_wire_name(b"\x05abc", 0)

    def test_forward_pointer_rejected(self):
        with pytest.raises(NameError_):
            parse_wire_name(b"\xc0\x05\x00\x00\x00\x00", 0)


@given(NAMES)
def test_property_text_roundtrip(name):
    assert Name.from_text(name.to_text()) == name


@given(NAMES)
def test_property_wire_roundtrip(name):
    decoded, end = parse_wire_name(name.to_wire(), 0)
    assert decoded == name


@given(NAMES, NAMES)
def test_property_order_total(a, b):
    assert (a < b) or (b < a) or (a == b)


@given(NAMES, NAMES)
def test_property_subdomain_via_concat(a, b):
    try:
        joined = a.derelativize(b)
    except NameError_:
        return  # too long
    assert joined.is_subdomain_of(b)
