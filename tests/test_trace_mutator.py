"""Tests for the query mutator and its built-in mutations."""

import pytest

from repro.dns import DNS_OVER_TLS_PORT, RRType
from repro.trace import (QueryMutator, Trace, all_protocol,
                         filter_queries_only, fixed_interval_trace,
                         make_query_record, prepend_unique, retarget,
                         sample_clients, scale_time,
                         set_dnssec_fraction, set_message_id_sequence,
                         shift_time)


@pytest.fixture
def trace():
    return fixed_interval_trace(0.1, 2.0, client_count=4, name="mut")


class TestPipeline:
    def test_mutations_compose_in_order(self, trace):
        mutator = QueryMutator([all_protocol("tcp"),
                                retarget("192.0.2.99")])
        out = mutator.apply(trace)
        assert all(r.protocol == "tcp" and r.dst == "192.0.2.99"
                   for r in out)
        assert mutator.processed == len(trace)
        assert mutator.dropped == 0

    def test_drop_counted(self, trace):
        mutator = QueryMutator([lambda r: None])
        out = mutator.apply(trace)
        assert len(out) == 0
        assert mutator.dropped == len(trace)

    def test_streaming_mode(self, trace):
        mutator = QueryMutator([all_protocol("tls")])
        out = list(mutator.stream(iter(trace.records)))
        assert len(out) == len(trace)
        assert all(r.protocol == "tls" for r in out)

    def test_original_trace_untouched(self, trace):
        before = [r.protocol for r in trace]
        QueryMutator([all_protocol("tcp")]).apply(trace)
        assert [r.protocol for r in trace] == before


class TestProtocolMutation:
    def test_udp_to_tls_changes_port(self, trace):
        out = QueryMutator([all_protocol("tls")]).apply(trace)
        assert all(r.dport == DNS_OVER_TLS_PORT for r in out)

    def test_tls_back_to_udp_restores_port(self, trace):
        out = QueryMutator([all_protocol("tls"),
                            all_protocol("udp")]).apply(trace)
        assert all(r.dport == 53 for r in out)

    def test_payload_untouched(self, trace):
        out = QueryMutator([all_protocol("tcp")]).apply(trace)
        assert out[0].wire == trace[0].wire


class TestDnssecMutation:
    def test_full_fraction_sets_do_everywhere(self, trace):
        out = QueryMutator([set_dnssec_fraction(1.0)]).apply(trace)
        assert all(r.message().dnssec_ok for r in out)

    def test_zero_fraction_clears_do(self, trace):
        out = QueryMutator([set_dnssec_fraction(1.0),
                            set_dnssec_fraction(0.0)]).apply(trace)
        assert not any(r.message().dnssec_ok for r in out)

    def test_selection_is_per_client(self, trace):
        out = QueryMutator([set_dnssec_fraction(0.5)]).apply(trace)
        by_client = {}
        for record in out:
            by_client.setdefault(record.src, set()).add(
                record.message().dnssec_ok)
        # Every client is consistently DO or consistently not.
        assert all(len(values) == 1 for values in by_client.values())

    def test_deterministic(self, trace):
        a = QueryMutator([set_dnssec_fraction(0.5)]).apply(trace)
        b = QueryMutator([set_dnssec_fraction(0.5)]).apply(trace)
        assert [r.wire for r in a] == [r.wire for r in b]


class TestNameMutation:
    def test_prepend_unique_labels(self, trace):
        out = QueryMutator([prepend_unique("u")]).apply(trace)
        names = [str(r.question()[0]) for r in out]
        assert names[0].startswith("u1.")
        assert len(set(names)) == len(names)

    def test_original_suffix_kept(self, trace):
        out = QueryMutator([prepend_unique()]).apply(trace)
        original = str(trace[3].question()[0])
        mutated = str(out[3].question()[0])
        assert mutated.endswith(original)


class TestTimeMutations:
    def test_scale_time_halves_rate(self, trace):
        out = QueryMutator([scale_time(2.0)]).apply(trace)
        original_span = trace[-1].timestamp - trace[0].timestamp
        scaled_span = out[-1].timestamp - out[0].timestamp
        assert scaled_span == pytest.approx(2.0 * original_span)

    def test_scale_keeps_first_timestamp(self, trace):
        out = QueryMutator([scale_time(3.0)]).apply(trace)
        assert out[0].timestamp == trace[0].timestamp

    def test_shift(self, trace):
        out = QueryMutator([shift_time(100.0)]).apply(trace)
        assert out[0].timestamp == trace[0].timestamp + 100.0


class TestSampling:
    def test_sample_keeps_whole_clients(self):
        records = []
        for i in range(200):
            records.append(make_query_record(
                float(i), f"10.0.{i % 20}.1", f"q{i}.example.com."))
        trace = Trace(records)
        out = QueryMutator([sample_clients(0.5)]).apply(trace)
        kept_clients = {r.src for r in out}
        for client in kept_clients:
            original = sum(1 for r in trace if r.src == client)
            sampled = sum(1 for r in out if r.src == client)
            assert original == sampled  # all of a kept client's queries

    def test_sample_fraction_reasonable(self):
        records = [make_query_record(0.0, f"10.{i // 256}.{i % 256}.1",
                                     "q.example.com.")
                   for i in range(2000)]
        out = QueryMutator([sample_clients(0.3)]).apply(Trace(records))
        assert 0.2 < len(out) / 2000 < 0.4

    def test_salt_changes_selection(self):
        records = [make_query_record(0.0, f"10.0.{i}.1", "q.example.com.")
                   for i in range(100)]
        a = QueryMutator([sample_clients(0.5, salt="a")]).apply(
            Trace(records))
        b = QueryMutator([sample_clients(0.5, salt="b")]).apply(
            Trace(records))
        assert {r.src for r in a} != {r.src for r in b}


class TestOtherMutations:
    def test_filter_queries_only(self):
        query = make_query_record(0, "10.0.0.1", "q.example.com.")
        message = query.message()
        message.set_flag(message.flags.__class__.QR)
        response = query.with_(wire=message.to_wire())
        out = QueryMutator([filter_queries_only()]).apply(
            Trace([query, response]))
        assert len(out) == 1

    def test_message_id_sequence(self, trace):
        out = QueryMutator([set_message_id_sequence(100)]).apply(trace)
        ids = [r.message().msg_id for r in out]
        assert ids[:3] == [100, 101, 102]
