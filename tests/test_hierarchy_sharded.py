"""Tests for the sharded meta-server extension (paper §2.2/§3)."""

import pytest

from repro.dns import DNS_PORT, Message, Name, RRType, Rcode
from repro.hierarchy import (HierarchyEmulation, ShardedHierarchyEmulation,
                             address_to_zones)
from repro.netsim import EventLoop, Network
from repro.proxy import PartitioningRecursiveProxy
from repro.netsim import make_udp_packet
from repro.trace import make_hierarchy_zones

QUESTIONS = [
    (f"host{h}.domain00{d}.{tld}.", RRType.A)
    for tld in ("com", "net") for d in range(3) for h in range(2)
]


def resolve_all(emulation, network, loop):
    stub = network.add_host("stub", "10.77.0.1")
    results = {}

    def callback_for(key):
        def callback(_s, wire, _a, _p):
            message = Message.from_wire(wire)
            results[key] = (message.rcode.name, tuple(sorted(
                rr.to_text() for rr in message.answer)))
        return callback

    for index, (qname, qtype) in enumerate(QUESTIONS):
        sock = stub.bind_udp("10.77.0.1", 0,
                             callback_for((qname, qtype)))
        sock.sendto(Message.make_query(Name.from_text(qname), qtype,
                                       msg_id=index + 1).to_wire(),
                    emulation.recursive_address, DNS_PORT)
    loop.run(max_time=90)
    return results


@pytest.fixture(scope="module")
def zones():
    return make_hierarchy_zones(3, 4)


class TestPartitioningProxy:
    def test_routes_by_forwarding_table(self, zones):
        loop = EventLoop()
        network = Network(loop)
        host = network.add_host("rec", "10.70.0.1")
        shard_a = network.add_host("shard-a", "10.70.0.2")
        shard_b = network.add_host("shard-b", "10.70.0.3")
        got_a, got_b = [], []
        shard_a.bind_udp("10.70.0.2", 53, lambda s, d, a, p: got_a.append(a))
        shard_b.bind_udp("10.70.0.3", 53, lambda s, d, a, p: got_b.append(a))
        tun = host.create_tun()
        proxy = PartitioningRecursiveProxy(
            tun, {"198.41.0.4": "10.70.0.2", "192.5.6.30": "10.70.0.3"},
            processing_delay=0.0)
        tun.push(make_udp_packet("10.70.0.1", 4000, "198.41.0.4", 53,
                                 b"to-root"))
        tun.push(make_udp_packet("10.70.0.1", 4001, "192.5.6.30", 53,
                                 b"to-com"))
        loop.run(max_time=1)
        assert got_a == ["198.41.0.4"]
        assert got_b == ["192.5.6.30"]

    def test_unroutable_counted(self, zones):
        loop = EventLoop()
        network = Network(loop)
        host = network.add_host("rec", "10.70.0.1")
        tun = host.create_tun()
        proxy = PartitioningRecursiveProxy(tun, {}, processing_delay=0.0)
        tun.push(make_udp_packet("10.70.0.1", 4000, "203.0.113.1", 53,
                                 b"nowhere"))
        loop.run(max_time=1)
        assert proxy.unroutable == 1
        assert proxy.stats.packets_rewritten == 0

    def test_default_target(self, zones):
        loop = EventLoop()
        network = Network(loop)
        host = network.add_host("rec", "10.70.0.1")
        target = network.add_host("default", "10.70.0.9")
        got = []
        target.bind_udp("10.70.0.9", 53, lambda s, d, a, p: got.append(a))
        tun = host.create_tun()
        PartitioningRecursiveProxy(tun, {}, default="10.70.0.9",
                                   processing_delay=0.0)
        tun.push(make_udp_packet("10.70.0.1", 4000, "203.0.113.1", 53, b"x"))
        loop.run(max_time=1)
        assert got == ["203.0.113.1"]


class TestShardedEmulation:
    def test_equivalent_to_single_meta(self, zones):
        loop_a = EventLoop()
        network_a = Network(loop_a)
        single = HierarchyEmulation(network_a, zones)
        truth = resolve_all(single, network_a, loop_a)

        loop_b = EventLoop()
        network_b = Network(loop_b)
        sharded = ShardedHierarchyEmulation(network_b, zones, shards=3)
        answers = resolve_all(sharded, network_b, loop_b)

        assert truth == answers
        assert all(rcode == "NOERROR" for rcode, _ in truth.values())

    def test_every_shard_serves_traffic(self, zones):
        loop = EventLoop()
        network = Network(loop)
        sharded = ShardedHierarchyEmulation(network, zones, shards=3)
        resolve_all(sharded, network, loop)
        assert all(count > 0 for count in sharded.queries_per_shard())

    def test_forwarding_covers_every_address(self, zones):
        loop = EventLoop()
        network = Network(loop)
        sharded = ShardedHierarchyEmulation(network, zones, shards=2)
        assert set(sharded.forwarding) == set(address_to_zones(zones))
        assert set(sharded.forwarding.values()) == \
            set(sharded.shard_addresses)

    def test_single_shard_degenerates_gracefully(self, zones):
        loop = EventLoop()
        network = Network(loop)
        sharded = ShardedHierarchyEmulation(network, zones, shards=1)
        answers = resolve_all(sharded, network, loop)
        assert all(rcode == "NOERROR" for rcode, _ in answers.values())

    def test_zero_shards_rejected(self, zones):
        with pytest.raises(ValueError):
            ShardedHierarchyEmulation(Network(EventLoop()), zones, shards=0)

    def test_no_unroutable_leaks(self, zones):
        loop = EventLoop()
        network = Network(loop)
        sharded = ShardedHierarchyEmulation(network, zones, shards=2)
        resolve_all(sharded, network, loop)
        assert sharded.recursive_proxy.unroutable == 0
