"""Differential tests for the sharded simulation core.

Two properties the shard architecture promises (netsim/shard.py):

* **Partition invariance** — replaying a trace through 1, 2, or 4
  shards (and any shard execution order) yields identical merged
  results: the same per-query facts and byte-identical response wires.
* **Exactness at the barrier** — with ``epoch <= `` the cross-shard
  one-way latency, the epoch-lockstep coordinator delivers every
  cross-shard packet at exactly the time a single-loop simulation
  would, for every shard count and execution order.

Plus the zero-copy aliasing guard: serving wire-cache hits as
:class:`WireView` slices must never mutate the shared cached buffer,
no matter how many message IDs are patched over it.
"""

import itertools

import pytest

from repro.dns import Edns, Message, Name, RRType
from repro.experiments.fig6_timing import wildcard_example_zone
from repro.netsim.shard import (CrossShardFabric, ShardCoordinator,
                                ShardPlan, shard_of)
from repro.replay import ReplayConfig, SimReplayEngine, shard_slice
from repro.replay.multiproc import default_shard_scenario
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.trace import table1_synthetic

SERVER = "10.0.0.2"


# ---------------------------------------------------------------------------
# shard_slice partitioning
# ---------------------------------------------------------------------------

class TestShardSlice:
    def test_slices_partition_the_trace(self):
        trace = table1_synthetic("syn-1", duration=30.0, server=SERVER)
        for num_shards in (1, 2, 4):
            slices = [shard_slice(trace, index, num_shards)
                      for index in range(num_shards)]
            assert sum(len(s.records) for s in slices) == len(trace.records)
            seen = [record for s in slices for record in s.records]
            assert sorted(id(r) for r in seen) \
                == sorted(id(r) for r in trace.records)

    def test_sticky_by_source(self):
        trace = table1_synthetic("syn-1", duration=30.0, server=SERVER)
        for num_shards in (2, 4):
            owner = {}
            for index in range(num_shards):
                for record in shard_slice(trace, index, num_shards).records:
                    assert owner.setdefault(record.src, index) == index

    def test_shard_of_is_stable_and_bounded(self):
        for n in (1, 2, 4, 7):
            for address in ("10.1.2.3", "192.0.2.77", "10.128.0.42"):
                first = shard_of(address, n)
                assert 0 <= first < n
                assert shard_of(address, n) == first


# ---------------------------------------------------------------------------
# Replicated-server shape: slices through per-shard engines
# ---------------------------------------------------------------------------

def _replay_sliced(num_shards, order):
    """Replay syn-1 sliced ``num_shards`` ways, engines run in ``order``.

    Returns partition-invariant facts: per-query rows aligned to trace
    time (absolute clocks differ per slice, trace-relative ones cannot)
    and the multiset of response wires each server replica emitted.
    """
    trace = table1_synthetic("syn-1", duration=30.0, server=SERVER)
    rows = []
    wires = []
    for index in order:
        engine = default_shard_scenario(batch_window=2.5e-4)
        engine.network.host("server").capture_hooks.append(
            lambda direction, packet, sink=wires:
            sink.append(bytes(packet.segment.data))
            if direction == "out" and packet.protocol == "udp" else None)
        result = engine.replay(shard_slice(trace, index, num_shards))
        for query in result.sent:
            latency = (query.answered_at - query.sent_at
                       if query.answered_at is not None else None)
            rows.append((query.qname, query.source, query.trace_time,
                         round(latency, 12), query.retries, query.timeouts))
    return sorted(rows), sorted(wires)


class TestReplicatedShardDifferential:
    @pytest.fixture(scope="class")
    def single_shard(self):
        return _replay_sliced(1, [0])

    @pytest.mark.parametrize("num_shards,order", [
        (2, [0, 1]), (2, [1, 0]),
        (4, [0, 1, 2, 3]), (4, [3, 1, 0, 2]),
    ], ids=["2-forward", "2-reversed", "4-forward", "4-permuted"])
    def test_merged_results_match_single_shard(self, single_shard,
                                               num_shards, order):
        rows, wires = _replay_sliced(num_shards, order)
        base_rows, base_wires = single_shard
        assert rows == base_rows
        # Byte-identical responses: same wires regardless of which
        # replica served them or in which order the shards ran.
        assert wires == base_wires
        assert len(wires) == len(base_rows)


# ---------------------------------------------------------------------------
# Shared-server shape: the epoch-lockstep coordinator
# ---------------------------------------------------------------------------

CLIENTS = ["10.200.0.1", "10.200.0.2", "10.200.0.3", "10.200.0.4",
           "10.200.0.5"]
QUERIES_PER_CLIENT = 6


def _run_coordinator(num_shards, order=None, epoch=0.0004):
    """Clients spread over shards querying one server in shard 0.

    Returns per-client (response bytes, receive time) rows plus the
    fabric counters.
    """
    plan = ShardPlan(num_shards, epoch=epoch)
    coordinator = ShardCoordinator(plan)
    server_host = coordinator.shards[0].network.add_host("server", SERVER)
    HostedDnsServer(server_host,
                    AuthoritativeServer.single_view(
                        [wildcard_example_zone()]))
    received = {}
    for client_index, address in enumerate(CLIENTS):
        shard = coordinator.shards[plan.shard_of(address)]
        host = shard.network.add_host(f"client-{client_index}", address)
        rows = received.setdefault(address, [])
        sock = host.bind_udp(
            address, 0,
            lambda _sock, data, _src, _sport, rows=rows, loop=shard.loop:
            rows.append((bytes(data), loop.now)))
        for query_index in range(QUERIES_PER_CLIENT):
            wire = Message.make_query(
                Name.from_text(f"c{client_index}-q{query_index}"
                               ".example.com."),
                RRType.A, msg_id=client_index * 64 + query_index + 1,
                edns=Edns()).to_wire()
            shard.loop.call_at(
                0.0011 + query_index * 0.00073 + client_index * 0.00029,
                sock.sendto, wire, SERVER, 53)
    coordinator.run_until(0.25, order=order)
    return received, coordinator


class TestCoordinatorDifferential:
    @pytest.fixture(scope="class")
    def single_loop(self):
        received, _coordinator = _run_coordinator(1)
        return received

    @pytest.mark.parametrize("num_shards,order", [
        (2, None), (2, [1, 0]),
        (4, None), (4, [2, 0, 3, 1]), (4, [3, 2, 1, 0]),
    ], ids=["2", "2-reversed", "4", "4-permuted", "4-reversed"])
    def test_cross_shard_matches_single_loop(self, single_loop,
                                             num_shards, order):
        received, coordinator = _run_coordinator(num_shards, order=order)
        # Every client hears the same bytes at the same simulated times
        # as in the unsharded run — exactness, not just equivalence.
        assert received == single_loop
        assert coordinator.fabric.clamped == 0
        if any(shard_of(address, num_shards) != 0 for address in CLIENTS):
            assert coordinator.fabric.handed_off > 0

    def test_all_answered(self, single_loop):
        total = sum(len(rows) for rows in single_loop.values())
        assert total == len(CLIENTS) * QUERIES_PER_CLIENT

    def test_order_must_be_a_permutation(self):
        plan = ShardPlan(2)
        coordinator = ShardCoordinator(plan)
        with pytest.raises(ValueError):
            coordinator.run_until(0.01, order=[0, 0])

    def test_oversized_epoch_clamps_and_counts(self):
        # An epoch larger than the link latency cannot be exact: early
        # deliveries are clamped to the barrier and counted, never
        # silently reordered or dropped.
        received, coordinator = _run_coordinator(4, epoch=0.01)
        total = sum(len(rows) for rows in received.values())
        assert total == len(CLIENTS) * QUERIES_PER_CLIENT
        assert coordinator.fabric.clamped > 0


# ---------------------------------------------------------------------------
# Zero-copy aliasing guard
# ---------------------------------------------------------------------------

class TestZeroCopyAliasing:
    def _server(self):
        server = AuthoritativeServer.single_view([wildcard_example_zone()])
        return server

    def _query_wire(self, msg_id):
        return Message.make_query(Name.from_text("alias.example.com."),
                                  RRType.A, msg_id=msg_id,
                                  edns=Edns()).to_wire()

    def test_two_hits_patch_ids_without_touching_the_cache(self):
        server = self._server()
        # Populate the cache through the slow path.
        first = server.serve_wire(Message.from_wire(self._query_wire(0x1111)))
        assert server.serve_wire_fast(self._query_wire(0x2222)) is not None
        (entry,) = server.wire_cache._entries.values()
        snapshot = bytes(entry.wire)

        view_a = server.serve_wire_fast(self._query_wire(0xAAAA))
        view_b = server.serve_wire_fast(self._query_wire(0xBBBB))
        assert view_a is not None and view_b is not None
        # Different patched IDs, shared body over one cached buffer.
        assert bytes(view_a)[:2] == b"\xaa\xaa"
        assert bytes(view_b)[:2] == b"\xbb\xbb"
        assert bytes(view_a)[2:] == bytes(view_b)[2:] == snapshot[2:]
        assert view_a.body.obj is entry.wire
        assert view_b.body.obj is entry.wire
        # The aliasing guard itself: the cached entry never moved.
        assert bytes(entry.wire) == snapshot
        assert entry.body_view.readonly
        # And the fast path answers exactly what the slow path would,
        # message ID aside.
        assert bytes(view_a)[2:] == first[2:]

    def test_fast_path_equals_slow_path_bytes(self):
        fast_server = self._server()
        slow_server = self._server()
        for msg_id in (0x0101, 0x0202, 0x0303):
            wire = self._query_wire(msg_id)
            slow = slow_server.serve_wire(Message.from_wire(wire))
            fast = fast_server.serve_wire_fast(wire)
            if fast is None:      # first call populates the cache
                fast = fast_server.serve_wire(Message.from_wire(wire))
            assert bytes(fast) == bytes(slow)
