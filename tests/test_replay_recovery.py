"""Tests for failure recovery in the replay pipeline.

UDP timeout/retry/backoff/TCP-fallback, stream reconnection,
(id, qname, qtype) response matching, duplicate accounting, and
crashed-querier failover in the distribution tree.
"""

import pytest

from repro.dns import DNS_PORT, Message, Name, RRType, read_zone
from repro.netsim import (EventLoop, FaultInjector, FaultPlan, Network,
                          RetryPolicy)
from repro.replay import (QuerierConfig, ReplayConfig, SimQuerier,
                          SimReplayEngine)
from repro.replay.result import ReplayResult
from repro.server import AuthoritativeServer, HostedDnsServer, \
    TransportConfig
from repro.trace import QueryRecord, Trace

pytestmark = pytest.mark.faults

ZONE = """
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 10.66.0.2
www 300 IN A 192.0.2.80
api 300 IN A 192.0.2.81
"""

SERVER = "10.66.0.2"
CLIENT = "10.66.0.1"


def make_record(timestamp=0.0, qname="www.example.com.", msg_id=1,
                protocol="udp", src="198.51.100.1"):
    wire = Message.make_query(Name.from_text(qname), RRType.A,
                              msg_id=msg_id).to_wire()
    return QueryRecord(timestamp=timestamp, src=src, sport=5000,
                       dst=SERVER, dport=DNS_PORT, protocol=protocol,
                       wire=wire)


def deploy(retry=None, tls=False):
    loop = EventLoop()
    network = Network(loop)
    server_host = network.add_host("server", SERVER)
    client_host = network.add_host("client", CLIENT)
    network.latency.set_rtt("server", "client", 0.02)
    zone = read_zone(ZONE, origin=Name.from_text("example.com."))
    server = HostedDnsServer(
        server_host, AuthoritativeServer.single_view([zone]),
        config=TransportConfig(udp=True, tcp=True, tls=tls))
    result = ReplayResult()
    querier = SimQuerier(0, client_host, result,
                         QuerierConfig(retry=retry))
    return loop, network, server, querier, result


class TestUdpRetry:
    def test_lost_query_retried_and_answered(self):
        retry = RetryPolicy(udp_timeout=0.5, max_retries=3)
        loop, network, server, querier, result = deploy(retry)
        # Drop everything for the first 0.3 s: the original send dies,
        # the 0.5 s retry goes through.
        FaultInjector(network, FaultPlan().loss_burst(0.0, 0.3, 1.0))
        loop.call_at(0.01, querier.send, 0, make_record(), 0.01)
        loop.run_until(5.0)
        entry = result.sent[0]
        assert entry.answered_at is not None
        assert entry.retries == 1
        assert entry.timeouts == 1
        assert result.udp_timeouts == 1
        assert result.retries == 1
        assert result.unanswered() == 0

    def test_gives_up_after_budget(self):
        retry = RetryPolicy(udp_timeout=0.2, backoff=2.0, max_retries=2)
        loop, network, server, querier, result = deploy(retry)
        FaultInjector(network, FaultPlan().loss_burst(0.0, 100.0, 1.0))
        loop.call_at(0.01, querier.send, 0, make_record(), 0.01)
        loop.run_until(30.0)
        entry = result.sent[0]
        assert entry.answered_at is None
        assert entry.gave_up
        assert entry.retries == 2
        assert result.gave_up == 1
        assert result.unanswered() == 1
        # Timeouts: initial try + 2 retries all timed out.
        assert result.udp_timeouts == 3

    def test_no_policy_means_no_retry(self):
        loop, network, server, querier, result = deploy(retry=None)
        FaultInjector(network, FaultPlan().loss_burst(0.0, 100.0, 1.0))
        loop.call_at(0.01, querier.send, 0, make_record(), 0.01)
        loop.run_until(10.0)
        assert result.udp_timeouts == 0
        assert result.retries == 0
        assert result.unanswered() == 1

    def test_tcp_fallback_after_timeouts(self):
        retry = RetryPolicy(udp_timeout=0.2, max_retries=5,
                            tcp_fallback_after=2)
        loop, network, server, querier, result = deploy(retry)
        # Total loss until 0.55 s: the original UDP send and its first
        # retry both die; the second timeout triggers the TCP fallback
        # at ~0.61 s, after the window, and that query completes.
        FaultInjector(network,
                      FaultPlan().loss_burst(0.0, 0.55, 1.0,
                                             src="client", dst="server"))
        loop.call_at(0.01, querier.send, 0, make_record(), 0.01)
        loop.run_until(10.0)
        entry = result.sent[0]
        assert entry.tcp_fallback
        assert entry.answered_at is not None
        assert result.tcp_fallbacks == 1
        assert result.unanswered() == 0

    def test_duplicate_responses_counted(self):
        loop, network, server, querier, result = deploy()
        FaultInjector(network, FaultPlan().duplication(0.0, 10.0, 1.0))
        loop.call_at(0.01, querier.send, 0, make_record(), 0.01)
        loop.run_until(5.0)
        assert result.sent[0].answered_at is not None
        assert result.duplicate_responses >= 1
        assert result.unmatched_responses == 0


class TestStreamMatching:
    def test_same_id_different_qname_matched_correctly(self):
        # Two in-flight TCP queries share msg_id 7 on one connection;
        # matching by id alone would answer them in arrival order.
        loop, network, server, querier, result = deploy()
        first = make_record(qname="www.example.com.", msg_id=7,
                            protocol="tcp")
        second = make_record(qname="api.example.com.", msg_id=7,
                             protocol="tcp")
        loop.call_at(0.01, querier.send, 0, first, 0.01)
        loop.call_at(0.011, querier.send, 1, second, 0.011)
        loop.run_until(5.0)
        assert result.unanswered() == 0
        assert result.unmatched_responses == 0
        channel = querier._channels[("198.51.100.1", "tcp")]
        assert not channel.pending

    def test_reconnect_resends_in_flight_queries(self):
        # Query 1 completes on a TCP channel; the server then crashes
        # and restarts.  Query 2 goes out on the stale connection, the
        # restarted stack answers with RST, and the channel reconnects
        # and re-sends it.
        retry = RetryPolicy(udp_timeout=0.5, max_retries=3)
        loop, network, server, querier, result = deploy(retry)
        FaultInjector(network,
                      FaultPlan().server_outage(1.0, 1.0, host="server"))
        loop.call_at(0.5, querier.send, 0, make_record(protocol="tcp"),
                     0.5)
        loop.call_at(2.5, querier.send, 1,
                     make_record(qname="api.example.com.", msg_id=2,
                                 protocol="tcp"), 2.5)
        loop.run_until(20.0)
        assert result.reconnects == 1
        assert result.retries >= 1
        assert all(q.answered_at is not None for q in result.sent)
        assert result.unanswered() == 0

    def test_no_policy_stranded_queries_stay_stranded(self):
        loop, network, server, querier, result = deploy(retry=None)
        FaultInjector(network,
                      FaultPlan().server_outage(1.0, 1.0, host="server"))
        loop.call_at(0.5, querier.send, 0, make_record(protocol="tcp"),
                     0.5)
        loop.call_at(2.5, querier.send, 1,
                     make_record(qname="api.example.com.", msg_id=2,
                                 protocol="tcp"), 2.5)
        loop.run_until(20.0)
        assert result.reconnects == 0
        assert result.unanswered() == 1


class TestEngineFailover:
    def replay_with_outage(self, crash_instance=True):
        loop = EventLoop()
        network = Network(loop)
        server_host = network.add_host("server", SERVER)
        zone = read_zone(ZONE, origin=Name.from_text("example.com."))
        HostedDnsServer(server_host,
                        AuthoritativeServer.single_view([zone]))
        retry = RetryPolicy(udp_timeout=0.5, max_retries=4)
        engine = SimReplayEngine(
            network,
            ReplayConfig(client_instances=2, queriers_per_instance=2,
                         querier=QuerierConfig(retry=retry)))
        # Crash the first client instance for the middle of the run.
        plan = FaultPlan()
        if crash_instance:
            plan.server_outage(2.0, 100.0, host="client-1")
        FaultInjector(network, plan)
        records = [make_record(timestamp=i * 0.1,
                               src=f"198.51.100.{i % 8 + 1}", msg_id=i + 1)
                   for i in range(80)]
        trace = Trace(records, name="failover")
        result = engine.replay(trace, extra_time=20.0)
        return result

    def test_queries_reassigned_off_crashed_instance(self):
        result = self.replay_with_outage()
        assert result.reassigned_queries > 0
        # Everything routed to live queriers is answered; queries the
        # crashed host sent just before dying are retried... but the
        # host is down for the rest of the run, so they are lost with
        # its sockets.  Reassigned ones all complete.
        reassigned_ok = [q for q in result.sent
                         if q.answered_at is not None]
        assert len(reassigned_ok) >= result.reassigned_queries

    def test_no_crash_no_reassignment(self):
        result = self.replay_with_outage(crash_instance=False)
        assert result.reassigned_queries == 0
        assert result.unanswered() == 0
