"""Tests for the master-file parser and serializer."""

import pytest
from hypothesis import given, strategies as st

from repro.dns import (Name, RRType, ZoneError, ZoneFileError, parse_ttl,
                       read_zone, write_zone)
from repro.dns import rdata as rd


class TestDirectives:
    def test_origin_directive(self):
        zone = read_zone("""
$ORIGIN test.example.
@ 60 IN SOA ns1 admin 1 2 3 4 5
@ 60 IN NS ns1
ns1 60 IN A 192.0.2.1
""")
        assert zone.origin == Name.from_text("test.example.")

    def test_ttl_directive(self):
        zone = read_zone("""
$ORIGIN t.
$TTL 1h
@ IN SOA ns1 admin 1 2 3 4 5
@ IN NS ns1
ns1 IN A 192.0.2.1
""")
        assert zone.get(Name.from_text("ns1.t."), RRType.A).ttl == 3600

    def test_unknown_directive_rejected(self):
        with pytest.raises(ZoneFileError):
            read_zone("$GENERATE 1-10 x A 1.2.3.4\n",
                      origin=Name.from_text("t."))


class TestSyntax:
    def test_parentheses_continuation(self):
        zone = read_zone("""
$ORIGIN t.
@ 60 IN SOA ns1 admin (
        1      ; serial
        7200   ; refresh
        900 1209600 86400 )
@ 60 IN NS ns1
ns1 60 IN A 192.0.2.1
""")
        assert zone.soa.rdatas[0].serial == 1

    def test_comments_stripped(self):
        zone = read_zone("""
$ORIGIN t. ; this is the origin
@ 60 IN SOA ns1 admin 1 2 3 4 5 ; soa comment
@ 60 IN NS ns1
ns1 60 IN A 192.0.2.1 ; address
""")
        assert zone.record_count() == 3

    def test_owner_inheritance(self):
        zone = read_zone("""
$ORIGIN t.
@ 60 IN SOA ns1 admin 1 2 3 4 5
@ 60 IN NS ns1
ns1 60 IN A 192.0.2.1
   60 IN A 192.0.2.2
""")
        assert len(zone.get(Name.from_text("ns1.t."), RRType.A)) == 2

    def test_quoted_txt_with_spaces(self):
        zone = read_zone("""
$ORIGIN t.
@ 60 IN SOA ns1 admin 1 2 3 4 5
@ 60 IN NS ns1
ns1 60 IN A 192.0.2.1
txt 60 IN TXT "hello world" "second part"
""")
        rrset = zone.get(Name.from_text("txt.t."), RRType.TXT)
        assert rrset.rdatas[0].strings == (b"hello world", b"second part")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(ZoneFileError):
            read_zone('x 60 IN TXT "oops\n', origin=Name.from_text("t."))

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ZoneFileError):
            read_zone("x 60 IN SOA a b ( 1 2 3 4 5\n",
                      origin=Name.from_text("t."))

    def test_missing_type_rejected(self):
        with pytest.raises(ZoneFileError):
            read_zone("x 60 IN\n", origin=Name.from_text("t."))

    def test_relative_names_resolved(self):
        zone = read_zone("""
$ORIGIN example.com.
@ 60 IN SOA ns1 admin 1 2 3 4 5
@ 60 IN NS ns1
@ 60 IN MX 10 mail
ns1 60 IN A 192.0.2.1
""")
        mx = zone.get(zone.origin, RRType.MX).rdatas[0]
        assert mx.exchange == Name.from_text("mail.example.com.")

    def test_absolute_names_untouched(self):
        zone = read_zone("""
$ORIGIN example.com.
@ 60 IN SOA ns1 admin 1 2 3 4 5
@ 60 IN NS ns.other.net.
ns1 60 IN A 192.0.2.1
""")
        ns = zone.get(zone.origin, RRType.NS).rdatas[0]
        assert ns.target == Name.from_text("ns.other.net.")

    def test_class_and_ttl_order_flexible(self):
        zone = read_zone("""
$ORIGIN t.
@ IN 60 SOA ns1 admin 1 2 3 4 5
@ IN 60 NS ns1
ns1 IN 60 A 192.0.2.1
""")
        assert zone.get(Name.from_text("ns1.t."), RRType.A).ttl == 60

    def test_empty_zone_rejected(self):
        with pytest.raises(ZoneError):
            read_zone("; nothing here\n", origin=Name.from_text("t."))


class TestTtlParsing:
    @pytest.mark.parametrize("text,expected", [
        ("300", 300), ("1h", 3600), ("2d", 172800), ("1w", 604800),
        ("1h30m", 5400), ("90s", 90), ("1d12h", 129600),
    ])
    def test_units(self, text, expected):
        assert parse_ttl(text) == expected

    @pytest.mark.parametrize("bad", ["", "h", "12x", "1h30"])
    def test_bad_ttl(self, bad):
        with pytest.raises(ValueError):
            parse_ttl(bad)


class TestRoundTrip:
    def test_write_then_read(self):
        zone = read_zone("""
$ORIGIN rt.example.
@ 3600 IN SOA ns1 admin 7 7200 900 1209600 86400
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.1
www 300 IN A 192.0.2.80
txt 60 IN TXT "with spaces"
mx 60 IN MX 5 www
srv 60 IN SRV 0 5 443 www
""")
        text = write_zone(zone)
        again = read_zone(text)
        assert again.record_count() == zone.record_count()
        assert write_zone(again) == text

    def test_soa_written_first(self):
        zone = read_zone("""
$ORIGIN rt.
zzz 60 IN A 192.0.2.1
@ 60 IN SOA ns admin 1 2 3 4 5
@ 60 IN NS zzz
""", origin=Name.from_text("rt."))
        lines = write_zone(zone).splitlines()
        assert "SOA" in lines[1]


@given(st.integers(min_value=0, max_value=10**7))
def test_property_numeric_ttl_roundtrip(value):
    assert parse_ttl(str(value)) == value
