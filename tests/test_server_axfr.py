"""Tests for AXFR zone transfer (RFC 5936)."""

import pytest

from repro.dns import Message, Name, RRType, Rcode, read_zone
from repro.netsim import EventLoop, Network
from repro.server import (AXFR, AuthoritativeServer, AxfrError,
                          HostedDnsServer, View, ZoneSet, axfr_fetch,
                          axfr_response_stream)


def big_zone(records=100, origin="xfer.example."):
    text = f"""
$ORIGIN {origin}
@ 3600 IN SOA ns1 h. 9 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 192.0.2.1
""" + "\n".join(f"h{i} 60 IN A 10.9.{i // 250}.{i % 250 + 1}"
                for i in range(records))
    return read_zone(text, origin=Name.from_text(origin))


class TestResponseStream:
    def test_soa_first_and_last(self):
        zone = big_zone(10)
        query = Message.make_query(zone.origin, AXFR, msg_id=1)
        messages = axfr_response_stream(zone, query)
        first = messages[0].answer[0]
        last = messages[-1].answer[-1]
        assert first.rrtype == RRType.SOA
        assert last.rrtype == RRType.SOA
        total = sum(len(m.answer) for m in messages)
        assert total == zone.record_count() + 1  # SOA appears twice

    def test_large_zone_spans_messages(self):
        zone = big_zone(150)
        query = Message.make_query(zone.origin, AXFR, msg_id=1)
        messages = axfr_response_stream(zone, query,
                                        records_per_message=40)
        assert len(messages) > 2
        assert all(m.msg_id == 1 for m in messages)

    def test_zone_without_soa_rejected(self):
        from repro.dns import Zone
        with pytest.raises(AxfrError):
            axfr_response_stream(
                Zone(Name.from_text("broken.")),
                Message.make_query(Name.from_text("broken."), AXFR))


class TestTransfer:
    def deploy(self, zone, views=None):
        loop = EventLoop()
        network = Network(loop)
        server_host = network.add_host("primary", "10.10.0.2")
        engine = (AuthoritativeServer(views) if views is not None
                  else AuthoritativeServer.single_view([zone]))
        HostedDnsServer(server_host, engine)
        client = network.add_host("secondary", "10.10.0.3")
        return loop, client

    def test_full_transfer(self):
        zone = big_zone(120)
        loop, client = self.deploy(zone)
        got = []
        axfr_fetch(client, "10.10.0.2", zone.origin, got.append)
        loop.run(max_time=10)
        assert got and got[0] is not None
        assert got[0].record_count() == zone.record_count()
        assert got[0].soa.rdatas[0].serial == 9
        got[0].validate()

    def test_transferred_zone_is_servable(self):
        zone = big_zone(30)
        loop, client = self.deploy(zone)
        got = []
        axfr_fetch(client, "10.10.0.2", zone.origin, got.append)
        loop.run(max_time=10)
        secondary = AuthoritativeServer.single_view([got[0]])
        query = Message.make_query(Name.from_text("h5.xfer.example."),
                                   RRType.A, msg_id=3)
        response = secondary.handle_query(query)
        assert response.rcode == Rcode.NOERROR
        assert response.answer

    def test_unknown_zone_refused(self):
        zone = big_zone(5)
        loop, client = self.deploy(zone)
        got = []
        axfr_fetch(client, "10.10.0.2", Name.from_text("other.example."),
                   got.append)
        loop.run(max_time=10)
        assert got == [None]

    def test_view_controls_transfer(self):
        # Only the matching view's client may transfer the zone.
        zone = big_zone(5)
        views = [View("secondary-only", ZoneSet([zone]),
                      match_clients=("10.10.0.3",))]
        loop, client = self.deploy(zone, views=views)
        allowed = []
        axfr_fetch(client, "10.10.0.2", zone.origin, allowed.append)
        loop.run(max_time=10)
        assert allowed and allowed[0] is not None

        network = client.network
        outsider = network.add_host("outsider", "10.10.0.9")
        denied = []
        axfr_fetch(outsider, "10.10.0.2", zone.origin, denied.append)
        loop.run(max_time=loop.now + 10)
        assert denied == [None]

    def test_normal_queries_still_served_on_same_connection_port(self):
        zone = big_zone(5)
        loop, client = self.deploy(zone)
        # A plain TCP query to the same server must not be hijacked by
        # the AXFR path.
        from repro.netsim import TcpOptions, TcpStack
        from repro.server import StreamFramer, frame_message
        stack = TcpStack(client)
        framer = StreamFramer()
        answers = []
        framer.on_message = lambda wire: answers.append(
            Message.from_wire(wire))
        conn = stack.connect("10.10.0.3", "10.10.0.2", 53,
                             TcpOptions(nagle=False))
        conn.on_data = lambda _cn, d: framer.feed(d)
        conn.send(frame_message(Message.make_query(
            Name.from_text("h1.xfer.example."), RRType.A,
            msg_id=9).to_wire()))
        loop.run(max_time=10)
        assert answers and answers[0].rcode == Rcode.NOERROR


class TestReloadInvalidation:
    """AXFR reloads must evict stale response-wire cache entries."""

    def ask(self, engine, qname, msg_id=1):
        query = Message.make_query(Name.from_text(qname), RRType.A,
                                   msg_id=msg_id)
        return Message.from_wire(engine.serve_wire(query))

    def test_replace_serves_fresh_data(self):
        engine = AuthoritativeServer.single_view([big_zone(10)])
        qname = "h3.xfer.example."
        first = self.ask(engine, qname)
        assert first.answer[0].rdata.address == "10.9.0.4"
        assert self.ask(engine, qname).answer[0].rdata.address == "10.9.0.4"
        assert engine.wire_cache.hits == 1

        # A secondary-style reload: the whole zone object is replaced.
        reloaded = read_zone("""
$ORIGIN xfer.example.
@ 3600 IN SOA ns1 h. 10 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 192.0.2.1
h3 60 IN A 203.0.113.3
""", origin=Name.from_text("xfer.example."))
        previous = engine.views[0].zones.replace(reloaded)
        assert previous is not None

        fresh = self.ask(engine, qname, msg_id=2)
        assert fresh.answer[0].rdata.address == "203.0.113.3"

    def test_transferred_zone_replaces_and_invalidates(self):
        # End to end: fetch over the wire, install with replace(), and
        # confirm the cached pre-transfer answer is gone.
        zone = big_zone(20)
        loop = EventLoop()
        network = Network(loop)
        server_host = network.add_host("primary", "10.10.0.2")
        HostedDnsServer(server_host, AuthoritativeServer.single_view([zone]))
        client = network.add_host("secondary", "10.10.0.3")

        stale = read_zone("""
$ORIGIN xfer.example.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 192.0.2.250
""", origin=Name.from_text("xfer.example."))
        secondary = AuthoritativeServer.single_view([stale])
        assert self.ask(secondary, "ns1.xfer.example.").answer[0] \
            .rdata.address == "192.0.2.250"

        got = []
        axfr_fetch(client, "10.10.0.2", zone.origin, got.append)
        loop.run(max_time=10)
        secondary.views[0].zones.replace(got[0])
        assert self.ask(secondary, "ns1.xfer.example.", msg_id=2) \
            .answer[0].rdata.address == "192.0.2.1"


class TestTransferRetry:
    """Failed transfers re-attempt with backoff under a RetryPolicy."""

    def deploy_empty(self):
        from repro.netsim import EventLoop, Network
        loop = EventLoop()
        network = Network(loop)
        server_host = network.add_host("primary", "10.10.0.2")
        engine = AuthoritativeServer.single_view([])
        HostedDnsServer(server_host, engine)
        client = network.add_host("secondary", "10.10.0.3")
        return loop, client, engine

    def test_retry_succeeds_after_zone_appears(self):
        from repro.netsim import RetryPolicy
        zone = big_zone(20)
        loop, client, engine = self.deploy_empty()
        got = []
        # First attempt is REFUSED (zone not hosted yet); the zone
        # shows up before the backoff expires and the retry transfers.
        axfr_fetch(client, "10.10.0.2", zone.origin, got.append,
                   retry=RetryPolicy(udp_timeout=0.5, max_retries=2))
        loop.call_at(0.3, engine.views[0].zones.add, zone)
        loop.run(max_time=20)
        assert got and got[0] is not None
        assert got[0].record_count() == zone.record_count()

    def test_gives_up_after_budget(self):
        from repro.netsim import RetryPolicy
        zone = big_zone(5)
        loop, client, engine = self.deploy_empty()
        got = []
        axfr_fetch(client, "10.10.0.2", zone.origin, got.append,
                   retry=RetryPolicy(udp_timeout=0.2, max_retries=1))
        loop.run(max_time=20)
        # Exactly one completion callback, after both attempts failed.
        assert got == [None]

    def test_no_policy_fails_immediately(self):
        zone = big_zone(5)
        loop, client, engine = self.deploy_empty()
        got = []
        axfr_fetch(client, "10.10.0.2", zone.origin, got.append)
        loop.run(max_time=20)
        assert got == [None]
