"""Tests for experiment infrastructure: scales, output rendering, CLI."""

import pytest

from repro.experiments.common import (ExperimentOutput, FULL, QUICK, SCALES,
                                      SMOKE, Scale, format_table, gib)
from repro.experiments import cli


class TestScale:
    def test_report_factor_inverse_of_rate(self):
        scale = Scale("x", rate=380.0, duration=10, monitor_period=5)
        assert scale.report_factor == pytest.approx(100.0)

    def test_clients_floor(self):
        tiny = Scale("x", rate=0.5, duration=10, monitor_period=5)
        assert tiny.clients == 50

    def test_presets_ordered_by_size(self):
        assert SMOKE.rate < QUICK.rate < FULL.rate
        assert SMOKE.duration < QUICK.duration < FULL.duration

    def test_frozen(self):
        with pytest.raises(Exception):
            SMOKE.rate = 999


class TestFormatTable:
    def test_columns_aligned(self):
        table = format_table(["name", "value"],
                             [["a", 1], ["longer-name", 123456]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].index("value") == lines[2].index("1") or True
        assert "longer-name" in lines[3]

    def test_float_formatting(self):
        table = format_table(["v"], [[0.12345], [12.3456], [12345.6], [0]])
        assert "0.1235" in table or "0.1234" in table
        assert "12.35" in table
        assert "12,346" in table
        assert "\n0" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table


class TestExperimentOutput:
    def test_render_structure(self):
        output = ExperimentOutput("figX", "a test", ["col1", "col2"],
                                  paper_claims={"claim": "value"},
                                  notes=["a note"])
        output.add_row("r1", 2)
        text = output.render()
        assert "== figX: a test ==" in text
        assert "col1" in text and "r1" in text
        assert "claim: value" in text
        assert "note: a note" in text

    def test_gib(self):
        assert gib(1024 ** 3) == 1.0


class TestCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["not-an-experiment"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["table1", "--scale", "galactic"])

    def test_runs_single_experiment(self, monkeypatch, capsys):
        fake = ExperimentOutput("fake", "fake title", ["c"])
        fake.add_row("v")
        monkeypatch.setitem(cli.EXPERIMENTS, "table1",
                            lambda scale: fake)
        assert cli.main(["table1", "--scale", "smoke"]) == 0
        captured = capsys.readouterr()
        assert "fake title" in captured.out

    def test_all_runs_everything(self, monkeypatch, capsys):
        calls = []

        def factory(name):
            def runner(scale):
                calls.append(name)
                output = ExperimentOutput(name, name, ["c"])
                output.add_row("v")
                return output
            return runner

        for name in list(cli.EXPERIMENTS):
            monkeypatch.setitem(cli.EXPERIMENTS, name, factory(name))
        assert cli.main(["all"]) == 0
        assert sorted(calls) == sorted(cli.EXPERIMENTS)

    def test_experiment_registry_complete(self):
        expected = {"table1", "fig6", "fig7", "fig8", "fig9", "fig9scale",
                    "fig10", "fig11", "fig13", "fig14", "fig15",
                    "hierarchy", "dos"}
        assert set(cli.EXPERIMENTS) == expected

    def test_scale_subcommand_runs_pipeline(self, tmp_path, capsys):
        import json
        out = tmp_path / "bench.json"
        assert cli.main(["scale", "--queries", "3000",
                         "--workdir", str(tmp_path),
                         "--json", str(out)]) == 0
        assert "streamed 3,000 queries" in capsys.readouterr().out
        record = json.loads(out.read_text())["scale_stream"]
        assert record["accounted_sends"] == 3000
        assert record["bytes_on_disk"] > 0
        # No shard files left behind (the run cleans its workdir).
        assert not any(p.name.startswith("scale-bench-")
                       for p in tmp_path.iterdir() if p.is_dir())


class TestReport:
    def _fake_registry(self):
        def runner(name):
            def run(scale):
                output = ExperimentOutput(name, f"title-{name}", ["col"])
                output.add_row("value")
                output.paper_claims["claim"] = "expected"
                return output
            return run
        return {"figA": runner("figA"), "figB": runner("figB")}

    def test_generate_contains_all_sections(self):
        from repro.experiments import report
        from repro.experiments.common import SMOKE
        document = report.generate(self._fake_registry(), SMOKE)
        assert "## figA: title-figA" in document
        assert "## figB: title-figB" in document
        assert "claim: expected" in document
        assert "smoke" in document

    def test_generate_subset(self):
        from repro.experiments import report
        from repro.experiments.common import SMOKE
        document = report.generate(self._fake_registry(), SMOKE,
                                   names=["figB"])
        assert "figB" in document and "figA" not in document

    def test_cli_report_to_file(self, monkeypatch, tmp_path, capsys):
        registry = self._fake_registry()
        monkeypatch.setattr(cli, "EXPERIMENTS", registry)
        out_file = tmp_path / "report.md"
        assert cli.main(["report", "-o", str(out_file)]) == 0
        content = out_file.read_text()
        assert "figA" in content and "figB" in content
