"""Tests for the DoS-attack application experiment."""

import pytest

from repro.experiments import Scale
from repro.experiments.dos_attack import (run, run_attack,
                                          udp_attack_trace)
from repro.netsim import (EventLoop, Network, TcpFlags, TcpOptions,
                          TcpStack, make_tcp_packet)

TINY = Scale("dos-tiny", rate=40.0, duration=12.0, monitor_period=4.0)


class TestAttackTraceGenerator:
    def test_rate_and_spoofing(self):
        trace = udp_attack_trace(500.0, 4.0, "10.0.0.2")
        assert 1200 < len(trace) < 2800
        sources = {record.src for record in trace}
        assert len(sources) > len(trace) * 0.9  # nearly all spoofed-unique

    def test_queries_are_junk(self):
        trace = udp_attack_trace(100.0, 2.0, "10.0.0.2")
        names = {str(record.question()[0]) for record in trace}
        assert all(name.endswith(".flood.") for name in names)

    def test_deterministic(self):
        a = udp_attack_trace(100.0, 2.0, "10.0.0.2", seed=1)
        b = udp_attack_trace(100.0, 2.0, "10.0.0.2", seed=1)
        assert [r.wire for r in a] == [r.wire for r in b]


class TestSynFloodMechanics:
    """Unit-level: the stack behaviours the SYN flood exploits."""

    def setup_pair(self, max_connections=None, syn_timeout=30.0):
        loop = EventLoop()
        network = Network(loop)
        attacker = network.add_host("attacker", "10.60.0.1")
        victim = network.add_host("victim", "10.60.0.2")
        stack = TcpStack(victim, max_connections=max_connections)
        stack.listen("10.60.0.2", 53, lambda conn: None,
                     TcpOptions(syn_timeout=syn_timeout))
        return loop, attacker, stack

    def flood(self, loop, attacker, count):
        for index in range(count):
            packet = make_tcp_packet(
                f"172.16.{index // 250}.{index % 250 + 1}", 1024 + index,
                "10.60.0.2", 53, seq=index, ack=0, flags=TcpFlags.SYN)
            loop.call_at(index * 0.001, attacker.send_packet, packet)

    def test_half_open_accumulates(self):
        loop, attacker, stack = self.setup_pair()
        self.flood(loop, attacker, 200)
        loop.run(max_time=2)
        assert stack.half_open_count() == 200

    def test_syn_timeout_reaps(self):
        loop, attacker, stack = self.setup_pair(syn_timeout=5.0)
        self.flood(loop, attacker, 100)
        loop.run(max_time=20)
        assert stack.half_open_count() == 0
        assert stack.half_open_reaped == 100

    def test_connection_table_cap_drops_syns(self):
        loop, attacker, stack = self.setup_pair(max_connections=50)
        self.flood(loop, attacker, 200)
        loop.run(max_time=2)
        assert stack.half_open_count() == 50
        assert stack.syn_drops == 150

    def test_legit_client_starved_when_table_full(self):
        loop, attacker, stack = self.setup_pair(max_connections=50,
                                                syn_timeout=60.0)
        self.flood(loop, attacker, 60)
        network = stack.host.network
        client = network.add_host("legit", "10.60.0.3")
        client_stack = TcpStack(client)
        connected = []
        loop.call_at(1.0, lambda: setattr(
            client_stack.connect("10.60.0.3", "10.60.0.2", 53),
            "on_connected", lambda cn: connected.append(True)))
        loop.run(max_time=5)
        assert not connected  # SYN silently dropped


class TestExperimentRuns:
    def test_udp_flood_burns_cpu(self):
        baseline = run_attack(TINY, "none", 0.0)
        flooded = run_attack(TINY, "udp-flood", 10.0)
        assert flooded.cpu_percent > baseline.cpu_percent * 3
        # Legitimate clients unharmed by a CPU-only flood in-sim.
        assert flooded.legit_answered > 0.95

    def test_syn_flood_starves_legit_tcp(self):
        baseline = run_attack(TINY, "none", 0.0,
                              connection_table_limit=120_000)
        flooded = run_attack(TINY, "syn-flood", 20.0,
                             connection_table_limit=120_000)
        assert flooded.half_open > baseline.half_open
        assert flooded.syn_drops > 0
        assert flooded.legit_answered < baseline.legit_answered - 0.1

    def test_full_harness_renders(self):
        output = run(TINY)
        assert len(output.rows) == 5
        text = output.render()
        assert "syn-flood" in text and "udp-flood" in text
