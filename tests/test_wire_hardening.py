"""Regression tests for decoder escapes found by the fuzz seed corpus.

Each test is a minimized hostile input that previously either decoded
silently (reading bytes outside its declared rdata thanks to the
negative-read cursor rewind in ``WireReader.read_bytes``) or leaked a
non-``WireError`` exception.  The harness contract is simple: *any*
attacker-controlled byte string handed to ``Message.from_wire`` either
decodes or raises ``WireError`` — nothing else.
"""

import struct

import pytest

from repro.dns import Message, WireError
from repro.dns.edns import Edns
from repro.trace.binfmt import BinaryFormatError, unpack_record_body


def header(qd=0, an=0, ns=0, ar=0, flags=0x8000, msg_id=0x1234):
    return struct.pack("!6H", msg_id, flags, qd, an, ns, ar)


def record(name, rrtype, rdata, rrclass=1, ttl=300, rdlength=None):
    if rdlength is None:
        rdlength = len(rdata)
    return name + struct.pack("!HHIH", rrtype, rrclass, ttl, rdlength) + rdata


ROOT = b"\x00"


def assert_rejected(wire):
    with pytest.raises(WireError):
        Message.from_wire(wire)


class TestLyingRdlength:
    """RDLENGTH fields smaller than the record's fixed fields.

    Before hardening, the fixed-field reads ran past the declared rdata
    into the next record, then the negative tail read *rewound* the
    cursor to exactly the declared end — defeating the consumed-length
    check and silently mis-parsing the rest of the message.
    """

    def test_ds_rdlength_zero(self):
        # DS needs key_tag+algorithm+digest_type = 4 fixed bytes.
        body = record(ROOT, 43, b"", rdlength=0)
        assert_rejected(header(an=2) + body + record(ROOT, 43, b"\x00" * 8))

    def test_ds_rdlength_two(self):
        body = record(ROOT, 43, b"\x00\x01", rdlength=2)
        assert_rejected(header(an=2) + body + record(ROOT, 43, b"\x00" * 8))

    def test_dnskey_rdlength_one(self):
        body = record(ROOT, 48, b"\x01", rdlength=1)
        assert_rejected(header(an=2) + body + record(ROOT, 48, b"\x00" * 8))

    def test_tlsa_rdlength_one(self):
        body = record(ROOT, 52, b"\x03", rdlength=1)
        assert_rejected(header(an=2) + body + record(ROOT, 52, b"\x00" * 8))

    def test_rrsig_rdlength_inside_fixed_fields(self):
        # 18 fixed bytes before the signer name; declare only 5.
        body = record(ROOT, 46, b"\x00" * 5, rdlength=5)
        filler = record(ROOT, 46, b"\x00" * 32)
        assert_rejected(header(an=2) + body + filler)

    def test_nsec_rdlength_inside_next_name(self):
        # One byte of rdata, but the next-domain name (a compression
        # pointer to offset 0) is two bytes: the bitmap read goes
        # negative.
        body = record(ROOT, 47, b"\xc0", rdlength=1)
        filler = record(ROOT, 47, b"\x00\x00\x01\x40")
        assert_rejected(header(an=2) + body + filler)


class TestOptRecordHardening:
    def test_trailing_bytes_in_opt_rdata(self):
        # 1-3 leftover bytes cannot form an option header; they used to
        # be silently discarded.
        opt = record(ROOT, 41, b"\x00\x0a\x00\x00" + b"\xff", rrclass=1232,
                     ttl=0)
        assert_rejected(header(ar=1) + opt)

    def test_opt_option_length_past_rdata(self):
        opt = record(ROOT, 41, b"\x00\x0a\x00\xff" + b"\x00" * 4,
                     rrclass=1232, ttl=0)
        assert_rejected(header(ar=1) + opt)

    def test_from_opt_fields_direct(self):
        with pytest.raises(WireError):
            Edns.from_opt_fields(1232, 0, b"\x00\x0a\x00\x00\xff")


class TestNegativeReadGuard:
    def test_read_bytes_negative_raises(self):
        from repro.dns.wire import WireReader

        reader = WireReader(b"\x00\x01\x02\x03", offset=4)
        with pytest.raises(WireError):
            reader.read_bytes(-4)
        # The cursor must not have rewound.
        assert reader.tell() == 4


class TestBinaryRecordHardening:
    def test_short_record_body_is_format_error(self):
        # Previously struct.error escaped through MessageSocket.receive.
        with pytest.raises(BinaryFormatError):
            unpack_record_body(b"\x00" * 4)

    def test_empty_record_body_is_format_error(self):
        with pytest.raises(BinaryFormatError):
            unpack_record_body(b"")
