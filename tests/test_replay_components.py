"""Tests for the distribution tree: sticky routing, controller input."""

import pytest

from repro.replay import (Controller, DistributionStats, Distributor,
                          StickyAssigner)


class TestStickyAssigner:
    def test_same_source_same_entity(self):
        assigner = StickyAssigner(["q1", "q2", "q3"])
        first = assigner.assign("10.0.0.1")
        for _ in range(10):
            assert assigner.assign("10.0.0.1") == first

    def test_new_sources_round_robin(self):
        assigner = StickyAssigner(["a", "b"])
        assignments = [assigner.assign(f"10.0.0.{i}") for i in range(4)]
        assert assignments == ["a", "b", "a", "b"]

    def test_non_sticky_ignores_source(self):
        assigner = StickyAssigner(["a", "b"], sticky=False)
        assignments = [assigner.assign("10.0.0.1") for _ in range(4)]
        assert assignments == ["a", "b", "a", "b"]

    def test_empty_entities_rejected(self):
        with pytest.raises(ValueError):
            StickyAssigner([])

    def test_assignment_count(self):
        assigner = StickyAssigner(["a", "b"])
        for i in range(5):
            assigner.assign(f"10.0.0.{i}")
        assert assigner.assignment_count() == 5


class TestDistributor:
    def test_routes_and_counts(self):
        stats = DistributionStats()
        distributor = Distributor(0, ["q1", "q2"], stats=stats)
        querier = distributor.route("10.0.0.1")
        assert querier in ("q1", "q2")
        assert distributor.records_routed == 1
        assert stats.distributor_to_querier == 1

    def test_source_affinity_through_distributor(self):
        distributor = Distributor(0, ["q1", "q2", "q3"])
        picks = {distributor.route("10.0.0.7") for _ in range(20)}
        assert len(picks) == 1


class TestController:
    def make_tree(self, sticky=True, window=10, delay=0.001):
        stats = DistributionStats()
        distributors = [Distributor(i, [f"d{i}q{j}" for j in range(2)],
                                    sticky=sticky, stats=stats)
                        for i in range(3)]
        return Controller(distributors, sticky=sticky, input_window=window,
                          input_delay_per_record=delay), stats

    def test_same_source_same_querier_end_to_end(self):
        controller, _stats = self.make_tree()
        first = controller.dispatch("10.0.0.42")
        for _ in range(20):
            assert controller.dispatch("10.0.0.42") == first

    def test_different_sources_spread(self):
        controller, _stats = self.make_tree()
        queriers = {controller.dispatch(f"10.0.1.{i}") for i in range(30)}
        assert len(queriers) > 1

    def test_window_records_available_immediately(self):
        controller, _stats = self.make_tree(window=10, delay=0.5)
        assert controller.availability_time(0, 100.0) == 100.0
        assert controller.availability_time(9, 100.0) == 100.0

    def test_beyond_window_pays_input_delay(self):
        controller, _stats = self.make_tree(window=10, delay=0.5)
        assert controller.availability_time(10, 100.0) == \
            pytest.approx(100.5)
        assert controller.availability_time(19, 100.0) == \
            pytest.approx(105.0)

    def test_time_sync_broadcast_counted(self):
        controller, stats = self.make_tree()
        controller.broadcast_time_sync()
        assert stats.time_sync_broadcasts == 3

    def test_message_counts(self):
        controller, stats = self.make_tree()
        for i in range(10):
            controller.dispatch(f"10.0.2.{i}")
        assert stats.controller_to_distributor == 10
        assert stats.distributor_to_querier == 10
        assert controller.records_read == 10
