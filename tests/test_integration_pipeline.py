"""End-to-end integration: the complete LDplayer workflow.

Trace capture (synthetic) → zone construction via one-time fetch →
meta-DNS-server hierarchy emulation → distributed replay of the trace
through the emulated hierarchy → accuracy and correctness checks.
This is the paper's Figure 1 pipeline in one test.
"""

import io

import pytest

from repro.dns import DNS_PORT, Message, Name, Rcode
from repro.hierarchy import HierarchyEmulation, SimulatedInternet
from repro.netsim import EventLoop, Network
from repro.replay import ReplayConfig, SimReplayEngine
from repro.server import HostedDnsServer, RecursiveResolver
from repro.trace import (QueryMutator, RecursiveWorkload, Trace,
                         make_hierarchy_zones, read_binary, retarget,
                         write_binary)
from repro.zonegen import build_zones_from_trace, unique_questions


@pytest.fixture(scope="module")
def pipeline():
    zones = make_hierarchy_zones(3, 4)
    trace = RecursiveWorkload(duration=40, total_queries=400,
                              zones=zones, seed=21).generate()
    library = build_zones_from_trace(trace, zones)
    return zones, trace, library


class TestFullPipeline:
    def test_zone_construction_covers_trace(self, pipeline):
        zones, trace, library = pipeline
        questions = unique_questions(trace)
        # Every queried name falls under some reconstructed zone.
        origins = set(library.zones)
        for qname, _qtype in questions:
            assert any(qname.is_subdomain_of(origin) for origin in origins)

    def test_replay_through_emulation(self, pipeline):
        zones, trace, library = pipeline
        loop = EventLoop()
        network = Network(loop)
        emulation = HierarchyEmulation(network, library.zone_list())
        engine = SimReplayEngine(network,
                                 ReplayConfig(client_instances=2,
                                              queriers_per_instance=3))
        replay_trace = QueryMutator(
            [retarget(emulation.recursive_address)]).apply(trace)
        result = engine.replay(replay_trace, extra_time=60.0)
        assert len(result) == len(trace)
        assert result.answered_fraction() > 0.95
        # The recursive walked the emulated hierarchy via the proxies.
        assert emulation.recursive_proxy.stats.packets_rewritten > 0
        assert emulation.authoritative_proxy.stats.packets_rewritten > 0

    def test_emulation_matches_simulated_internet(self, pipeline):
        """Answers over rebuilt zones equal answers from the original
        distributed deployment (the §4 correctness claim)."""
        zones, trace, library = pipeline
        questions = unique_questions(trace)[:30]

        def collect(deploy_kind):
            loop = EventLoop()
            network = Network(loop)
            if deploy_kind == "internet":
                internet = SimulatedInternet(network, zones)
                rec_host = network.add_host("rec", "10.99.1.53")
                resolver = RecursiveResolver(rec_host,
                                             internet.root_hints())
                HostedDnsServer(rec_host, resolver)
                target = "10.99.1.53"
            else:
                emulation = HierarchyEmulation(network, library.zone_list())
                target = emulation.recursive_address
            stub = network.add_host("stub", "10.99.2.1")
            answers = {}

            def cb(key):
                def callback(_s, d, _a, _p):
                    message = Message.from_wire(d)
                    answers[key] = (message.rcode.name, tuple(sorted(
                        (str(rr.name), rr.rrtype.name, rr.rdata.to_text())
                        for rr in message.answer)))
                return callback

            for index, (qname, qtype) in enumerate(questions):
                sock = stub.bind_udp("10.99.2.1", 0, cb((qname, qtype)))
                sock.sendto(Message.make_query(
                    qname, qtype, msg_id=index + 1).to_wire(),
                    target, DNS_PORT)
            loop.run(max_time=120)
            return answers

        truth = collect("internet")
        rebuilt = collect("emulation")
        mismatches = [key for key in questions
                      if truth.get(key) != rebuilt.get(key)]
        assert not mismatches, mismatches[:3]

    def test_trace_survives_binary_round_trip_then_replays(self, pipeline):
        zones, trace, library = pipeline
        buffer = io.BytesIO()
        write_binary(trace, buffer)
        buffer.seek(0)
        again = read_binary(buffer)

        loop = EventLoop()
        network = Network(loop)
        emulation = HierarchyEmulation(network, library.zone_list())
        engine = SimReplayEngine(network)
        replay_trace = QueryMutator(
            [retarget(emulation.recursive_address)]).apply(again)
        result = engine.replay(replay_trace[:100], extra_time=30.0)
        assert result.answered_fraction() > 0.9
