"""Cluster-wide live observability: streamer, aggregator, trace merge.

Unit-level coverage of :mod:`repro.telemetry.cluster` (flight recorder
ring semantics, latest-seq-wins aggregation, clock alignment, the
``ldplayer top`` renderer and the merged Chrome trace) plus the ISSUE
acceptance run: a 4-querier process topology with one querier SIGKILLed
mid-replay must yield a single clock-aligned merged trace containing
spans from every worker — including the victim's flight-recorder tail —
and live windowed q/s snapshots captured *during* the run.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.replay import (DistributedConfig, ProcessTopology,
                          RecoveryConfig, ROLE_DISTRIBUTOR, ROLE_QUERIER,
                          UdpEchoServerProcess, conservation_violations)
from repro.telemetry import MetricsRegistry, Telemetry, TelemetryConfig
from repro.telemetry.cluster import (ClusterAggregator, ClusterConsole,
                                     FlightRecorder, TelemetryStreamer,
                                     WorkerView)
from repro.trace import fixed_interval_trace


def frame(worker=0, incarnation=0, seq=1, role=ROLE_QUERIER, mono=10.0,
          **extra):
    payload = {"role": role, "worker": worker, "incarnation": incarnation,
               "seq": seq, "mono": mono}
    payload.update(extra)
    return payload


class TestFlightRecorder:
    def test_ring_is_bounded_and_ordered(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record_span((float(i), "b", i, "query", "t", None))
            recorder.log(f"line {i}", ts=float(i))
        tail = recorder.tail()
        assert [event[0] for event in tail["spans"]] == [7.0, 8.0, 9.0]
        assert [entry[1] for entry in tail["log"]] == \
            ["line 7", "line 8", "line 9"]

    def test_tail_is_a_snapshot(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record_span((0.0, "b", 1, "query", "t", None))
        tail = recorder.tail()
        recorder.record_span((1.0, "e", 1, "query", "t", None))
        assert len(tail["spans"]) == 1  # unaffected by later appends


class TestWorkerView:
    def test_stale_seq_is_rejected(self):
        view = WorkerView(ROLE_QUERIER, 0, 0)
        assert view.update(frame(seq=3), recv_mono=100.0)
        assert not view.update(frame(seq=3), recv_mono=101.0)
        assert not view.update(frame(seq=2), recv_mono=102.0)
        assert view.frames == 1 and view.last_seq == 3

    def test_offset_prefers_time_sync_anchor(self):
        view = WorkerView(ROLE_QUERIER, 0, 0)
        view.update(frame(seq=1, mono=50.0, sync_mono=49.0),
                    recv_mono=100.0)
        # anchor - sync_mono: exact, no network skew in it.
        assert view.offset(anchor=60.0) == pytest.approx(11.0)

    def test_offset_falls_back_to_min_skew(self):
        view = WorkerView(3, 0, 0)   # shards never see TIME_SYNC
        view.update(frame(seq=1, role=3, mono=50.0), recv_mono=100.5)
        view.update(frame(seq=2, role=3, mono=51.0), recv_mono=101.2)
        # NTP-style: the smallest observed (recv - send) bounds the skew.
        assert view.offset(anchor=None) == pytest.approx(50.2)

    def test_window_rate_from_cumulative_counts(self):
        view = WorkerView(ROLE_QUERIER, 0, 0)
        for tick in range(5):
            view.update(frame(seq=tick + 1, mono=float(tick),
                              health={"records_sent": 100 * tick}),
                        recv_mono=float(tick))
        assert view.window_rate(window=2.0, now=4.0) == pytest.approx(100.0)


class TestTelemetryStreamer:
    def run_streamer(self, sent, ticks=3, **kwargs):
        streamer = TelemetryStreamer(sent.append, ROLE_QUERIER, 1, 0,
                                     period=1.0, **kwargs)
        for _ in range(ticks):
            streamer.flush()
        return streamer

    def test_seq_increases_and_metrics_are_cumulative(self):
        registry = MetricsRegistry()
        sent = []
        streamer = TelemetryStreamer(
            sent.append, ROLE_QUERIER, 1, 0, period=1.0,
            metrics_snapshot=registry.to_state)
        registry.incr("replay.records_sent", 5)
        streamer.flush()
        registry.incr("replay.records_sent", 5)
        streamer.flush(final=True)
        assert [report["seq"] for report in sent] == [1, 2]
        assert sent[0]["metrics"]["counts"]["replay.records_sent"] == 5
        assert sent[1]["metrics"]["counts"]["replay.records_sent"] == 10
        assert sent[1]["final"] is True and "final" not in sent[0]

    def test_spans_ship_incrementally_ring_ships_whole(self):
        class Tracer:
            events = []
        tracer = Tracer()
        recorder = FlightRecorder(capacity=8)
        sent = []
        streamer = TelemetryStreamer(sent.append, ROLE_QUERIER, 1, 0,
                                     period=1.0, tracer=tracer,
                                     recorder=recorder)
        tracer.events.append((0.1, "b", 1, "query", "t", None))
        recorder.record_span(tracer.events[-1])
        streamer.flush()
        tracer.events.append((0.2, "e", 1, "query", "t", None))
        recorder.record_span(tracer.events[-1])
        streamer.flush()
        assert len(sent[0]["spans"]) == 1
        assert len(sent[1]["spans"]) == 1      # only the new event
        assert len(sent[1]["ring"]["spans"]) == 2  # ring: current tail

    def test_send_failure_never_raises(self):
        def broken(report):
            raise OSError("peer gone")
        streamer = TelemetryStreamer(broken, ROLE_QUERIER, 1, 0,
                                     period=1.0)
        assert streamer.flush() is False
        assert streamer.frames_failed == 1

    def test_raising_closures_skip_their_sections(self):
        def bad():
            raise RuntimeError("mid-mutation")
        sent = []
        self.run_streamer(sent, ticks=1, metrics_snapshot=bad, health=bad,
                          sync_mono=bad)
        report = sent[0]
        assert "metrics" not in report
        assert "sync_mono" not in report
        assert set(report["health"]) == {"rss_kb"}   # built-in gauge stays

    def test_health_filters_non_numbers(self):
        sent = []
        self.run_streamer(
            sent, ticks=1,
            health=lambda: {"queue_depth": 4, "alive": True, "gone": None})
        assert sent[0]["health"]["queue_depth"] == 4
        assert "alive" not in sent[0]["health"]
        assert "gone" not in sent[0]["health"]


class TestClusterAggregator:
    def test_latest_seq_wins_per_incarnation(self):
        cluster = ClusterAggregator()
        registry = MetricsRegistry()
        registry.incr("replay.records_sent", 10)
        assert cluster.ingest(frame(seq=1, metrics=registry.to_state()),
                              recv_mono=1.0)
        registry.incr("replay.records_sent", 10)
        assert cluster.ingest(frame(seq=2, metrics=registry.to_state()),
                              recv_mono=2.0)
        # A replayed (late, duplicated) frame does not regress the view.
        stale = MetricsRegistry()
        stale.incr("replay.records_sent", 3)
        assert not cluster.ingest(frame(seq=1, metrics=stale.to_state()),
                                  recv_mono=3.0)
        assert cluster.frames_ingested == 2 and cluster.frames_stale == 1
        assert cluster.merged_metrics().count("replay.records_sent") == 20

    def test_incarnations_merge_as_separate_workers(self):
        cluster = ClusterAggregator()
        first = MetricsRegistry()
        first.incr("replay.records_sent", 30)
        second = MetricsRegistry()
        second.incr("replay.records_sent", 70)
        cluster.ingest(frame(seq=5, incarnation=0,
                             metrics=first.to_state()), recv_mono=1.0)
        cluster.ingest(frame(seq=2, incarnation=1,
                             metrics=second.to_state()), recv_mono=2.0)
        # inc0 died at 30; inc1's cumulative 70 adds, never replaces.
        assert cluster.merged_metrics().count("replay.records_sent") == 100
        assert len(cluster.workers()) == 2

    def test_crash_report_freezes_flight_recorder(self):
        cluster = ClusterAggregator()
        cluster.ingest(frame(
            seq=1,
            ring={"spans": [[0.5, "b", 9, "query", "t", None]],
                  "log": [[0.4, "querier-0 inc0 up"]]}), recv_mono=1.0)
        report = cluster.record_crash(ROLE_QUERIER, 0, 0,
                                      reason="process died")
        assert report["flight_recorder"]["spans"] == \
            [[0.5, "b", 9, "query", "t", None]]
        assert report["flight_recorder"]["log"] == \
            [[0.4, "querier-0 inc0 up"]]
        # Idempotent: the respawn path and the reader EOF path may race.
        again = cluster.record_crash(ROLE_QUERIER, 0, 0)
        assert len(cluster.crash_reports()) == 1
        assert again["reason"] == "process died"

    def test_render_top_marks_crashes(self):
        cluster = ClusterAggregator()
        cluster.ingest(frame(seq=1, health={"records_sent": 12}),
                       recv_mono=1.0)
        cluster.record_crash(ROLE_QUERIER, 0, 0, reason="watchdog stall")
        text = cluster.render_top()
        assert "querier-0" in text and "CRASHED" in text
        assert "watchdog stall" in text
        assert "flight recorder" in text

    def test_snapshot_and_csv_shapes(self):
        cluster = ClusterAggregator()
        cluster.ingest(frame(seq=1, health={"rss_kb": 1024.0}),
                       recv_mono=1.0)
        snapshot = cluster.snapshot()
        assert snapshot["frames_ingested"] == 1
        assert snapshot["workers"][0]["worker"] == "querier-0"
        json.dumps(snapshot)   # JSON-ready end to end
        csv = cluster.workers_csv().splitlines()
        assert csv[0].startswith("worker,incarnation,frames")
        assert csv[1].startswith("querier-0,0,1")

    def test_chrome_trace_rebases_onto_controller_clock(self):
        cluster = ClusterAggregator()
        cluster.set_anchor(100.0)
        # Worker clock: sync received at its mono 40.0 → offset +60.
        cluster.ingest(frame(
            seq=1, mono=41.0, sync_mono=40.0,
            spans=[[41.5, "b", 1, "query", "querier-0", None]]),
            recv_mono=101.1)
        doc = cluster.chrome_trace()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        # 41.5 + 60 - 100 = 1.5 s after the TIME_SYNC broadcast.
        assert spans[0]["ts"] == pytest.approx(1.5e6)

    def test_chrome_trace_dedups_ring_against_streamed_spans(self):
        cluster = ClusterAggregator()
        streamed = [0.1, "b", 1, "query", "t", None]
        unshipped = [0.2, "e", 1, "query", "t", None]
        cluster.ingest(frame(
            seq=1, spans=[streamed],
            ring={"spans": [streamed, unshipped], "log": []}),
            recv_mono=1.0)
        doc = cluster.chrome_trace()
        phases = [e["ph"] for e in doc["traceEvents"]
                  if e.get("cat") == "query"]
        assert sorted(phases) == ["b", "e"]   # ring overlap merged once

    def test_console_collects_frames(self):
        cluster = ClusterAggregator()
        cluster.ingest(frame(seq=1), recv_mono=1.0)
        console = ClusterConsole(cluster, interval=10.0, stream=None)
        console.stop()   # never started: still emits the final frame
        assert len(console.frames) == 1
        assert "cluster" in console.frames[0]


def streaming_config(distributors=2, queriers=2, recovery=False):
    return DistributedConfig(
        distributors=distributors, queriers_per_distributor=queriers,
        topology="processes", settle_time=0.5,
        recovery=RecoveryConfig() if recovery else None)


@pytest.mark.observability
class TestClusterStreamingEndToEnd:
    def test_all_workers_stream_and_align(self):
        """Clean 2x2 process run: every worker streams frames, clocks
        align within tens of milliseconds, and the merged trace carries
        spans from every querier."""
        trace = fixed_interval_trace(interval=0.004, duration=0.8,
                                     client_count=16)
        hub = Telemetry(TelemetryConfig(trace=True, stream_period=0.1))
        with UdpEchoServerProcess() as echo:
            topology = ProcessTopology((echo.address, echo.port),
                                       streaming_config(), telemetry=hub)
            result = topology.replay(trace)
        cluster = topology.cluster
        assert cluster is not None
        views = cluster.workers()
        assert {v.name for v in views} == {
            "distributor-0", "distributor-1",
            "querier-0", "querier-1", "querier-2", "querier-3"}
        assert all(v.frames >= 2 for v in views)
        anchor = result.start_clock
        for view in views:
            offset = view.offset(anchor)
            assert offset is not None and abs(offset) < 0.05
        # Aggregate streamed counters equal the end-of-run METRICS merge.
        merged = cluster.merged_metrics()
        assert merged.count("replay.records_sent") == len(result.sent)
        assert merged.count("replay.records_sent") == \
            topology.metrics.count("replay.records_sent")
        doc = cluster.chrome_trace()
        tracks = {e["args"]["name"] for e in doc["traceEvents"]
                  if e.get("name") == "process_name"}
        assert {"querier-0 inc0", "querier-1 inc0", "querier-2 inc0",
                "querier-3 inc0"} <= tracks
        span_pids = {e["pid"] for e in doc["traceEvents"]
                     if e["ph"] in ("b", "e")}
        querier_pids = {pid for pid, view in
                        enumerate(cluster.workers(), start=1)
                        if view.role == ROLE_QUERIER}
        assert querier_pids <= span_pids

    @pytest.mark.chaos
    def test_sigkill_victim_survives_in_merged_trace(self):
        """ISSUE 9 acceptance: 4-querier topology, one SIGKILL. The
        merged Chrome trace is clock-aligned and contains spans from all
        workers including the killed worker's flight-recorder tail; live
        windowed q/s snapshots were observable during the run; the
        replay itself still conserves every record."""
        trace = fixed_interval_trace(interval=0.002, duration=1.2,
                                     client_count=16)
        hub = Telemetry(TelemetryConfig(trace=True, stream_period=0.05))
        live_snapshots = []
        with UdpEchoServerProcess() as echo:
            topology = ProcessTopology(
                (echo.address, echo.port),
                streaming_config(recovery=True), telemetry=hub)

            def assassin():
                time.sleep(0.45)
                handle = topology.querier_handles[0]
                if handle.pid is not None:
                    os.kill(handle.pid, signal.SIGKILL)
                # Live view: sample the aggregator while the replay is
                # still in flight.
                deadline = time.monotonic() + 0.6
                while time.monotonic() < deadline:
                    if topology.cluster is not None:
                        live_snapshots.append(topology.cluster.snapshot())
                    time.sleep(0.1)

            killer = threading.Thread(target=assassin, daemon=True)
            killer.start()
            result = topology.replay(trace)
            killer.join(timeout=2.0)

        assert conservation_violations(result, len(trace.records)) == []
        assert result.respawns == 1
        cluster = topology.cluster
        victim_id = topology.querier_handles[0].worker_id

        # The crash was observed and its flight recorder frozen.
        crashes = cluster.crash_reports()
        assert len(crashes) == 1
        assert crashes[0]["worker"] == f"querier-{victim_id}"
        assert crashes[0]["flight_recorder"]["spans"]

        # Both of the victim's lives, plus every survivor, are tracks in
        # the one merged trace — and each track carries span events.
        doc = cluster.chrome_trace()
        tracks = {e["args"]["name"]: e["pid"]
                  for e in doc["traceEvents"]
                  if e.get("name") == "process_name"}
        assert f"querier-{victim_id} inc0 (crashed)" in tracks
        assert f"querier-{victim_id} inc1" in tracks
        for worker_id in range(4):
            assert any(name.startswith(f"querier-{worker_id} ")
                       for name in tracks)
        span_pids = {e["pid"] for e in doc["traceEvents"]
                     if e["ph"] in ("b", "e")}
        assert tracks[f"querier-{victim_id} inc0 (crashed)"] in span_pids
        assert tracks[f"querier-{victim_id} inc1"] in span_pids

        # All spans landed on one controller-aligned clock: rebased
        # timestamps sit inside the run's (generous) wall window.
        stamps = [e["ts"] for e in doc["traceEvents"]
                  if e["ph"] in ("b", "e")]
        assert stamps and min(stamps) > -1e6
        assert max(stamps) < 30e6

        # Live q/s was visible while the run was still going.
        assert live_snapshots
        assert any(snap["total_qps_window"] > 0 for snap in live_snapshots)
        assert any(row["qps_window"]
                   for snap in live_snapshots
                   for row in snap["workers"]
                   if row["role"] == "querier" and row["qps_window"])
