"""End-to-end streaming replay: the constant-memory 10⁸-query path.

Covers the ISSUE acceptance differential (a streamed replay must be
*identical* to the in-memory path on the same trace) plus the
shard-file process topology: distributors self-sourcing chunked shard
files with bounded read-ahead, queriers accounting in aggregate mode,
and the controller streaming-merging few-KB RESULT frames.
"""

import pytest

from repro.replay import (DistributedConfig, LiveDistributedReplay,
                          LiveUdpEchoServer, ProcessTopology, SimReplayEngine)
from repro.replay.result import ReplayResult
from repro.experiments import build_evaluation_topology
from repro.experiments.fig6_timing import wildcard_example_zone
from repro.server import (AuthoritativeServer, HostedDnsServer,
                          TransportConfig)
from repro.trace import (BRootWorkload, QueryMutator, fixed_interval_trace,
                         make_root_zone, retarget, scale_time, split_shards)


def deploy():
    testbed = build_evaluation_topology()
    HostedDnsServer(
        testbed.server_host,
        AuthoritativeServer.single_view([wildcard_example_zone(),
                                         make_root_zone(20)]),
        config=TransportConfig(udp=True, tcp=True, tls=True))
    return testbed


class TestSimEngineDifferential:
    def test_streamed_replay_identical_to_in_memory(self):
        """ISSUE acceptance: generate_stream → mutator.stream →
        replay_stream produces a ReplayResult identical to
        generate → apply → replay on ~10⁴ queries."""
        workload = BRootWorkload(duration=10.0, mean_rate=1000.0,
                                 client_count=200, seed=17)

        testbed_a = deploy()
        mutator_a = QueryMutator([retarget(testbed_a.server_address)])
        eager = mutator_a.apply(workload.generate())
        assert len(eager) > 8000   # the scale the differential promises
        result_a = SimReplayEngine(testbed_a.network).replay(eager)

        testbed_b = deploy()
        mutator_b = QueryMutator([retarget(testbed_b.server_address)])
        result_b = SimReplayEngine(testbed_b.network).replay_stream(
            mutator_b.stream(workload.generate_stream()),
            chunk_records=512)

        assert len(result_a) == len(result_b) == len(eager)
        assert result_a.answered_fraction() == 1.0
        assert result_b.answered_fraction() == 1.0
        entries_a = [q.to_dict() for q in result_a.sent]
        entries_b = [q.to_dict() for q in result_b.sent]
        assert entries_a == entries_b
        assert result_a.failure_counts() == result_b.failure_counts()

    def test_replay_stream_empty(self):
        testbed = deploy()
        result = SimReplayEngine(testbed.network).replay_stream(iter(()))
        assert len(result) == 0


def shard_directory(tmp_path, trace, num_shards):
    directory = str(tmp_path / "shards")
    manifest = split_shards(iter(sorted(trace.records,
                                        key=lambda r: r.timestamp)),
                            directory, num_shards, chunk_records=16)
    return directory, manifest


def streaming_config(**overrides):
    defaults = dict(distributors=2, queriers_per_distributor=2,
                    topology="processes", start_delay=0.05)
    defaults.update(overrides)
    return DistributedConfig(**defaults)


def compress(trace, testbed_address=None):
    mutations = [scale_time(0.25)]
    return QueryMutator(mutations).apply(trace)


class TestShardFileTopology:
    def test_replay_shard_files_end_to_end(self, tmp_path):
        trace = fixed_interval_trace(0.02, 1.0, client_count=16,
                                     name="stream-mp")
        with LiveUdpEchoServer() as server:
            topology = ProcessTopology((server.address, server.port),
                                       streaming_config())
            directory, manifest = shard_directory(tmp_path, trace, 2)
            result = topology.replay_shard_files(directory, pace_lead=5.0)
        assert result.aggregate
        assert result.sent_count == len(trace) == manifest["total_records"]
        assert result.answered_fraction() > 0.9
        assert not result.sent          # no per-query state anywhere
        state = topology.metrics.to_state()
        assert state["counts"]["replay.records_routed"] == len(trace)
        assert state["counts"]["replay.records_sent"] == len(trace)
        assert state["counts"]["multiproc.trace_records"] == len(trace)
        summary = result.latency_summary()
        assert summary["count"] == result.answered_count
        assert result.error_summary()["count"] == float(result.sent_count)

    def test_one_distributor_per_shard(self, tmp_path):
        # The manifest, not config.distributors, decides the fan-out.
        trace = fixed_interval_trace(0.02, 0.6, client_count=9,
                                     name="stream-shards")
        with LiveUdpEchoServer() as server:
            topology = ProcessTopology(
                (server.address, server.port),
                streaming_config(distributors=1))
            directory, _ = shard_directory(tmp_path, trace, 3)
            result = topology.replay_shard_files(directory, pace_lead=5.0)
        assert len(topology.distributor_handles) == 3
        assert result.sent_count == len(trace)

    def test_recovery_mode_rejected(self, tmp_path):
        from repro.replay.recovery import RecoveryConfig
        topology = ProcessTopology(
            ("127.0.0.1", 1), streaming_config(recovery=RecoveryConfig()))
        with pytest.raises(ValueError, match="recovery"):
            topology.replay_shard_files(str(tmp_path))

    def test_empty_shard_set(self, tmp_path):
        directory = str(tmp_path / "empty")
        split_shards(iter(()), directory, 2)
        topology = ProcessTopology(("127.0.0.1", 1), streaming_config())
        result = topology.replay_shard_files(directory)
        assert result.aggregate and len(result) == 0


class TestAggregateTopologies:
    def test_thread_mode_aggregate_matches_list_counts(self):
        trace = fixed_interval_trace(0.02, 0.8, client_count=8,
                                     name="agg-threads")
        results = {}
        for aggregate in (False, True):
            with LiveUdpEchoServer() as server:
                replay = LiveDistributedReplay(
                    (server.address, server.port),
                    DistributedConfig(distributors=2,
                                      queriers_per_distributor=2,
                                      start_delay=0.05,
                                      aggregate_results=aggregate))
                results[aggregate] = replay.replay(trace)
        assert len(results[True]) == len(results[False]) == len(trace)
        assert results[True].aggregate and not results[False].aggregate
        assert results[True].answered_count \
            == sum(1 for q in results[False].sent
                   if q.answered_at is not None)
        assert not results[True].sent

    def test_process_mode_aggregate_results(self):
        trace = fixed_interval_trace(0.02, 0.8, client_count=8,
                                     name="agg-processes")
        with LiveUdpEchoServer() as server:
            replay = LiveDistributedReplay(
                (server.address, server.port),
                streaming_config(aggregate_results=True))
            result = replay.replay(trace)
        assert result.aggregate
        assert result.sent_count == len(trace)
        assert result.answered_fraction() > 0.9
        assert not result.sent


class TestAggregateResultFrames:
    def test_aggregate_result_frame_validates(self):
        from repro.replay.protocol import validate_result_payload
        result = ReplayResult("agg", aggregate=True)
        result.count_send("udp", 0.0, 100.0)
        result.count_answer(0.002)
        payload = validate_result_payload(result.to_dict())
        restored = ReplayResult.from_dict(payload)
        assert restored.sent_count == 1 and restored.answered_count == 1
