"""Tests for pcap TCP stream reassembly."""

import io
import struct

import pytest

from repro.trace import Trace, make_query_record, read_pcap, write_pcap
from repro.trace.pcap import _TcpStreamAssembler


def tcp_record(timestamp, qname, sport=5000, src="10.0.0.1"):
    return make_query_record(timestamp, src, qname, protocol="tcp",
                             sport=sport)


class TestAssembler:
    def test_in_order(self):
        assembler = _TcpStreamAssembler()
        message = b"M" * 30
        framed = struct.pack("!H", len(message)) + message
        assembler.add(100, framed[:10])
        assert assembler.drain_messages() == []
        assembler.add(110, framed[10:])
        assert assembler.drain_messages() == [message]

    def test_out_of_order(self):
        assembler = _TcpStreamAssembler()
        message = b"x" * 20
        framed = struct.pack("!H", len(message)) + message
        assembler.add(100, framed[:5])          # first chunk fixes the ISN
        assembler.add(115, framed[15:])          # tail arrives early
        assert assembler.drain_messages() == []
        assembler.add(105, framed[5:15])         # gap fills
        assert assembler.drain_messages() == [message]

    def test_retransmission_ignored(self):
        assembler = _TcpStreamAssembler()
        message = b"y" * 8
        framed = struct.pack("!H", len(message)) + message
        assembler.add(1, framed)
        assert assembler.drain_messages() == [message]
        assembler.add(1, framed)  # full retransmit
        assert assembler.drain_messages() == []

    def test_multiple_messages_in_stream(self):
        assembler = _TcpStreamAssembler()
        first = b"a" * 5
        second = b"b" * 7
        stream = (struct.pack("!H", 5) + first
                  + struct.pack("!H", 7) + second)
        assembler.add(1, stream)
        assert assembler.drain_messages() == [first, second]


class TestPcapReassembly:
    def test_message_split_across_segments(self):
        trace = Trace([tcp_record(1.0, "split.example.com.")])
        buffer = io.BytesIO()
        count = write_pcap(trace, buffer, tcp_segment_size=9)
        assert count > 2  # really was split
        buffer.seek(0)
        again = read_pcap(buffer)
        assert len(again) == 1
        assert again[0].wire == trace[0].wire
        assert again[0].protocol == "tcp"

    def test_multiple_messages_one_connection(self):
        records = [tcp_record(float(i), f"q{i}.example.com.")
                   for i in range(5)]
        buffer = io.BytesIO()
        write_pcap(Trace(records), buffer, tcp_segment_size=16)
        buffer.seek(0)
        again = read_pcap(buffer)
        assert [r.wire for r in again] == [r.wire for r in records]

    def test_interleaved_flows(self):
        records = [
            tcp_record(0.0, "flow-a-1.example.com.", sport=1111),
            tcp_record(0.1, "flow-b-1.example.com.", sport=2222),
            tcp_record(0.2, "flow-a-2.example.com.", sport=1111),
            tcp_record(0.3, "flow-b-2.example.com.", sport=2222),
        ]
        buffer = io.BytesIO()
        write_pcap(Trace(records), buffer, tcp_segment_size=12)
        buffer.seek(0)
        again = read_pcap(buffer)
        assert {r.wire for r in again} == {r.wire for r in records}
        assert len(again) == 4

    def test_mixed_udp_and_segmented_tcp(self):
        records = [
            make_query_record(0.0, "10.0.0.1", "udp.example.com."),
            tcp_record(0.5, "tcp.example.com."),
        ]
        buffer = io.BytesIO()
        write_pcap(Trace(records), buffer, tcp_segment_size=8)
        buffer.seek(0)
        again = read_pcap(buffer)
        assert sorted(r.protocol for r in again) == ["tcp", "udp"]

    def test_unsegmented_write_still_one_packet_per_message(self):
        records = [tcp_record(float(i), f"q{i}.example.com.")
                   for i in range(3)]
        buffer = io.BytesIO()
        count = write_pcap(Trace(records), buffer)
        assert count == 3
