"""Tests for EDNS(0): OPT record encoding, options, DO-bit handling."""

import pytest

from repro.dns import (DEFAULT_EDNS_PAYLOAD, Edns, EdnsOption, Message,
                       Name, RRType)
from repro.dns.edns import parse_opt_record
from repro.dns.wire import WireReader, WireWriter


def encode(edns):
    writer = WireWriter(compress=False)
    edns.to_wire(writer)
    return writer.getvalue()


class TestEncoding:
    def test_default_fields(self):
        edns = Edns()
        assert edns.payload_size == DEFAULT_EDNS_PAYLOAD
        assert not edns.dnssec_ok
        assert edns.version == 0

    def test_roundtrip_via_message(self):
        message = Message.make_query(
            Name.from_text("e.example."), RRType.A,
            edns=Edns(payload_size=1232, dnssec_ok=True,
                      extended_rcode=0))
        decoded = Message.from_wire(message.to_wire())
        assert decoded.edns.payload_size == 1232
        assert decoded.edns.dnssec_ok

    def test_do_bit_in_ttl_field(self):
        wire = encode(Edns(dnssec_ok=True))
        # OPT layout: root(1) type(2) class(2) ttl(4) rdlen(2)
        ttl = int.from_bytes(wire[5:9], "big")
        assert ttl & 0x8000

    def test_payload_in_class_field(self):
        wire = encode(Edns(payload_size=4096))
        klass = int.from_bytes(wire[3:5], "big")
        assert klass == 4096

    def test_wire_size_minimal(self):
        assert Edns().wire_size() == 11  # 1+2+2+4+2

    def test_version_and_extended_rcode(self):
        edns = Edns(version=1, extended_rcode=2)
        reader = WireReader(encode(edns))
        parsed, was_opt = parse_opt_record(reader)
        assert was_opt
        assert parsed.version == 1
        assert parsed.extended_rcode == 2


class TestOptions:
    def test_options_roundtrip(self):
        # e.g. an NSID-style option (code 3) and a cookie (code 10)
        edns = Edns(options=[EdnsOption(3, b"server-id"),
                             EdnsOption(10, b"\x01" * 8)])
        reader = WireReader(encode(edns))
        parsed, _was_opt = parse_opt_record(reader)
        assert len(parsed.options) == 2
        assert parsed.options[0].code == 3
        assert parsed.options[0].data == b"server-id"
        assert parsed.options[1].code == 10

    def test_empty_option_data(self):
        edns = Edns(options=[EdnsOption(3, b"")])
        reader = WireReader(encode(edns))
        parsed, _was_opt = parse_opt_record(reader)
        assert parsed.options[0].data == b""

    def test_options_extend_wire_size(self):
        plain = Edns().wire_size()
        with_option = Edns(options=[EdnsOption(3, b"12345")]).wire_size()
        assert with_option == plain + 4 + 5


class TestParseOptRecord:
    def test_non_opt_rewinds(self):
        # An A record is not OPT: the parser must rewind untouched.
        from repro.dns import rdata as rd
        from repro.dns.rrset import RR
        from repro.dns import RRClass
        writer = WireWriter(compress=False)
        RR(Name.from_text("x.example."), 60, RRClass.IN,
           rd.A("192.0.2.1")).to_wire(writer)
        reader = WireReader(writer.getvalue())
        parsed, was_opt = parse_opt_record(reader)
        assert parsed is None and not was_opt
        assert reader.tell() == 0
