"""Tests for the live (real socket) replay path.  Kept short: these use
real wall-clock time on loopback."""

import pytest

from repro.replay import (LiveReplay, LiveUdpEchoServer, ThroughputReport,
                          measure_throughput)
from repro.trace import fixed_interval_trace


class TestEchoServer:
    def test_start_stop(self):
        with LiveUdpEchoServer() as server:
            assert server.port > 0
            assert server.address == "127.0.0.1"

    def test_echoes_with_qr_bit(self):
        import socket
        with LiveUdpEchoServer() as server:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.settimeout(2.0)
            query = b"\x12\x34\x01\x00" + b"\x00" * 8 + b"payload"
            sock.sendto(query, (server.address, server.port))
            reply, _peer = sock.recvfrom(65535)
            sock.close()
        assert reply[:2] == b"\x12\x34"
        assert reply[2] & 0x80  # QR set
        assert reply[3:] == query[3:]


class TestLiveReplay:
    def test_short_replay_accuracy(self):
        trace = fixed_interval_trace(0.02, 0.6, name="live-test")
        with LiveUdpEchoServer() as server:
            live = LiveReplay((server.address, server.port))
            result = live.replay(trace)
        assert len(result) == len(trace)
        # Real timers on loopback: errors should be well under 20 ms.
        errors = result.send_time_errors(skip_seconds=0.1)
        assert errors
        assert max(abs(e) for e in errors) < 0.050
        assert result.answered_fraction() > 0.9

    def test_latency_measured(self):
        trace = fixed_interval_trace(0.05, 0.3, name="live-lat")
        with LiveUdpEchoServer() as server:
            live = LiveReplay((server.address, server.port))
            result = live.replay(trace)
        latencies = result.latencies()
        assert latencies
        assert all(0 < latency < 0.5 for latency in latencies)


class TestThroughput:
    def test_measure_throughput_reports(self):
        report = measure_throughput(duration=0.4, sample_period=0.2)
        assert isinstance(report, ThroughputReport)
        assert report.queries_sent > 100
        assert report.mean_qps > 500
        assert report.responses_received > 0
        assert report.samples
        assert report.mean_mbps > 0
