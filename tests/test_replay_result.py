"""Tests for ReplayResult analysis and the wire reader/writer edges."""

import pytest

from repro.replay import ReplayResult, SentQuery
from repro.dns.wire import WireError, WireReader, WireWriter


def query(index, source, trace_time, sent_at, answered_at=None,
          protocol="udp", fresh=False):
    return SentQuery(index=index, source=source, trace_time=trace_time,
                     scheduled_at=trace_time, sent_at=sent_at,
                     protocol=protocol, qname="q.example.com.",
                     answered_at=answered_at, fresh_connection=fresh)


class TestReplayResult:
    def make_result(self):
        result = ReplayResult()
        result.start_clock = 100.0
        result.trace_start = 0.0
        result.add(query(0, "10.0.0.1", 0.0, 100.0, answered_at=100.01))
        result.add(query(1, "10.0.0.2", 1.0, 101.002,
                         answered_at=101.05, protocol="tcp", fresh=True))
        result.add(query(2, "10.0.0.1", 2.0, 101.999, protocol="tcp"))
        result.add(query(3, "10.0.0.2", 3.0, 103.0, answered_at=103.2,
                         protocol="tls", fresh=False))
        return result

    def test_send_time_errors(self):
        result = self.make_result()
        errors = result.send_time_errors()
        assert errors[0] == pytest.approx(0.0)
        assert errors[1] == pytest.approx(0.002)
        assert errors[2] == pytest.approx(-0.001)

    def test_skip_seconds(self):
        result = self.make_result()
        errors = result.send_time_errors(skip_seconds=1.5)
        assert len(errors) == 2  # trace times 2.0 and 3.0 survive

    def test_latency_properties(self):
        result = self.make_result()
        latencies = result.latencies()
        assert len(latencies) == 3  # one query unanswered
        assert result.sent[2].latency is None
        assert result.answered_fraction() == pytest.approx(0.75)

    def test_latency_filter_by_source(self):
        result = self.make_result()
        only = result.latencies(sources={"10.0.0.2"})
        assert len(only) == 2

    def test_reuse_fraction_counts_stream_only(self):
        result = self.make_result()
        # stream queries: tcp fresh, tcp (non-fresh), tls (non-fresh)
        assert result.reuse_fraction() == pytest.approx(2 / 3)

    def test_interarrivals_sorted(self):
        result = self.make_result()
        gaps = result.interarrivals()
        assert len(gaps) == 3
        assert all(g >= 0 for g in gaps)

    def test_per_second_rates(self):
        result = self.make_result()
        rates = dict(result.per_second_rates())
        assert rates[0] == 1
        assert rates[1] == 2  # 101.002 and 101.999

    def test_empty_result(self):
        result = ReplayResult()
        assert result.send_time_errors() == []
        assert result.answered_fraction() == 0.0
        assert result.reuse_fraction() == 0.0
        assert result.error_summary() == {}
        assert len(result) == 0


class TestMergeAndSerialization:
    def make_shard(self, name, offset, count):
        shard = ReplayResult(name)
        for i in range(count):
            shard.add(query(i, f"10.1.0.{offset + i}", float(i),
                            200.0 + i, answered_at=200.5 + i))
        return shard

    def test_merge_reindexes_and_sums(self):
        a = self.make_shard("querier-0", 0, 3)
        a.udp_timeouts = 2
        a.deadline_shed = 1
        b = self.make_shard("querier-1", 10, 2)
        b.udp_timeouts = 5
        b.reassigned_queries = 3
        merged = a.merge(b)
        assert merged is a
        assert len(a) == 5
        assert [q.index for q in a.sent] == [0, 1, 2, 3, 4]
        assert a.udp_timeouts == 7
        assert a.deadline_shed == 1
        assert a.reassigned_queries == 3

    def test_merge_keeps_earliest_clocks(self):
        a, b = ReplayResult(), ReplayResult()
        a.start_clock, a.trace_start = 105.0, 3.0
        b.start_clock, b.trace_start = 100.0, 1.0
        a.merge(b)
        assert a.start_clock == 100.0
        assert a.trace_start == 1.0
        # None on either side never wins over a real clock.
        c = ReplayResult()
        a.merge(c)
        assert a.start_clock == 100.0

    def test_merge_covers_every_counter(self):
        from repro.replay.result import _COUNTER_FIELDS
        a, b = ReplayResult(), ReplayResult()
        for i, name in enumerate(_COUNTER_FIELDS):
            setattr(b, name, i + 1)
        a.merge(b)
        for i, name in enumerate(_COUNTER_FIELDS):
            assert getattr(a, name) == i + 1

    def test_counter_fields_exhaustive(self):
        """Every integer attribute a fresh ReplayResult carries must be
        merge-summed — a counter added later but left out of
        _COUNTER_FIELDS would silently vanish in process mode.

        Aggregate-mode accumulators are merged by _merge_aggregate
        (sum/min/max/histogram folds) rather than the counter sweep;
        test_aggregate_merge_commutes covers those.
        """
        from repro.replay.result import _COUNTER_FIELDS
        aggregate_attrs = {"aggregate", "sent_count", "answered_count",
                           "error_count", "fresh_connections"}
        fresh = ReplayResult()
        int_attrs = {name for name, value in vars(fresh).items()
                     if isinstance(value, int)}
        assert int_attrs - aggregate_attrs == set(_COUNTER_FIELDS)
        # Any new aggregate accumulator must be wired into
        # _merge_aggregate and to_dict/from_dict, not silently added.
        assert aggregate_attrs <= set(vars(fresh))

    def test_dict_roundtrip_exact(self):
        import json
        shard = self.make_shard("querier-2", 0, 2)
        shard.sent[1].answered_at = None
        shard.sent[1].retries = 2
        shard.sent[1].gave_up = True
        shard.watchdog_stalls = 1
        shard.start_clock, shard.trace_start = 99.5, 0.25
        wire = json.dumps(shard.to_dict())   # must be JSON-safe
        restored = ReplayResult.from_dict(json.loads(wire))
        assert restored.name == "querier-2"
        assert restored.start_clock == 99.5
        assert restored.trace_start == 0.25
        assert restored.watchdog_stalls == 1
        assert len(restored) == 2
        assert restored.sent[0].to_dict() == shard.sent[0].to_dict()
        assert restored.sent[1].gave_up is True
        assert restored.sent[1].latency is None

    def test_sent_query_roundtrip(self):
        from repro.replay import SentQuery
        original = query(4, "10.0.0.9", 1.5, 101.5, answered_at=101.6,
                         protocol="tls", fresh=True)
        restored = SentQuery.from_dict(original.to_dict())
        assert restored == original


class TestAggregateMode:
    """Aggregate (O(1)-per-query) accounting: the 10⁸-scale result."""

    def fold(self, name, offset, count, answered_every=1):
        result = ReplayResult(name, aggregate=True)
        result.start_clock, result.trace_start = 200.0, 0.0
        for i in range(count):
            result.count_send("udp", float(i), 200.0 + i + 0.001)
            if i % answered_every == 0:
                result.count_answer(0.0005 * (offset + i + 1))
        return result

    def test_counts_and_summaries(self):
        result = self.fold("agg", 0, 10, answered_every=2)
        assert len(result) == 10
        assert result.sent_count == 10
        assert result.answered_count == 5
        assert result.answered_fraction() == 0.5
        assert result.unanswered() == 5
        assert not result.sent          # nothing retained per query
        latency = result.latency_summary()
        assert latency["count"] == 5.0
        assert latency["min"] <= latency["median"] <= latency["max"]
        errors = result.error_summary()
        assert errors["count"] == 10.0
        assert abs(errors["mean"] - 0.001) < 1e-9
        assert errors["stddev"] < 1e-9

    def test_aggregate_merge_commutes(self):
        a1, b1 = self.fold("a", 0, 7, 2), self.fold("b", 100, 5, 3)
        a2, b2 = self.fold("a", 0, 7, 2), self.fold("b", 100, 5, 3)
        ab = a1.merge(b1)
        ba = b2.merge(a2)
        for field in ("sent_count", "answered_count", "latency_sum",
                      "latency_min", "latency_max", "latency_hist",
                      "error_count", "error_sum", "error_sumsq",
                      "protocol_counts", "rate_buckets",
                      "fresh_connections", "first_sent_at",
                      "last_sent_at"):
            assert getattr(ab, field) == getattr(ba, field), field

    def test_dict_roundtrip(self):
        import json
        result = self.fold("agg-wire", 3, 9, answered_every=2)
        result.udp_timeouts = 4
        wire = json.dumps(result.to_dict())
        restored = ReplayResult.from_dict(json.loads(wire))
        assert restored.aggregate
        assert restored.sent_count == 9
        assert restored.answered_count == result.answered_count
        assert restored.latency_hist == result.latency_hist
        assert restored.rate_buckets == result.rate_buckets
        assert restored.udp_timeouts == 4
        assert restored.latency_summary() == result.latency_summary()

    def test_list_shard_folds_into_aggregate(self):
        aggregate = ReplayResult("controller", aggregate=True)
        shard = ReplayResult("querier-0")
        for i in range(4):
            shard.add(query(i, f"10.0.0.{i}", float(i), 100.0 + i,
                            answered_at=100.0 + i + 0.002))
        aggregate.merge(shard)
        assert aggregate.sent_count == 4
        assert aggregate.answered_count == 4
        assert not aggregate.sent

    def test_aggregate_into_list_rejected(self):
        with pytest.raises(ValueError):
            ReplayResult("list").merge(ReplayResult("agg", aggregate=True))

    def test_add_folds_final_entries(self):
        result = ReplayResult("fold", aggregate=True)
        result.add(query(0, "10.0.0.1", 0.0, 50.0, answered_at=50.01))
        result.add(query(1, "10.0.0.2", 0.5, 50.5))
        assert result.sent_count == 2
        assert result.answered_count == 1
        assert result.protocol_counts == {"udp": 2}


class TestWireReaderWriter:
    def test_patch_u16(self):
        writer = WireWriter(compress=False)
        writer.write_u16(0)
        writer.write_bytes(b"abc")
        writer.patch_u16(0, 3)
        assert writer.getvalue() == b"\x00\x03abc"

    def test_reader_bounds(self):
        reader = WireReader(b"\x01\x02")
        assert reader.read_u16() == 0x0102
        with pytest.raises(WireError):
            reader.read_u8()

    def test_seek_bounds(self):
        reader = WireReader(b"abcd")
        reader.seek(2)
        assert reader.read_bytes(2) == b"cd"
        with pytest.raises(WireError):
            reader.seek(5)
        with pytest.raises(WireError):
            reader.seek(-1)

    def test_remaining(self):
        reader = WireReader(b"abcd")
        reader.read_u8()
        assert reader.remaining() == 3

    def test_u32_roundtrip(self):
        writer = WireWriter(compress=False)
        writer.write_u32(0xDEADBEEF)
        assert WireReader(writer.getvalue()).read_u32() == 0xDEADBEEF

    def test_tell_tracks_position(self):
        writer = WireWriter(compress=False)
        assert writer.tell() == 0
        writer.write_bytes(b"12345")
        assert writer.tell() == 5
