"""Tests for ReplayResult analysis and the wire reader/writer edges."""

import pytest

from repro.replay import ReplayResult, SentQuery
from repro.dns.wire import WireError, WireReader, WireWriter


def query(index, source, trace_time, sent_at, answered_at=None,
          protocol="udp", fresh=False):
    return SentQuery(index=index, source=source, trace_time=trace_time,
                     scheduled_at=trace_time, sent_at=sent_at,
                     protocol=protocol, qname="q.example.com.",
                     answered_at=answered_at, fresh_connection=fresh)


class TestReplayResult:
    def make_result(self):
        result = ReplayResult()
        result.start_clock = 100.0
        result.trace_start = 0.0
        result.add(query(0, "10.0.0.1", 0.0, 100.0, answered_at=100.01))
        result.add(query(1, "10.0.0.2", 1.0, 101.002,
                         answered_at=101.05, protocol="tcp", fresh=True))
        result.add(query(2, "10.0.0.1", 2.0, 101.999, protocol="tcp"))
        result.add(query(3, "10.0.0.2", 3.0, 103.0, answered_at=103.2,
                         protocol="tls", fresh=False))
        return result

    def test_send_time_errors(self):
        result = self.make_result()
        errors = result.send_time_errors()
        assert errors[0] == pytest.approx(0.0)
        assert errors[1] == pytest.approx(0.002)
        assert errors[2] == pytest.approx(-0.001)

    def test_skip_seconds(self):
        result = self.make_result()
        errors = result.send_time_errors(skip_seconds=1.5)
        assert len(errors) == 2  # trace times 2.0 and 3.0 survive

    def test_latency_properties(self):
        result = self.make_result()
        latencies = result.latencies()
        assert len(latencies) == 3  # one query unanswered
        assert result.sent[2].latency is None
        assert result.answered_fraction() == pytest.approx(0.75)

    def test_latency_filter_by_source(self):
        result = self.make_result()
        only = result.latencies(sources={"10.0.0.2"})
        assert len(only) == 2

    def test_reuse_fraction_counts_stream_only(self):
        result = self.make_result()
        # stream queries: tcp fresh, tcp (non-fresh), tls (non-fresh)
        assert result.reuse_fraction() == pytest.approx(2 / 3)

    def test_interarrivals_sorted(self):
        result = self.make_result()
        gaps = result.interarrivals()
        assert len(gaps) == 3
        assert all(g >= 0 for g in gaps)

    def test_per_second_rates(self):
        result = self.make_result()
        rates = dict(result.per_second_rates())
        assert rates[0] == 1
        assert rates[1] == 2  # 101.002 and 101.999

    def test_empty_result(self):
        result = ReplayResult()
        assert result.send_time_errors() == []
        assert result.answered_fraction() == 0.0
        assert result.reuse_fraction() == 0.0
        assert result.error_summary() == {}
        assert len(result) == 0


class TestWireReaderWriter:
    def test_patch_u16(self):
        writer = WireWriter(compress=False)
        writer.write_u16(0)
        writer.write_bytes(b"abc")
        writer.patch_u16(0, 3)
        assert writer.getvalue() == b"\x00\x03abc"

    def test_reader_bounds(self):
        reader = WireReader(b"\x01\x02")
        assert reader.read_u16() == 0x0102
        with pytest.raises(WireError):
            reader.read_u8()

    def test_seek_bounds(self):
        reader = WireReader(b"abcd")
        reader.seek(2)
        assert reader.read_bytes(2) == b"cd"
        with pytest.raises(WireError):
            reader.seek(5)
        with pytest.raises(WireError):
            reader.seek(-1)

    def test_remaining(self):
        reader = WireReader(b"abcd")
        reader.read_u8()
        assert reader.remaining() == 3

    def test_u32_roundtrip(self):
        writer = WireWriter(compress=False)
        writer.write_u32(0xDEADBEEF)
        assert WireReader(writer.getvalue()).read_u32() == 0xDEADBEEF

    def test_tell_tracks_position(self):
        writer = WireWriter(compress=False)
        assert writer.tell() == 0
        writer.write_bytes(b"12345")
        assert writer.tell() == 5
