"""Differential: the overload subsystem at defaults changes no bytes.

The acceptance criterion for the overload PR mirrors the wire-cache
one: a ``HostedDnsServer`` built with ``overload=None``, with the
default (all-off) ``OverloadConfig``, or with limits set far above the
offered load must produce byte-identical response streams over both
UDP and TCP.  The subsystem may only change behaviour when a knob is
deliberately turned.  The byte comparison runs on the shared
:class:`repro.verify.Oracle` library (baseline: no overload control;
candidate: the configuration under test).
"""

import pytest

from repro.dns import (DNS_PORT, Edns, Message, Name, RRType, read_zone)
from repro.netsim import EventLoop, Network, TcpOptions, TcpStack
from repro.server import (AuthoritativeServer, HostedDnsServer,
                          OverloadConfig, RrlConfig, StreamFramer,
                          TransportConfig, frame_message)
from repro.verify import Observation, Oracle

ZONE = """
$ORIGIN example.com.
@ 3600 IN SOA ns1 h. 1 1800 900 604800 86400
@ 3600 IN NS ns1
ns1 IN A 10.5.0.2
www 300 IN A 192.0.2.80
alias 300 IN CNAME www
*.wild 60 IN A 192.0.2.99
""" + "\n".join(f"big 60 IN A 10.7.{i // 200}.{i % 200 + 1}"
                for i in range(60))

QUERIES = [
    ("www.example.com.", RRType.A, None),         # positive
    ("alias.example.com.", RRType.A, None),       # CNAME chain
    ("www.example.com.", RRType.NS, None),        # NODATA
    ("nope.example.com.", RRType.A, None),        # NXDOMAIN
    ("a.wild.example.com.", RRType.A, None),      # wildcard
    ("other.test.", RRType.A, None),              # REFUSED
    ("big.example.com.", RRType.A, None),         # truncated at 512
    ("big.example.com.", RRType.A, Edns()),       # fits under EDNS
    ("www.example.com.", RRType.A, Edns(dnssec_ok=True)),
]

# Knobs that are "on" but sized far beyond the offered load: admission
# must pass everything and RRL must never fire.
GENEROUS = OverloadConfig(
    queue_limit=10_000, service_rate=1e6,
    rrl=RrlConfig(responses_per_second=1e6, window=10.0))


def run_udp(overload):
    loop = EventLoop()
    network = Network(loop)
    server_host = network.add_host("server", "10.5.0.2")
    client_host = network.add_host("client", "10.5.0.1")
    zone = read_zone(ZONE, origin=Name.from_text("example.com."))
    HostedDnsServer(server_host, AuthoritativeServer.single_view([zone]),
                    config=TransportConfig(udp=True, tcp=True),
                    overload=overload)
    wires = []
    sock = client_host.bind_udp("10.5.0.1", 0,
                                lambda s, d, a, p: wires.append(d))
    for msg_id, (qname, qtype, edns) in enumerate(QUERIES, start=1):
        query = Message.make_query(Name.from_text(qname), qtype,
                                   msg_id=msg_id, edns=edns)
        loop.call_at(0.05 * msg_id, sock.sendto, query.to_wire(),
                     "10.5.0.2", DNS_PORT)
    loop.run(max_time=10)
    return wires


def run_tcp(overload):
    loop = EventLoop()
    network = Network(loop)
    server_host = network.add_host("server", "10.5.0.2")
    client_host = network.add_host("client", "10.5.0.1")
    zone = read_zone(ZONE, origin=Name.from_text("example.com."))
    HostedDnsServer(server_host, AuthoritativeServer.single_view([zone]),
                    config=TransportConfig(udp=True, tcp=True),
                    overload=overload)
    stack = TcpStack(client_host)
    framer = StreamFramer()
    wires = []
    framer.on_message = lambda w: wires.append(w)
    conn = stack.connect("10.5.0.1", "10.5.0.2", DNS_PORT,
                         TcpOptions(nagle=False))
    conn.on_data = lambda cn, d: framer.feed(d)
    for msg_id, (qname, qtype, edns) in enumerate(QUERIES, start=1):
        query = Message.make_query(Name.from_text(qname), qtype,
                                   msg_id=msg_id, edns=edns)
        loop.call_at(0.05 * msg_id, conn.send,
                     frame_message(query.to_wire()))
    loop.run(max_time=10)
    return wires


def inert_oracle(driver):
    """Baseline: no overload control at all.  Candidate: the overload
    configuration passed as the workload."""
    return Oracle(f"overload-inert-{driver.__name__}",
                  baseline=lambda _config: Observation(tuple(driver(None))),
                  candidate=lambda config: Observation(tuple(driver(config))))


@pytest.mark.parametrize("driver", [run_udp, run_tcp],
                         ids=["udp", "tcp"])
class TestDefaultsAreInert:
    def test_default_config_matches_no_config(self, driver):
        report = inert_oracle(driver).check(OverloadConfig())
        assert len(report.baseline.wires) == len(QUERIES)

    def test_generous_limits_match_no_config(self, driver):
        inert_oracle(driver).check(GENEROUS)


def test_default_config_builds_no_control():
    loop = EventLoop()
    network = Network(loop)
    host = network.add_host("server", "10.5.0.2")
    zone = read_zone(ZONE, origin=Name.from_text("example.com."))
    server = HostedDnsServer(host,
                             AuthoritativeServer.single_view([zone]),
                             overload=OverloadConfig())
    # An all-defaults config is indistinguishable from no config: the
    # hosting layer never even constructs the control pipeline.
    assert server.overload is None
