"""Differential + accuracy tests for telemetry on the replay pipeline.

The subsystem's contract is *observation only*: a replay with full
tracing, metrics, and sampling enabled must produce byte-identical
response streams and identical ``ReplayResult`` statistics to the same
replay with telemetry off — faults included.  On top of that, what it
records must be accurate: spans covering >= 99% of answered queries,
a Chrome-loadable timeline, and latency quantiles within one histogram
bucket of the exact per-query percentiles.
"""

import json

import pytest

from repro.experiments.fig6_timing import wildcard_example_zone
from repro.experiments.topology import build_evaluation_topology
from repro.netsim import FaultInjector, FaultPlan, FaultSpec, RetryPolicy
from repro.replay import (DistributedConfig, ProcessTopology, QuerierConfig,
                          ReplayConfig, SimReplayEngine,
                          UdpEchoServerProcess)
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.telemetry import Telemetry, TelemetryConfig, chrome_trace
from repro.trace import fixed_interval_trace, percentile, table1_synthetic
from repro.verify import Observation, Oracle

QUERY_COUNT = 300  # syn-1 at 0.1 s intervals for 30 s

FULL_ON = TelemetryConfig(trace=True, metrics=True, timeseries_period=2.0)


def run_syn1(telemetry=None, faults=False, batch_window=None,
             batch_sends=True):
    """One fast syn-1 replay; returns (result, server response wires)."""
    testbed = build_evaluation_topology()
    server = AuthoritativeServer.single_view([wildcard_example_zone()])
    HostedDnsServer(testbed.server_host, server, telemetry=telemetry)
    wires = []
    testbed.server_host.capture_hooks.append(
        lambda direction, packet: wires.append(packet.segment.data)
        if direction == "out" and packet.protocol == "udp" else None)
    retry = None
    if faults:
        # A lossy window covering the whole (fast, time-compressed) run
        # plus the retry budget to ride it out: the recovery path
        # (timeouts, re-sends) must trace identically.
        FaultInjector(testbed.network, FaultPlan([
            FaultSpec("loss", start=0.0, duration=120.0, rate=0.3)]),
            seed=7)
        retry = RetryPolicy(udp_timeout=0.5, max_retries=4)
    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(track_timing=False, fast_replay_rate=50000.0,
                     batch_window=batch_window, batch_sends=batch_sends,
                     querier=QuerierConfig(retry=retry)),
        telemetry=telemetry)
    trace = table1_synthetic("syn-1", duration=30.0, server="10.0.0.2")
    assert len(trace.records) == QUERY_COUNT
    result = engine.replay(trace, extra_time=10.0)
    if telemetry is not None:
        telemetry.stop()
    return result, wires


def result_facts(result):
    return {
        "sent": [(q.index, q.qname, q.sent_at, q.answered_at,
                  q.retries, q.timeouts) for q in result.sent],
        "failures": result.failure_counts(),
        "degradation": result.degradation(),
    }


def observe_syn1(telemetry_factory, **config):
    """Runner for the inertness oracle: the workload is the ``faults``
    flag, the observation is every response wire plus result facts."""
    def runner(faults):
        result, wires = run_syn1(telemetry_factory(), faults=faults,
                                 **config)
        return Observation.capture(wires, facts=result_facts(result))
    return runner


class TestTelemetryIsInert:
    @pytest.mark.parametrize("faults", [False, True],
                             ids=["clean", "faulty"])
    def test_full_telemetry_changes_nothing(self, faults):
        # Baseline: telemetry off.  Candidate: everything on.  The
        # response stream and the ReplayResult must not move by a byte.
        Oracle("telemetry-inert",
               baseline=observe_syn1(lambda: None),
               candidate=observe_syn1(lambda: Telemetry(FULL_ON))
               ).check(faults)

    def test_telemetry_inert_through_batched_path(self):
        # Same inertness contract on the batched datagram path: with
        # send times quantized into batch windows, telemetry-on must
        # still not move the response stream or the result by a byte.
        # (Per-query tracing routes sends through the per-item path, so
        # this doubles as a batched-vs-sequential differential.)
        window = 2.5e-4
        Oracle("telemetry-inert-batched",
               baseline=observe_syn1(lambda: None, batch_window=window),
               candidate=observe_syn1(lambda: Telemetry(FULL_ON),
                                      batch_window=window)
               ).check(False)

    def test_batched_sends_change_nothing(self):
        # The batch path itself is inert: identical windows, batching
        # on vs off, every query sees the same bytes at the same times.
        # Grouping sends per querier may rotate the order *within* one
        # simulated instant (simultaneous events have no defined order),
        # so the comparison keys facts by query index and wires as a
        # multiset rather than by emission order.
        window = 2.5e-4
        runs = {}
        for batch_sends in (False, True):
            result, wires = run_syn1(batch_window=window,
                                     batch_sends=batch_sends)
            facts = result_facts(result)
            facts["sent"] = sorted(facts["sent"])
            runs[batch_sends] = (sorted(bytes(w) for w in wires), facts)
        assert runs[True] == runs[False]

    def test_default_config_attaches_nothing(self):
        telemetry = Telemetry()  # all-off defaults
        testbed = build_evaluation_topology()
        server = AuthoritativeServer.single_view([wildcard_example_zone()])
        hosted = HostedDnsServer(testbed.server_host, server,
                                 telemetry=telemetry)
        engine = SimReplayEngine(testbed.network, telemetry=telemetry)
        # No per-query hooks anywhere: the hot paths stay one None check.
        assert hosted.telemetry is None
        assert testbed.network.telemetry is None
        assert all(q.telemetry is None for q in engine.queriers)


class TestTracingAccuracy:
    @pytest.fixture(scope="class")
    def traced(self):
        telemetry = Telemetry(FULL_ON)
        result, _wires = run_syn1(telemetry)
        return telemetry, result

    def test_span_coverage(self, traced):
        telemetry, result = traced
        assert result.answered_fraction() == 1.0
        assert telemetry.coverage(result) >= 0.99

    def test_chrome_trace_valid_and_complete(self, traced):
        telemetry, result = traced
        doc = json.loads(json.dumps(chrome_trace(telemetry)))
        events = doc["traceEvents"]
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        answered = sum(1 for q in result.sent
                       if q.answered_at is not None)
        assert len(begins) == len(ends) == len(result.sent)
        assert len(begins) >= 0.99 * answered
        # Every span carries the query id and sits on a querier lane.
        assert {e["pid"] for e in begins} == {1}
        assert all("id" in e for e in begins)
        # The server and network actors both contributed instants.
        names = {e["name"] for e in events}
        assert "server.recv" in names
        assert "server.respond" in names
        assert "net.transmit_query" in names
        assert "net.transmit_response" in names
        # Sampler columns render as counter tracks.
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "replay.queries_sent" in counters

    def test_latency_histogram_matches_result(self, traced):
        telemetry, result = traced
        histogram = telemetry.metrics.histogram("query.latency_s")
        exact = sorted(result.latencies())
        assert histogram.count == len(exact)
        for q in (0.50, 0.99):
            _rep, low, high = histogram.quantile_bounds(q)
            assert low <= percentile(exact, q) <= high

    def test_server_events_attributed(self, traced):
        telemetry, _result = traced
        tracer = telemetry.tracer
        recv = [e for e in tracer.events if e[3] == "server.recv"]
        assert len(recv) == QUERY_COUNT
        assert all(e[2] is not None for e in recv)  # all correlated

    def test_faulty_run_records_fault_verdicts(self):
        telemetry = Telemetry(TelemetryConfig(trace=True))
        result, _wires = run_syn1(telemetry, faults=True)
        kinds = [e for e in telemetry.tracer.events if e[3] == "net.fault"]
        assert kinds
        assert all(e[5] == {"kind": "loss"} for e in kinds)
        # The retry path closed every span it reopened.
        assert result.retries > 0
        assert telemetry.coverage(result) >= 0.99


def run_process_tree(telemetry=None):
    """One small multi-process replay (controller → 2 distributors →
    4 queriers → echo server); returns (topology, result, trace)."""
    trace = fixed_interval_trace(interval=0.004, duration=0.5,
                                 client_count=8)
    config = DistributedConfig(distributors=2, queriers_per_distributor=2,
                               topology="processes", settle_time=0.5)
    with UdpEchoServerProcess() as echo:
        topology = ProcessTopology((echo.address, echo.port), config,
                                   telemetry=telemetry)
        result = topology.replay(trace)
    return topology, result, trace


def process_facts(result):
    """The deterministic face of a multi-process ReplayResult: what was
    sent and what came back.  Wall-clock timings are excluded (two
    healthy runs never schedule to the nanosecond), and so are the
    merge-order-dependent global index and the querier binding — sticky
    assignment keys on querier *registration* order at the distributor,
    which is a process-startup race in any run, telemetry or not."""
    return {
        "sent": sorted((q.source, q.trace_time, q.qname, q.protocol,
                        q.answered_at is not None) for q in result.sent),
        "failures": result.failure_counts(),
        "degradation": result.degradation(),
    }


@pytest.mark.observability
class TestClusterTelemetryIsInert:
    """ISSUE 9: the differential guarantee extends to the whole process
    tree — streaming off means the workers never see a telemetry object
    and the merged result is identical to a telemetry-free run."""

    def test_streaming_off_is_identical_to_no_telemetry(self):
        baseline_topology, baseline, trace = run_process_tree(None)
        # trace=True alone (no stream_period) must not light up the
        # cluster path either: streaming is its own opt-in.
        hub = Telemetry(TelemetryConfig(trace=True))
        candidate_topology, candidate, _ = run_process_tree(hub)
        assert baseline_topology.cluster is None
        assert candidate_topology.cluster is None
        assert process_facts(candidate) == process_facts(baseline)
        assert len(baseline.sent) == len(trace.records)

    def test_streaming_on_aggregate_equals_final_metrics(self):
        """Streamed cumulative counters, merged latest-seq-wins, land on
        exactly the end-of-run merged METRICS values."""
        hub = Telemetry(TelemetryConfig(trace=True, stream_period=0.1))
        topology, result, trace = run_process_tree(hub)
        cluster = topology.cluster
        assert cluster is not None
        streamed = cluster.merged_metrics()
        final = topology.metrics
        for counter in ("replay.records_sent", "replay.records_received",
                        "replay.records_routed"):
            assert streamed.count(counter) == final.count(counter), counter
        assert streamed.count("replay.records_sent") == len(result.sent)
        assert len(result.sent) == len(trace.records)
        # The streamed latency histogram is the final histogram.
        streamed_hist = streamed.histogram("query.latency_s")
        final_hist = final.histogram("query.latency_s")
        assert streamed_hist.count == final_hist.count
        assert streamed_hist.to_state() == final_hist.to_state()


class TestSampledTracing:
    def test_one_in_ten_sampling(self):
        telemetry = Telemetry(TelemetryConfig(trace=True, trace_sample=10))
        result, _wires = run_syn1(telemetry)
        tracer = telemetry.tracer
        expected = len(range(0, QUERY_COUNT, 10))
        assert tracer.spans_begun == expected
        assert telemetry.coverage(result) >= 0.99
        # Unsampled queries must not leak any events.
        qids = {e[2] for e in tracer.events if e[2] is not None}
        assert all(qid % 10 == 0 for qid in qids)
