"""Tests for the perf-counter registry (repro.perf)."""

import json

from repro.perf import PerfCounters, get_counters, reset_counters


class TestCounters:
    def test_incr_and_count(self):
        perf = PerfCounters()
        assert perf.count("x") == 0
        perf.incr("x")
        perf.incr("x", 4)
        assert perf.count("x") == 5

    def test_counters_are_independent(self):
        a, b = PerfCounters(), PerfCounters()
        a.incr("x")
        assert b.count("x") == 0


class TestTimings:
    def test_timed_accumulates(self):
        perf = PerfCounters()
        with perf.timed("phase"):
            pass
        first = perf.seconds("phase")
        assert first >= 0.0
        with perf.timed("phase"):
            pass
        assert perf.seconds("phase") >= first

    def test_timed_records_on_exception(self):
        perf = PerfCounters()
        try:
            with perf.timed("phase"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "phase_s" in perf.snapshot()

    def test_add_time_direct(self):
        perf = PerfCounters()
        perf.add_time("run", 1.5)
        perf.add_time("run", 0.5)
        assert perf.seconds("run") == 2.0


class TestGauges:
    def test_set_and_read(self):
        perf = PerfCounters()
        assert perf.gauge("qps") is None
        perf.set_gauge("qps", 100.0)
        perf.set_gauge("qps", 200.0)  # last write wins
        assert perf.gauge("qps") == 200.0


class TestDerived:
    def test_hit_rate(self):
        perf = PerfCounters()
        assert perf.hit_rate("hits", "misses") is None
        perf.incr("hits", 9)
        perf.incr("misses", 1)
        assert perf.hit_rate("hits", "misses") == 0.9

    def test_rate(self):
        perf = PerfCounters()
        assert perf.rate("events", "run") is None
        perf.incr("events", 100)
        perf.add_time("run", 2.0)
        assert perf.rate("events", "run") == 50.0


class TestAggregation:
    def test_snapshot_flattens_with_suffix(self):
        perf = PerfCounters()
        perf.incr("queries", 3)
        perf.add_time("run", 1.0)
        perf.set_gauge("qps", 3.0)
        snap = perf.snapshot()
        assert snap == {"queries": 3, "run_s": 1.0, "qps": 3.0}

    def test_merge(self):
        a, b = PerfCounters(), PerfCounters()
        a.incr("x", 1)
        b.incr("x", 2)
        b.add_time("run", 0.5)
        b.set_gauge("qps", 7.0)
        a.merge(b)
        assert a.count("x") == 3
        assert a.seconds("run") == 0.5
        assert a.gauge("qps") == 7.0

    def test_reset(self):
        perf = PerfCounters()
        perf.incr("x")
        perf.add_time("run", 1.0)
        perf.set_gauge("qps", 1.0)
        perf.reset()
        assert perf.snapshot() == {}

    def test_to_json_round_trips(self):
        perf = PerfCounters()
        perf.incr("queries", 42)
        assert json.loads(perf.to_json()) == {"queries": 42}


class TestGlobalRegistry:
    def test_shared_instance(self):
        reset_counters()
        try:
            get_counters().incr("x")
            assert get_counters().count("x") == 1
        finally:
            reset_counters()
        assert get_counters().count("x") == 0


class TestReportRendering:
    def test_render_perf_counters(self):
        from repro.experiments.report import render_perf_counters
        perf = PerfCounters()
        assert "no perf counters" in render_perf_counters(perf)
        perf.incr("server.wire_cache_hits", 9)
        perf.incr("server.wire_cache_misses", 1)
        perf.incr("replay.events_processed", 100)
        perf.incr("replay.queries_scheduled", 50)
        perf.add_time("replay.run", 2.0)
        text = render_perf_counters(perf)
        assert "server.wire_cache_hit_rate" in text
        assert "0.900" in text
        assert "replay.events_per_wall_s" in text
        assert "50" in text  # events/sec = 100 / 2.0
