"""Tests for the resolver TTL cache."""

import pytest

from repro.dns import Name, RRClass, RRType, RRset
from repro.dns import rdata as rd
from repro.server import CacheOutcome, DnsCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def a_rrset(name="www.example.com.", ttl=300, address="192.0.2.1"):
    return RRset(Name.from_text(name), RRClass.IN, RRType.A, ttl,
                 [rd.A(address)])


def ns_rrset(name, targets, ttl=3600):
    return RRset(Name.from_text(name), RRClass.IN, RRType.NS, ttl,
                 [rd.NS(Name.from_text(t)) for t in targets])


@pytest.fixture
def cache():
    clock = FakeClock()
    return clock, DnsCache(clock)


class TestPositive:
    def test_hit_before_expiry(self, cache):
        clock, c = cache
        c.put(a_rrset())
        outcome, entry = c.get(Name.from_text("www.example.com."), RRType.A)
        assert outcome == CacheOutcome.HIT
        assert entry.rrset.rdatas[0].address == "192.0.2.1"

    def test_miss_after_ttl(self, cache):
        clock, c = cache
        c.put(a_rrset(ttl=300))
        clock.now = 301.0
        outcome, _entry = c.get(Name.from_text("www.example.com."), RRType.A)
        assert outcome == CacheOutcome.MISS

    def test_case_insensitive_key(self, cache):
        clock, c = cache
        c.put(a_rrset("WWW.Example.COM."))
        outcome, _ = c.get(Name.from_text("www.example.com."), RRType.A)
        assert outcome == CacheOutcome.HIT

    def test_max_ttl_clamped(self, cache):
        clock, c = cache
        c.max_ttl = 100.0
        c.put(a_rrset(ttl=99999))
        clock.now = 101.0
        outcome, _ = c.get(Name.from_text("www.example.com."), RRType.A)
        assert outcome == CacheOutcome.MISS


class TestNegative:
    def test_negative_hit(self, cache):
        clock, c = cache
        c.put_negative(Name.from_text("no.example.com."), RRType.A, 60, 3)
        outcome, entry = c.get(Name.from_text("no.example.com."), RRType.A)
        assert outcome == CacheOutcome.NEGATIVE_HIT
        assert entry.negative_rcode == 3

    def test_negative_expiry(self, cache):
        clock, c = cache
        c.put_negative(Name.from_text("no.example.com."), RRType.A, 60, 3)
        clock.now = 61.0
        outcome, _ = c.get(Name.from_text("no.example.com."), RRType.A)
        assert outcome == CacheOutcome.MISS


class TestEviction:
    def test_eviction_at_capacity(self, cache):
        clock, c = cache
        c.max_entries = 3
        for i in range(4):
            c.put(a_rrset(f"h{i}.example.com.", ttl=100 + i))
        assert len(c) == 3
        assert c.evictions == 1
        # The soonest-to-expire (h0, ttl 100) was evicted.
        outcome, _ = c.get(Name.from_text("h0.example.com."), RRType.A)
        assert outcome == CacheOutcome.MISS

    def test_expire_now(self, cache):
        clock, c = cache
        c.put(a_rrset("a.example.com.", ttl=10))
        c.put(a_rrset("b.example.com.", ttl=1000))
        clock.now = 50.0
        assert c.expire_now() == 1
        assert len(c) == 1

    def test_flush(self, cache):
        clock, c = cache
        c.put(a_rrset())
        c.flush()
        assert len(c) == 0


class TestBestNameservers:
    def test_deepest_wins(self, cache):
        clock, c = cache
        c.put(ns_rrset(".", ["a.root-servers.net."]))
        c.put(ns_rrset("com.", ["a.gtld-servers.net."]))
        c.put(ns_rrset("example.com.", ["ns1.example.com."]))
        best = c.best_nameservers(Name.from_text("www.example.com."))
        assert best.name == Name.from_text("example.com.")

    def test_falls_back_up_the_tree(self, cache):
        clock, c = cache
        c.put(ns_rrset(".", ["a.root-servers.net."]))
        c.put(ns_rrset("com.", ["a.gtld-servers.net."], ttl=10))
        clock.now = 11.0  # com NS expired
        best = c.best_nameservers(Name.from_text("www.example.com."))
        assert best.name == Name(())

    def test_none_when_empty(self, cache):
        clock, c = cache
        assert c.best_nameservers(Name.from_text("x.")) is None


class TestStats:
    def test_stat_counts(self, cache):
        clock, c = cache
        c.put(a_rrset())
        c.get(Name.from_text("www.example.com."), RRType.A)
        c.get(Name.from_text("other.example.com."), RRType.A)
        c.put_negative(Name.from_text("neg.example.com."), RRType.A, 60, 0)
        c.get(Name.from_text("neg.example.com."), RRType.A)
        stats = c.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["negative_hits"] == 1
        assert stats["insertions"] == 2
