"""Sharded simulation scale-out benchmark (ROADMAP item 3's target).

Launches a :class:`~repro.replay.multiproc.ShardTopology` — one
self-sourcing simulation shard per core, each replaying its
sticky-by-source slice of a Zipf workload against its own server
replica — and records per-shard and aggregate q/s in
``BENCH_multiproc.json`` alongside the PR-5 threads/processes sweep.

The ≥50 k q/s aggregate assertion needs real cores: shards on a 1-CPU
host time-slice one core and the "aggregate" would be a lie.  Per the
honest-recording precedent, the assertion self-gates on
``os.cpu_count() >= 4`` and the record carries an explicit
``skip_reason`` whenever the gate holds it back — the measured numbers
are written unconditionally either way.
"""

import os

from conftest import run_once

from repro.replay import ShardTopology

NUM_SHARDS = 4
QUERY_COUNT = 40000
CLIENT_COUNT = 128
AGGREGATE_FLOOR_QPS = 50000.0
MIN_CPUS_FOR_AGGREGATE = 4
BATCH_WINDOW = 2.5e-4


def _run_sharded():
    topo = ShardTopology(
        NUM_SHARDS,
        trace_factory=("repro.trace.synthetic", "zipf_trace",
                       {"query_count": QUERY_COUNT,
                        "client_count": CLIENT_COUNT,
                        "server": "10.0.0.2"}),
        scenario_factory=("repro.replay.multiproc",
                          "default_shard_scenario",
                          {"batch_window": BATCH_WINDOW}),
    )
    result = topo.replay()
    return topo, result


def test_sharded_replay_aggregate(benchmark, bench_json_record):
    topo, result = run_once(benchmark, _run_sharded)
    cpus = os.cpu_count() or 1

    walls = [wall for wall in topo.shard_walls if wall]
    # Aggregate over the concurrency window: with one process per core
    # the shards genuinely overlap, so the slowest shard's wall clock
    # bounds the whole replay.  Total/controller-wall is also recorded
    # (it includes spawn + trace regeneration + collection).
    concurrent_qps = (len(result.sent) / max(walls)) if walls else 0.0
    wall_qps = topo.aggregate_qps() or 0.0
    gated = cpus >= MIN_CPUS_FOR_AGGREGATE
    skip_reason = (None if gated else
                   f"host has {cpus} cpu(s) < {MIN_CPUS_FOR_AGGREGATE}: "
                   f"shards time-slice one core, so the >= "
                   f"{AGGREGATE_FLOOR_QPS:.0f} q/s aggregate assertion "
                   f"is not run")

    bench_json_record(
        "sharded_replay",
        cpu_count=cpus,
        num_shards=NUM_SHARDS,
        query_count=QUERY_COUNT,
        batch_window=BATCH_WINDOW,
        shard_walls_s=[round(wall, 4) if wall else None
                       for wall in topo.shard_walls],
        aggregate_qps_concurrent=round(concurrent_qps, 1),
        aggregate_qps_wall=round(wall_qps, 1),
        aggregate_floor_qps=AGGREGATE_FLOOR_QPS,
        aggregate_asserted=gated,
        skip_reason=skip_reason,
        answered_fraction=result.answered_fraction(),
        lost_shards=topo.lost_shards,
    )
    print(f"\nshards:     {NUM_SHARDS} over {cpus} cpu(s)")
    print(f"walls:      {['%.2fs' % wall for wall in walls]}")
    print(f"aggregate:  {concurrent_qps:>10,.0f} q/s concurrent, "
          f"{wall_qps:>10,.0f} q/s end-to-end")
    if skip_reason:
        print(f"gate:       {skip_reason}")

    # Correctness holds regardless of core count: every record landed on
    # exactly one shard and every query was answered.
    assert topo.lost_shards == 0
    assert len(result.sent) == QUERY_COUNT
    assert result.answered_fraction() == 1.0
    if gated:
        assert concurrent_qps >= AGGREGATE_FLOOR_QPS, (
            f"sharded aggregate only {concurrent_qps:,.0f} q/s "
            f"on {cpus} cpus")
