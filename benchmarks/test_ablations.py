"""Ablations of LDplayer's design choices (DESIGN.md's ablation list).

Each test removes one design element and shows the paper's choice wins:

* the customized binary input format vs parsing text/pcap on the hot path,
* the Reader's pre-loaded input window vs none,
* sticky same-source routing vs random spraying (connection reuse),
* the Δt̄ − Δt timing correction vs a naive fixed-gap sender,
* the split-horizon meta-server vs one host per nameserver address,
* Nagle on vs off at the replay client (the paper's optimization).
"""

import io
import time

from conftest import run_once

from repro.experiments import build_evaluation_topology
from repro.experiments.fig6_timing import wildcard_example_zone
from repro.hierarchy import HierarchyEmulation, SimulatedInternet, \
    address_to_zones
from repro.netsim import EventLoop, Network
from repro.replay import QuerierConfig, ReplayConfig, SimReplayEngine
from repro.server import AuthoritativeServer, HostedDnsServer, \
    TransportConfig
from repro.trace import (BRootWorkload, QueryMutator, all_protocol,
                         fixed_interval_trace, make_hierarchy_zones,
                         make_root_zone, read_binary, read_pcap, read_text,
                         retarget, write_binary, write_pcap, write_text)


class TestInputFormatAblation:
    """§2.5: binary beats text and pcap on the replay input path."""

    def test_binary_input_fastest(self, benchmark):
        trace = fixed_interval_trace(0.001, 20.0, name="fmt-bench")

        binary_buffer = io.BytesIO()
        write_binary(trace, binary_buffer)
        text_buffer = io.StringIO()
        write_text(trace, text_buffer)
        pcap_buffer = io.BytesIO()
        write_pcap(trace, pcap_buffer)

        def parse_all():
            timings = {}
            start = time.perf_counter()
            binary_buffer.seek(0)
            count_binary = len(read_binary(binary_buffer))
            timings["binary"] = time.perf_counter() - start

            start = time.perf_counter()
            text_buffer.seek(0)
            count_text = len(read_text(text_buffer))
            timings["text"] = time.perf_counter() - start

            start = time.perf_counter()
            pcap_buffer.seek(0)
            count_pcap = len(read_pcap(pcap_buffer))
            timings["pcap"] = time.perf_counter() - start
            assert count_binary == count_text == count_pcap == len(trace)
            return timings

        timings = benchmark.pedantic(parse_all, rounds=1, iterations=1)
        rate = {fmt: len(trace) / seconds
                for fmt, seconds in timings.items()}
        print(f"\nparse rates (records/s): "
              + ", ".join(f"{fmt}={value:,.0f}"
                          for fmt, value in rate.items()))
        assert rate["binary"] > rate["text"]
        assert rate["binary"] > rate["pcap"]


class TestInputWindowAblation:
    """§3: the Reader pre-loads a window to avoid falling behind."""

    def test_window_prevents_lateness(self, benchmark):
        def run_with(window):
            testbed = build_evaluation_topology()
            HostedDnsServer(testbed.server_host,
                            AuthoritativeServer.single_view(
                                [wildcard_example_zone()]))
            trace = QueryMutator([retarget(testbed.server_address)]).apply(
                fixed_interval_trace(0.001, 3.0))
            engine = SimReplayEngine(testbed.network, ReplayConfig(
                input_window=window,
                input_delay_per_record=0.002))  # slow input: 2 ms/record
            result = engine.replay(trace)
            errors = result.send_time_errors()
            return max(errors)

        def both():
            return run_with(window=5000), run_with(window=1)

        windowed, unwindowed = benchmark.pedantic(both, rounds=1,
                                                  iterations=1)
        print(f"\nmax lateness: window=5000 -> {windowed * 1e3:.1f} ms, "
              f"window=1 -> {unwindowed * 1e3:.1f} ms")
        assert windowed < 0.005
        assert unwindowed > 0.5  # input starvation makes replay drift late


class TestAffinityAblation:
    """§2.6: sticky source routing is what enables connection reuse."""

    def test_reuse_drops_without_affinity(self, benchmark):
        def run_with(affinity):
            testbed = build_evaluation_topology()
            HostedDnsServer(
                testbed.server_host,
                AuthoritativeServer.single_view([make_root_zone(30)]),
                config=TransportConfig(tcp_idle_timeout=20.0))
            base = BRootWorkload(duration=20.0, mean_rate=80,
                                 seed=33).generate()
            trace = QueryMutator([retarget(testbed.server_address),
                                  all_protocol("tcp")]).apply(base)
            engine = SimReplayEngine(testbed.network, ReplayConfig(
                same_source_affinity=affinity))
            result = engine.replay(trace)
            return result.reuse_fraction(), \
                testbed.server_host.tcp_stack.total_accepted

        def both():
            return run_with(True), run_with(False)

        (sticky_reuse, sticky_conns), (random_reuse, random_conns) = \
            benchmark.pedantic(both, rounds=1, iterations=1)
        print(f"\nreuse: sticky={sticky_reuse:.2f} ({sticky_conns} conns), "
              f"random={random_reuse:.2f} ({random_conns} conns)")
        assert sticky_reuse > random_reuse
        assert sticky_conns < random_conns


class TestTimingCorrectionAblation:
    """§2.6: ΔT = Δt̄ − Δt absorbs processing delay; naive senders drift."""

    def test_naive_sender_drifts(self, benchmark):
        def compare():
            trace = fixed_interval_trace(0.001, 5.0)
            per_record_cost = 0.0002  # 0.2 ms of processing per query

            # Naive: sleep the inter-arrival gap, pay the cost on top.
            naive_clock = 0.0
            naive_errors = []
            previous = trace[0].timestamp
            for record in trace:
                naive_clock += (record.timestamp - previous) \
                    + per_record_cost
                previous = record.timestamp
                naive_errors.append(naive_clock - record.timestamp)

            # LDplayer: target absolute times, compensate for the cost.
            corrected_clock = 0.0
            corrected_errors = []
            for record in trace:
                corrected_clock = max(corrected_clock + per_record_cost,
                                      record.timestamp)
                corrected_errors.append(corrected_clock - record.timestamp)
            return max(naive_errors), max(corrected_errors)

        naive_drift, corrected_drift = benchmark.pedantic(
            compare, rounds=1, iterations=1)
        print(f"\nmax drift: naive={naive_drift:.3f}s, "
              f"corrected={corrected_drift * 1e3:.3f}ms")
        assert naive_drift > 0.5       # 5000 queries x 0.2 ms accumulates
        assert corrected_drift < 0.001


class TestDeploymentAblation:
    """§2.4: the meta-server collapses the per-zone host fleet."""

    def test_host_count_collapse(self, benchmark):
        zones = make_hierarchy_zones(5, 8)

        def deploy_both():
            loop_a = EventLoop()
            internet = SimulatedInternet(Network(loop_a), zones)
            loop_b = EventLoop()
            emulation = HierarchyEmulation(Network(loop_b), zones)
            return internet.server_count(), 1, emulation.view_count()

        naive_hosts, meta_hosts, views = benchmark.pedantic(
            deploy_both, rounds=1, iterations=1)
        print(f"\nnaive hosts={naive_hosts}, meta hosts={meta_hosts}, "
              f"views={views}")
        assert naive_hosts == len(address_to_zones(zones))
        assert naive_hosts > 20
        assert meta_hosts == 1
        assert views == naive_hosts  # one view per collapsed address


class TestNagleAblation:
    """§5.2: disabling Nagle at the client removes send stalls."""

    def test_client_nagle_increases_latency(self, benchmark):
        def run_with(nagle):
            testbed = build_evaluation_topology(client_rtt=0.040)
            HostedDnsServer(
                testbed.server_host,
                AuthoritativeServer.single_view([make_root_zone(30)]),
                config=TransportConfig(tcp_idle_timeout=20.0))
            base = BRootWorkload(duration=10.0, mean_rate=60,
                                 seed=44).generate()
            trace = QueryMutator([retarget(testbed.server_address),
                                  all_protocol("tcp")]).apply(base)
            engine = SimReplayEngine(testbed.network, ReplayConfig(
                querier=QuerierConfig(nagle=nagle)))
            result = engine.replay(trace)
            latencies = sorted(result.latencies())
            return latencies[len(latencies) * 3 // 4]  # p75

        def both():
            return run_with(False), run_with(True)

        nodelay_p75, nagle_p75 = benchmark.pedantic(both, rounds=1,
                                                    iterations=1)
        print(f"\np75 latency: nodelay={nodelay_p75 * 1e3:.1f} ms, "
              f"nagle={nagle_p75 * 1e3:.1f} ms")
        assert nagle_p75 >= nodelay_p75
