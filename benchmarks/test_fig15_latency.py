"""Figure 15: query latency vs client-server RTT."""

from conftest import run_once

from repro.experiments import fig15_latency


def find(points, protocol, rtt, group):
    for point in points:
        if (point.protocol, point.rtt_ms, point.group) == \
                (protocol, rtt, group):
            return point
    raise AssertionError(f"missing point {protocol}/{rtt}/{group}")


def test_fig15_latency_vs_rtt(benchmark, bench_scale):
    points = run_once(benchmark, fig15_latency.measure, bench_scale,
                      rtts_ms=(20.0, 80.0, 160.0))
    for point in points:
        print(f"{point.protocol:9s} rtt={point.rtt_ms:5.0f}ms "
              f"{point.group:8s} median={point.stats['median'] * 1e3:7.1f}ms "
              f"({point.median_rtt_multiple():.2f} RTT) "
              f"p95={point.stats['p95'] * 1e3:7.1f}ms")

    # 15a — UDP (original) is ~1 RTT everywhere; TCP's all-client median
    # stays close to UDP's (connection reuse by busy clients).
    for rtt in (20.0, 80.0, 160.0):
        udp = find(points, "original", rtt, "all")
        assert abs(udp.median_rtt_multiple() - 1.0) < 0.2
        tcp = find(points, "tcp", rtt, "all")
        assert tcp.stats["median"] < udp.stats["median"] * 2.2

    # 15b — non-busy clients: TCP ~2 RTT with a 1-RTT 25th percentile;
    # TLS grows non-linearly toward 4 RTT.
    tcp_nb = find(points, "tcp", 160.0, "non-busy")
    assert 1.4 < tcp_nb.median_rtt_multiple() < 2.6
    assert tcp_nb.stats["p25"] <= tcp_nb.stats["median"]

    tls_low = find(points, "tls", 20.0, "non-busy")
    tls_mid = find(points, "tls", 80.0, "non-busy")
    tls_high = find(points, "tls", 160.0, "non-busy")
    assert tls_high.median_rtt_multiple() > tls_low.median_rtt_multiple()
    assert 3.0 < tls_high.median_rtt_multiple() < 4.6

    # 15b tails — 95th percentiles reach many RTTs (Nagle/reassembly).
    assert tls_high.stats["p95"] > 4.0 * 0.160


def test_fig15c_client_load_skew(benchmark, bench_scale):
    from repro.experiments.rootserver import RootRunConfig, run_root_replay
    from repro.trace import inactive_client_fraction, top_client_share

    output = run_once(benchmark, run_root_replay,
                      RootRunConfig(scale=bench_scale, protocol="original"))
    share = top_client_share(output.trace, 0.01)
    inactive = inactive_client_fraction(output.trace, 10)
    print(f"\nfig15c: top-1% share={share:.2f} (paper ~0.75), "
          f"inactive={inactive:.2f} (paper ~0.81)")
    assert share > 0.30
    assert inactive > 0.65
