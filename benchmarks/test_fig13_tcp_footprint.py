"""Figure 13: all-TCP server memory and connection footprint."""

from conftest import run_once

from repro.experiments import fig13_14_footprint


def test_fig13_tcp_footprint(benchmark, bench_scale_long):
    output = run_once(benchmark, fig13_14_footprint.run, "tcp",
                      bench_scale_long, timeouts=(5.0, 10.0, 20.0, 40.0))
    print()
    print(output.render())
    rows = {row[0]: row for row in output.rows}

    # Paper landmarks at the 20 s timeout: ~15 GB total, ~60 k
    # ESTABLISHED, TIME_WAIT roughly 2x established.
    mem_20 = rows[20.0][1]
    established_20 = rows[20.0][3]
    time_wait_20 = rows[20.0][4]
    assert 9.0 < mem_20 < 22.0, mem_20
    assert 35_000 < established_20 < 110_000, established_20
    assert time_wait_20 > established_20, (time_wait_20, established_20)

    # Memory and connections rise monotonically with the timeout.
    memories = [rows[t][1] for t in (5.0, 10.0, 20.0, 40.0)]
    assert memories == sorted(memories)
    connections = [rows[t][3] for t in (5.0, 10.0, 20.0, 40.0)]
    assert connections == sorted(connections)

    # UDP-dominated baseline is far below (paper: ~2 GB vs ~15 GB).
    baseline = rows["original/20"][1]
    assert baseline < mem_20 / 2.5
