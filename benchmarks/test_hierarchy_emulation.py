"""§2.4/§4 validation bench: hierarchy emulation correctness at scale."""

from conftest import run_once

from repro.experiments import hierarchy_validation


def test_hierarchy_emulation_correctness(benchmark, bench_scale):
    output = run_once(benchmark, hierarchy_validation.run, bench_scale,
                      max_questions=80)
    print()
    print(output.render())
    rows = {row[0]: row for row in output.rows}

    matched, total = rows["answer equivalence"][1].split("/")
    assert matched == total, "emulation diverged from independent servers"

    naive_hosts = int(rows["deployment cost"][1].split(" -> ")[0].split()[0])
    meta_hosts = int(rows["deployment cost"][1].split(" -> ")[1].split()[0])
    assert meta_hosts == 1
    assert naive_hosts >= 10  # many hosts collapsed into one

    repeated, total2 = rows["repeatability"][1].split("/")
    assert repeated == total2, "replays are not reproducible"
