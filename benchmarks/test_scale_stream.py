"""Streaming-scale smoke: 10⁶ queries through the constant-memory path.

Runs the full streaming pipeline (generate → mutate → sticky shard
write → lazy shard read → aggregate accounting) at 10⁶ queries by
default and asserts RSS stays flat — the property that makes the
10⁸-query replay of the paper's B-Root traces possible on one box.

Scale up with the environment::

    REPRO_SCALE_QUERIES=1e8 pytest benchmarks/test_scale_stream.py \
        --bench-json BENCH_scale.json

The record lands in the ``--bench-json`` document (CI writes
``BENCH_scale.json`` and feeds it to the regression guard).
"""

import os

import pytest

from repro.experiments.scale_bench import FLATNESS_LIMIT, run

pytestmark = pytest.mark.benchmark


def test_scale_stream_flat_rss(bench_json_record, tmp_path):
    query_count = int(float(os.environ.get("REPRO_SCALE_QUERIES", "1e6")))
    workdir = os.environ.get("REPRO_SCALE_WORKDIR") or str(tmp_path)
    record = run(query_count, workdir=workdir)
    bench_json_record("scale_stream", **record)

    # The pipeline is lossless end-to-end (run() also self-checks).
    assert record["accounted_sends"] == query_count
    assert record["bytes_on_disk"] > 0
    assert record["write_qps"] > 0 and record["drain_qps"] > 0

    if record.get("skip_reason"):
        pytest.skip(record["skip_reason"])
    assert record["rss_flat"], (
        f"RSS drifted {record['rss_drift']:.1%} "
        f"(peak {record['rss_peak_kb']} kB vs steady "
        f"{record['rss_steady_kb']} kB); streaming path is not "
        f"constant-memory")
    assert record["rss_drift"] < FLATNESS_LIMIT
