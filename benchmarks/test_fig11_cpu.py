"""Figure 11: server CPU usage vs TCP timeout, per protocol."""

from conftest import run_once

from repro.experiments import fig11_cpu


def test_fig11_cpu_usage(benchmark, bench_scale):
    output = run_once(benchmark, fig11_cpu.run, bench_scale,
                      timeouts=(5.0, 10.0, 20.0, 40.0))
    print()
    print(output.render())
    rows = {(row[0], row[1]): row[2] for row in output.rows}

    # The paper's surprise: the original UDP-dominated trace costs MORE
    # CPU than all-TCP (NIC offload), ~10 % vs ~5 % on 48 cores.
    assert rows[("original", 20.0)] > rows[("tcp", 20.0)]
    assert 2.5 < rows[("tcp", 20.0)] < 9.0
    assert 6.0 < rows[("original", 20.0)] < 15.0

    # TLS lands between, ~9-10 %, with a bump at the 5 s timeout from
    # extra handshake churn.
    assert rows[("tcp", 20.0)] < rows[("tls", 20.0)] < 16.0
    assert rows[("tls", 5.0)] > rows[("tls", 20.0)]

    # Flat across timeouts for TCP (the paper's flat lines).
    tcp_values = [rows[("tcp", t)] for t in (5.0, 10.0, 20.0, 40.0)]
    assert max(tcp_values) - min(tcp_values) < 2.0
