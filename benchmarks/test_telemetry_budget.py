"""Telemetry overhead budget: tracing a syn-1 replay must stay cheap.

Replays the syn-1 synthetic trace (Table 1) through the simulated
pipeline three times — telemetry absent, an all-defaults hub attached,
and the full observability stack (lifecycle tracing + histograms +
sampler) — and records the wall-clock cost of each into the
``--bench-json`` report.  The budget assertions gate the PR: an
attached-but-idle hub must be within noise of no hub at all, and full
tracing must cost less than 2x the untraced wall time.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once

from repro.experiments.fig6_timing import wildcard_example_zone
from repro.experiments.topology import build_evaluation_topology
from repro.replay import ReplayConfig, SimReplayEngine
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.telemetry import Telemetry, TelemetryConfig, chrome_trace
from repro.trace import table1_synthetic

DURATION = 600.0      # syn-1 at 0.1 s intervals => 6000 queries
QUERY_COUNT = 6000


def _replay_syn1(telemetry):
    testbed = build_evaluation_topology()
    server = AuthoritativeServer.single_view([wildcard_example_zone()])
    HostedDnsServer(testbed.server_host, server, telemetry=telemetry)
    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(track_timing=False, fast_replay_rate=200000.0),
        telemetry=telemetry)
    trace = table1_synthetic("syn-1", duration=DURATION, server="10.0.0.2")
    started = time.perf_counter()
    result = engine.replay(trace, extra_time=5.0)
    wall = time.perf_counter() - started
    if telemetry is not None:
        telemetry.stop()
    assert len(result) == QUERY_COUNT
    assert result.answered_fraction() == 1.0
    return {"wall_s": wall, "qps": QUERY_COUNT / wall, "result": result}


@pytest.mark.benchmark
def test_telemetry_budget(benchmark, bench_json_record):
    off = run_once(benchmark, _replay_syn1, None)
    idle_hub = _replay_syn1(Telemetry())  # defaults: records nothing
    full = Telemetry(TelemetryConfig(trace=True, metrics=True,
                                     timeseries_period=10.0))
    traced = _replay_syn1(full)

    ratio_traced = traced["wall_s"] / off["wall_s"]
    ratio_idle = idle_hub["wall_s"] / off["wall_s"]
    coverage = full.coverage(traced["result"])
    events = len(full.tracer.events)
    print()
    print(f"syn-1 x{QUERY_COUNT}: {off['qps']:.0f} q/s off, "
          f"{idle_hub['qps']:.0f} q/s idle hub (x{ratio_idle:.2f}), "
          f"{traced['qps']:.0f} q/s traced (x{ratio_traced:.2f}, "
          f"{events} events, coverage {coverage:.3f})")

    bench_json_record(
        "telemetry_budget_syn1",
        queries=QUERY_COUNT,
        off_qps=round(off["qps"], 1),
        idle_hub_qps=round(idle_hub["qps"], 1),
        traced_qps=round(traced["qps"], 1),
        idle_hub_ratio=round(ratio_idle, 3),
        traced_ratio=round(ratio_traced, 3),
        trace_events=events,
        span_coverage=round(coverage, 4),
    )

    # Budget gates: full tracing under 2x, an idle hub within noise.
    assert ratio_traced < 2.0
    assert ratio_idle < 1.25
    assert coverage >= 0.99
    # And the traced run exports a loadable timeline.
    doc = chrome_trace(full)
    assert sum(1 for e in doc["traceEvents"] if e["ph"] == "b") \
        == QUERY_COUNT
