"""Telemetry overhead budget: tracing a syn-1 replay must stay cheap.

Replays the syn-1 synthetic trace (Table 1) through the simulated
pipeline three times — telemetry absent, an all-defaults hub attached,
and the full observability stack (lifecycle tracing + histograms +
sampler) — and records the wall-clock cost of each into the
``--bench-json`` report.  The budget assertions gate the PR: an
attached-but-idle hub must be within noise of no hub at all, and full
tracing must cost less than 2x the untraced wall time.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once

from repro.experiments.fig6_timing import wildcard_example_zone
from repro.experiments.topology import build_evaluation_topology
from repro.replay import (DistributedConfig, ProcessTopology, ReplayConfig,
                          SimReplayEngine, UdpEchoServerProcess)
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.telemetry import Telemetry, TelemetryConfig, chrome_trace
from repro.trace import fixed_interval_trace, table1_synthetic

DURATION = 600.0      # syn-1 at 0.1 s intervals => 6000 queries
QUERY_COUNT = 6000


def _replay_syn1(telemetry):
    testbed = build_evaluation_topology()
    server = AuthoritativeServer.single_view([wildcard_example_zone()])
    HostedDnsServer(testbed.server_host, server, telemetry=telemetry)
    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(track_timing=False, fast_replay_rate=200000.0),
        telemetry=telemetry)
    trace = table1_synthetic("syn-1", duration=DURATION, server="10.0.0.2")
    started = time.perf_counter()
    result = engine.replay(trace, extra_time=5.0)
    wall = time.perf_counter() - started
    if telemetry is not None:
        telemetry.stop()
    assert len(result) == QUERY_COUNT
    assert result.answered_fraction() == 1.0
    return {"wall_s": wall, "qps": QUERY_COUNT / wall, "result": result}


@pytest.mark.benchmark
def test_telemetry_budget(benchmark, bench_json_record):
    off = run_once(benchmark, _replay_syn1, None)
    idle_hub = _replay_syn1(Telemetry())  # defaults: records nothing
    full = Telemetry(TelemetryConfig(trace=True, metrics=True,
                                     timeseries_period=10.0))
    traced = _replay_syn1(full)

    ratio_traced = traced["wall_s"] / off["wall_s"]
    ratio_idle = idle_hub["wall_s"] / off["wall_s"]
    coverage = full.coverage(traced["result"])
    events = len(full.tracer.events)
    print()
    print(f"syn-1 x{QUERY_COUNT}: {off['qps']:.0f} q/s off, "
          f"{idle_hub['qps']:.0f} q/s idle hub (x{ratio_idle:.2f}), "
          f"{traced['qps']:.0f} q/s traced (x{ratio_traced:.2f}, "
          f"{events} events, coverage {coverage:.3f})")

    bench_json_record(
        "telemetry_budget_syn1",
        queries=QUERY_COUNT,
        off_qps=round(off["qps"], 1),
        idle_hub_qps=round(idle_hub["qps"], 1),
        traced_qps=round(traced["qps"], 1),
        idle_hub_ratio=round(ratio_idle, 3),
        traced_ratio=round(ratio_traced, 3),
        trace_events=events,
        span_coverage=round(coverage, 4),
    )

    # Budget gates: full tracing under 2x, an idle hub within noise.
    assert ratio_traced < 2.0
    assert ratio_idle < 1.25
    assert coverage >= 0.99
    # And the traced run exports a loadable timeline.
    doc = chrome_trace(full)
    assert sum(1 for e in doc["traceEvents"] if e["ph"] == "b") \
        == QUERY_COUNT


STREAM_DURATION = 1.0    # wall-paced: the replay itself takes this long
STREAM_QUERIES = 500     # 16 clients at 2 ms intervals


def _replay_processes(telemetry):
    trace = fixed_interval_trace(interval=0.002, duration=STREAM_DURATION,
                                 client_count=16)
    assert len(trace.records) == STREAM_QUERIES
    config = DistributedConfig(distributors=2, queriers_per_distributor=2,
                               topology="processes", settle_time=0.5)
    with UdpEchoServerProcess() as echo:
        topology = ProcessTopology((echo.address, echo.port), config,
                                   telemetry=telemetry)
        started = time.perf_counter()
        result = topology.replay(trace)
        wall = time.perf_counter() - started
    assert len(result.sent) == STREAM_QUERIES
    return {"wall_s": wall, "qps": STREAM_QUERIES / wall,
            "topology": topology}


@pytest.mark.benchmark
def test_streamed_telemetry_budget(benchmark, bench_json_record):
    """ISSUE 9 budget: streaming live telemetry out of every worker of a
    process topology costs < 1.5x the wall time of the same replay with
    streaming off.  The replay is wall-clock paced, so the streamer's
    cost can only surface as added overhead around it."""
    off = run_once(benchmark, _replay_processes, None)
    hub = Telemetry(TelemetryConfig(trace=True, stream_period=0.1))
    on = _replay_processes(hub)

    ratio = on["wall_s"] / off["wall_s"]
    cluster = on["topology"].cluster
    frames = cluster.frames_ingested
    workers = len(cluster.workers())
    print()
    print(f"process tree x{STREAM_QUERIES}: {off['qps']:.0f} q/s off, "
          f"{on['qps']:.0f} q/s streaming (x{ratio:.2f}, "
          f"{frames} frames from {workers} workers)")

    bench_json_record(
        "telemetry_stream_cluster",
        queries=STREAM_QUERIES,
        stream_off_qps=round(off["qps"], 1),
        stream_on_qps=round(on["qps"], 1),
        stream_ratio=round(ratio, 3),
        telemetry_frames=frames,
        workers=workers,
    )

    assert ratio < 1.5
    # The run actually streamed: several frames from every worker, and
    # the merged aggregate landed on the final record count.
    assert workers == 6
    assert frames >= 2 * workers
    assert cluster.merged_metrics().count("replay.records_sent") \
        == STREAM_QUERIES
