"""Figure 6: replay send-time error quartiles."""

from conftest import run_once

from repro.experiments import fig6_timing


def test_fig6_query_timing_error(benchmark, bench_scale):
    output = run_once(benchmark, fig6_timing.run, bench_scale,
                      max_queries=8000, include_live=True)
    print()
    print(output.render())
    by_trace = {row[0]: row for row in output.rows}

    # Paper: quartiles usually within ±2.5 ms...
    for label in ("1 s", "0.01 s", "0.001 s", "0.0001 s", "B-Root"):
        assert abs(by_trace[label][1]) < 5.0
        assert abs(by_trace[label][3]) < 5.0
    # ...±8 ms at the 0.1 s anomaly...
    assert 3.0 < abs(by_trace["0.1 s"][1]) < 14.0
    # ...and extremes within ±17 ms.
    for row in output.rows:
        if row[0].startswith("live"):
            continue  # real OS timers judged separately below
        assert abs(row[4]) <= 17.01 and abs(row[5]) <= 17.01

    # The live row (real loopback timers) should also be millisecond-class.
    live_rows = [row for row in output.rows if row[0].startswith("live")]
    if live_rows:
        assert abs(live_rows[0][2]) < 20.0


def test_fig6_lossless_replay_leaves_nothing_unanswered():
    # Satellite check: on the clean testbed every query must complete —
    # ReplayResult.unanswered() is the lie detector for "looks done".
    from repro.trace import fixed_interval_trace

    trace = fixed_interval_trace(0.01, 10.0, name="syn-complete")
    result = fig6_timing.replay_one(trace, 0.01)
    assert len(result) == len(trace.records)
    assert result.unanswered() == 0
    assert result.failure_counts()["gave_up"] == 0
