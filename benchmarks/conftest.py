"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
``BENCH`` scale (a client-sampled workload — see DESIGN.md), times the
run with pytest-benchmark, prints the reproduced table next to the
paper's claims, and asserts the qualitative shape the paper reports.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import Scale

# Large enough for stable shapes, small enough for a laptop run.
BENCH = Scale("bench", rate=80.0, duration=60.0, monitor_period=10.0)

# Footprint sweeps need TIME_WAIT (60 s lifetime) to saturate.
BENCH_LONG = Scale("bench-long", rate=60.0, duration=150.0,
                   monitor_period=30.0)


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH


@pytest.fixture(scope="session")
def bench_scale_long():
    return BENCH_LONG


def run_once(benchmark, func, *args, **kwargs):
    """Execute an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


# -- machine-readable benchmark records ---------------------------------
#
# Benchmarks that track the hot-path trajectory (wall-clock q/s, cache
# hit rates) record named measurement dicts; at session end they are
# written as one JSON document so CI and future PRs can diff them.

_BENCH_RECORDS = {}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store", default="BENCH_hotpath.json",
        metavar="PATH",
        help="where to write machine-readable hot-path benchmark "
             "records (relative to the repo root)")


@pytest.fixture(scope="session")
def bench_json_record():
    """A callable recording one named measurement dict into the report.

    Every record carries the host's ``cpu_count`` (a benchmark may
    override it with its own value): scale-out figures are meaningless
    without knowing how many cores the run actually had, and the
    regression guard uses it to decide which assertions were live.
    """
    def record(name, **fields):
        fields.setdefault("cpu_count", os.cpu_count() or 1)
        _BENCH_RECORDS[name] = fields
    return record


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_RECORDS:
        return
    path = Path(session.config.getoption("--bench-json"))
    if not path.is_absolute():
        path = Path(str(session.config.rootpath)) / path
    path.write_text(json.dumps(_BENCH_RECORDS, indent=2, sort_keys=True)
                    + "\n")
