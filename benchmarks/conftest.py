"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
``BENCH`` scale (a client-sampled workload — see DESIGN.md), times the
run with pytest-benchmark, prints the reproduced table next to the
paper's claims, and asserts the qualitative shape the paper reports.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments.common import Scale

# Large enough for stable shapes, small enough for a laptop run.
BENCH = Scale("bench", rate=80.0, duration=60.0, monitor_period=10.0)

# Footprint sweeps need TIME_WAIT (60 s lifetime) to saturate.
BENCH_LONG = Scale("bench-long", rate=60.0, duration=150.0,
                   monitor_period=30.0)


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH


@pytest.fixture(scope="session")
def bench_scale_long():
    return BENCH_LONG


def run_once(benchmark, func, *args, **kwargs):
    """Execute an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
