"""Fault recovery benchmark: syn-1 through loss and a server outage.

The acceptance bar for the fault-injection subsystem: replaying a
Table 1 synthetic trace under 5 % packet loss plus one 2 s server
crash/restart, the retry/reconnect machinery must still complete
≥ 99 % of queries, with nothing silently stranded at drain time.
"""

import pytest

from conftest import run_once

from repro.experiments.fig6_timing import wildcard_example_zone
from repro.experiments.topology import build_evaluation_topology
from repro.netsim import FaultInjector, FaultPlan, RetryPolicy
from repro.replay import QuerierConfig, ReplayConfig, SimReplayEngine
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.trace import make_root_zone, table1_synthetic

pytestmark = pytest.mark.faults


def replay_syn1_with_faults(duration=60.0):
    trace = table1_synthetic("syn-1", duration=duration)
    testbed = build_evaluation_topology()
    HostedDnsServer(testbed.server_host,
                    AuthoritativeServer.single_view(
                        [wildcard_example_zone(), make_root_zone(30)]))
    plan = (FaultPlan()
            # 5 % loss across the whole replay window...
            .loss_burst(start=0.0, duration=duration + 10.0, rate=0.05)
            # ...plus one 2 s server outage in the middle.
            .server_outage(start=duration / 2, duration=2.0,
                           host="server"))
    injector = FaultInjector(testbed.network, plan, seed=3)
    retry = RetryPolicy(udp_timeout=0.5, backoff=2.0, max_timeout=4.0,
                        max_retries=4)
    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(querier=QuerierConfig(retry=retry)))
    result = engine.replay(trace, extra_time=30.0)
    return trace, injector, result


def test_syn1_recovers_from_loss_and_outage(benchmark):
    trace, injector, result = run_once(benchmark, replay_syn1_with_faults)
    counts = result.failure_counts()
    print()
    print(f"{len(result)} queries, injector: {injector.counters()}")
    print(f"recovery: {counts}")

    assert len(result) == len(trace.records)
    # The faults really happened...
    assert injector.dropped_by_loss > 0
    assert injector.crashes == 1 and injector.restarts == 1
    # ...the recovery machinery really ran...
    assert counts["udp_timeouts"] > 0
    assert counts["retries"] > 0
    # ...and ≥99% of queries completed anyway.
    answered = len(result) - counts["unanswered"]
    assert answered / len(result) >= 0.99
    # Nothing hides: at drain time every query is answered (the retry
    # budget comfortably covers 5% loss and a 2 s outage).
    assert counts["unanswered"] == 0
    assert counts["gave_up"] == 0
