"""Crash-recovery benchmark (ISSUE 8 acceptance).

Replays the same trace through a 4-querier recovery-mode process tree
twice — once untouched, once with two queriers SIGKILLed mid-run — and
records both aggregate q/s figures plus the recovery counters in
``BENCH_recovery.json``.  The killed run must conserve every record
(exactly-once merge across the crashed and respawned incarnations) and
reproduce the clean run's per-query facts; the recovered q/s is a
qps-named key so the regression guard tracks it like any other
throughput figure.

Wall-clock here includes the respawn backoff and the redelivery grace
window, so recovered q/s is structurally below clean q/s; the floor
asserts recovery cost stays bounded, not that it is free.
"""

import os
import signal
import threading
import time

from conftest import run_once

from repro.replay import (DistributedConfig, ProcessTopology,
                          RecoveryConfig, UdpEchoServerProcess,
                          conservation_violations)
from repro.trace import fixed_interval_trace

DISTRIBUTORS = 2
QUERIERS_PER = 2
KILLED_QUERIERS = 2
KILL_AT_S = 0.4
RECOVERED_QPS_FLOOR_RATIO = 0.2     # recovered >= 20% of clean q/s
MIN_CPUS_FOR_RATIO = 4


def _trace():
    return fixed_interval_trace(interval=0.002, duration=1.2,
                                client_count=16)


def _replay(kill: bool):
    trace = _trace()
    with UdpEchoServerProcess() as echo:
        config = DistributedConfig(
            distributors=DISTRIBUTORS,
            queriers_per_distributor=QUERIERS_PER,
            settle_time=0.5, recovery=RecoveryConfig())
        topology = ProcessTopology((echo.address, echo.port), config)
        if kill:
            def assassin():
                time.sleep(KILL_AT_S)
                for handle in (topology.querier_handles[0],
                               topology.querier_handles[2]):
                    if handle.pid is not None:
                        os.kill(handle.pid, signal.SIGKILL)
            threading.Thread(target=assassin, daemon=True).start()
        started = time.monotonic()
        result = topology.replay(trace)
        wall = time.monotonic() - started
    return trace, result, wall


def _facts(result):
    """Per-query facts that must survive a crash-and-respawn run."""
    return sorted((q.index, q.qname, q.source, q.protocol)
                  for q in result.sent)


def _sweep():
    out = {}
    for mode, kill in (("clean", False), ("killed", True)):
        trace, result, wall = _replay(kill)
        out[mode] = {"trace": trace, "result": result, "wall": wall,
                     "qps": len(result.sent) / max(wall, 1e-9)}
    return out


def test_crash_recovery_conserves_and_stays_fast(benchmark,
                                                 bench_json_record):
    runs = run_once(benchmark, _sweep)
    clean, killed = runs["clean"], runs["killed"]
    expected = len(clean["trace"].records)
    cpus = os.cpu_count() or 1
    ratio = killed["qps"] / max(clean["qps"], 1e-9)
    skip_reason = (None if cpus >= MIN_CPUS_FOR_RATIO else
                   f"host has {cpus} cpu(s) < {MIN_CPUS_FOR_RATIO}: "
                   f"qps-ratio assertion not run")

    bench_json_record(
        "crash_recovery",
        cpu_count=cpus,
        skip_reason=skip_reason,
        query_count=expected,
        distributors=DISTRIBUTORS,
        queriers_per_distributor=QUERIERS_PER,
        killed_queriers=KILLED_QUERIERS,
        clean_qps=clean["qps"],
        recovered_qps=killed["qps"],
        recovered_ratio=ratio,
        recovered_ratio_floor=RECOVERED_QPS_FLOOR_RATIO,
        ratio_asserted=cpus >= MIN_CPUS_FOR_RATIO,
        clean_wall_seconds=clean["wall"],
        killed_wall_seconds=killed["wall"],
        respawns=killed["result"].respawns,
        redelivered_records=killed["result"].redelivered_records,
        duplicate_merged=killed["result"].duplicate_merged,
    )
    print(f"\nclean:  {clean['qps']:>8,.0f} q/s "
          f"({clean['wall']:.2f}s wall)")
    print(f"killed: {killed['qps']:>8,.0f} q/s "
          f"({killed['wall']:.2f}s wall, "
          f"{killed['result'].respawns} respawns, "
          f"{killed['result'].redelivered_records} redelivered)")

    # Conservation holds on any host, loaded or not.
    for mode, run in runs.items():
        assert conservation_violations(run["result"], expected) == [], mode
    assert killed["result"].respawns == KILLED_QUERIERS
    # Crash-and-respawn reproduces the clean run's per-query facts.
    assert _facts(killed["result"]) == _facts(clean["result"])
    answered = sum(1 for q in killed["result"].sent
                   if q.answered_at is not None)
    assert answered == expected
    if cpus >= MIN_CPUS_FOR_RATIO:
        assert ratio >= RECOVERED_QPS_FLOOR_RATIO, (
            f"recovery cost blew up: killed run at {ratio:.2f}x of "
            f"clean q/s on {cpus} cpus")
