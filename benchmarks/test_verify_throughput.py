"""Throughput of the verification harness itself.

The fuzz campaign and the explorer sweep run on every CI push with a
fixed wall-clock budget, so their own speed bounds how much adversarial
coverage a budget buys.  This benchmark records wire-decode fuzz
executions/sec and explorer states/sec into ``BENCH_verify.json``
(``--bench-json``, see conftest) so future PRs can see coverage-per-
second drift, and gates floors loose enough for a shared CI runner.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once

from repro.verify import explore_all, run_fuzz

FUZZ_EXAMPLES = 1500


def _fuzz_wire_decode():
    started = time.perf_counter()
    report = run_fuzz(seed=3, targets=["wire-decode"],
                      examples=FUZZ_EXAMPLES)
    wall = time.perf_counter() - started
    assert not report.crashes
    (target,) = report.targets
    assert target.examples == FUZZ_EXAMPLES
    return {"wall_s": wall, "examples_per_s": FUZZ_EXAMPLES / wall}


def _explore_sweep():
    started = time.perf_counter()
    results = explore_all()
    wall = time.perf_counter() - started
    states = sum(r.states for r in results.values())
    paths = sum(r.paths for r in results.values())
    assert all(r.exhausted and r.ok for r in results.values()), \
        {name: r.summary() for name, r in results.items()}
    return {"wall_s": wall, "scenarios": len(results), "states": states,
            "paths": paths, "states_per_s": states / wall}


@pytest.mark.benchmark
def test_fuzz_executions_per_second(benchmark, bench_json_record):
    facts = run_once(benchmark, _fuzz_wire_decode)
    print(f"\nwire-decode fuzz: {facts['examples_per_s']:.0f} "
          f"executions/s over {FUZZ_EXAMPLES} examples")
    bench_json_record(
        "verify_fuzz_wire_decode",
        examples=FUZZ_EXAMPLES,
        wall_s=round(facts["wall_s"], 3),
        examples_per_s=round(facts["examples_per_s"], 1),
    )
    # A 60 s CI budget must buy at least ~tens of thousands of decodes.
    assert facts["examples_per_s"] > 300


@pytest.mark.benchmark
def test_explorer_states_per_second(benchmark, bench_json_record):
    facts = run_once(benchmark, _explore_sweep)
    print(f"\nexplorer sweep: {facts['states']} states across "
          f"{facts['scenarios']} scenarios in {facts['wall_s']:.2f} s")
    bench_json_record(
        "verify_explorer_sweep",
        scenarios=facts["scenarios"],
        states=facts["states"],
        paths=facts["paths"],
        wall_s=round(facts["wall_s"], 3),
        states_per_s=round(facts["states_per_s"], 1),
    )
    # The canned sweep is a CI gate; it must stay interactive.
    assert facts["wall_s"] < 30.0
