"""Overload benchmark: legitimate replay through a 10x reflection flood.

The acceptance bar for the overload-control subsystem: a server with a
finite capacity model (admission queue + service rate) collapses for
legitimate clients under a 10x spoofed UDP flood, while the same server
with RRL + early drop enabled suppresses the flood per-(subnet, qname)
state and keeps legitimate completion >= 95 %.  Both runs land in
``BENCH_overload.json`` so the defended/undefended gap is tracked.

The flood here is *reflection-shaped* (one victim /24, a small pool of
amplification qnames) — the workload RRL was designed for.  A fully
randomized flood (unique source and qname per query, the ``ldplayer
dos`` default) defeats RRL by construction; that honest limit is
documented in EXPERIMENTS.md rather than asserted away here.
"""

import pytest

from conftest import run_once

from repro.experiments.dos_attack import SHED_COUNTERS, udp_attack_trace
from repro.experiments.fig6_timing import wildcard_example_zone
from repro.experiments.topology import build_evaluation_topology
from repro.netsim import IpPacket, UdpSegment
from repro.replay import ReplayConfig, SimReplayEngine
from repro.server import (AuthoritativeServer, HostedDnsServer,
                          OverloadConfig, RrlConfig)
from repro.trace import QueryMutator, make_root_zone, retarget, \
    table1_synthetic

pytestmark = pytest.mark.benchmark

LEGIT_RATE = 10.0        # syn-1: one query per 0.1 s
FLOOD_MULTIPLIER = 10.0
DURATION = 40.0


def run_flood(defended, duration=DURATION, seed=7):
    """One run: syn-1 legitimate replay + 10x reflection flood.

    Both runs share the capacity model (drop-oldest queue of 40 drained
    at 40 q/s — 4x the legitimate rate, 0.36x the total offered rate);
    only the defended run adds RRL.  The collapse is therefore the
    *finite server's* behaviour, not an artificial handicap.
    """
    trace = table1_synthetic("syn-1", duration=duration)
    testbed = build_evaluation_topology()
    rrl = RrlConfig(responses_per_second=2.0, window=2.0, slip=2) \
        if defended else None
    server = HostedDnsServer(
        testbed.server_host,
        AuthoritativeServer.single_view(
            [wildcard_example_zone(), make_root_zone(30)]),
        overload=OverloadConfig(queue_limit=40, queue_policy="drop-oldest",
                                service_rate=40.0, rrl=rrl))

    engine = SimReplayEngine(testbed.network, ReplayConfig())
    mutated = QueryMutator([retarget(testbed.server_address)]).apply(trace)

    attacker = testbed.network.add_host("attacker", "10.66.6.6")
    flood = udp_attack_trace(
        LEGIT_RATE * FLOOD_MULTIPLIER, duration, testbed.server_address,
        seed=seed, spoof_subnet="198.51.100",
        qname_pool=[f"amp{i}.example.com." for i in range(4)])
    start = testbed.loop.now
    for record in flood:
        packet = IpPacket(
            record.src, record.dst,
            UdpSegment(record.sport, record.dport, record.wire),
        ).with_checksum()
        # Engine start_delay is 0.5 s; align the flood with the replay.
        testbed.loop.call_at(start + 0.5 + record.timestamp,
                             attacker.send_packet, packet)

    result = engine.replay(mutated, extra_time=10.0)
    snapshot = server.perf.snapshot()
    shed = {name: int(snapshot[name]) for name in SHED_COUNTERS
            if snapshot.get(name)}
    return trace, result, shed


def p99(values):
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def test_rrl_keeps_legit_traffic_alive(benchmark, bench_json_record):
    trace, defended_result, defended_shed = run_once(
        benchmark, run_flood, True)
    _, baseline_result, baseline_shed = run_flood(False)

    defended = defended_result.answered_fraction()
    baseline = baseline_result.answered_fraction()
    defended_p99 = p99(defended_result.latencies())
    baseline_p99 = p99(baseline_result.latencies())
    print()
    print(f"legit answered: defended {defended:.3f} "
          f"vs baseline {baseline:.3f}  "
          f"(p99 {defended_p99 * 1e3:.1f} vs {baseline_p99 * 1e3:.1f} ms)")
    print(f"defended shed: {defended_shed}")
    print(f"baseline shed: {baseline_shed}")

    bench_json_record(
        "overload_flood",
        legit_queries=len(trace.records),
        flood_multiplier=FLOOD_MULTIPLIER,
        defended_legit_answered=defended,
        baseline_legit_answered=baseline,
        defended_legit_p99_ms=defended_p99 * 1e3,
        baseline_legit_p99_ms=baseline_p99 * 1e3,
        defended_shed_counts=defended_shed,
        baseline_shed_counts=baseline_shed,
    )

    # The defended server keeps legitimate clients alive...
    assert defended >= 0.95
    # ...while the same capacity without RRL measurably collapses.
    assert baseline <= defended - 0.25
    # The defense actually fired: the flood was shed pre-queue, not
    # merely outcompeted.
    assert defended_shed.get("rrl.early_drops", 0) > 0
    assert defended_shed.get("rrl.dropped", 0) > 0
    # The undefended queue churned instead.
    assert baseline_shed.get("overload.dropped_oldest", 0) > 0
