"""Figure 7: inter-arrival CDFs, original vs replayed."""

from conftest import run_once

from repro.experiments import fig7_interarrival


def test_fig7_interarrival_cdfs(benchmark, bench_scale):
    output = run_once(benchmark, fig7_interarrival.run, bench_scale,
                      max_queries=8000)
    print()
    print(output.render())
    by_trace = {row[0]: row for row in output.rows}

    # Medians sit on the original for every fixed interval >= 1 ms.
    for label in ("1 s", "0.1 s", "0.01 s", "0.001 s"):
        original, replayed = by_trace[label][1], by_trace[label][2]
        assert abs(replayed - original) < max(0.2 * original, 0.5)

    # Real-world (B-Root) inter-arrivals: replayed CDF lies on the
    # original (tiny KS distance), the paper's headline claim.
    assert by_trace["B-Root"][5] < 0.05

    # The sub-millisecond cases show spread (the paper's observation),
    # visible as a larger CDF distance than the varying-interarrival case.
    assert by_trace["0.0001 s"][5] > by_trace["B-Root"][5]
