"""Application benches: DoS study and sharded hierarchy (paper §1/§2.2
applications and stated future work)."""

from conftest import run_once

from repro.experiments import Scale, dos_attack

DOS_SCALE = Scale("dos-bench", rate=60.0, duration=30.0, monitor_period=10.0)


def test_dos_attack_study(benchmark):
    output = run_once(benchmark, dos_attack.run, DOS_SCALE)
    print()
    print(output.render())
    rows = {row[0]: row for row in output.rows}

    baseline = rows["baseline"]
    udp20 = rows["udp-flood x20"]
    syn20 = rows["syn-flood x20"]

    # UDP flood burns CPU (possibly past saturation) without touching
    # the connection table.
    assert udp20[1] == "100 (sat.)" or float(udp20[1]) > \
        float(baseline[1]) * 3
    assert udp20[3] == baseline[3] == 0  # no half-open from UDP

    # SYN flood fills the table and starves legitimate TCP clients.
    assert syn20[3] > 50_000            # half-open population
    assert syn20[4] > 0                 # SYN drops at the table cap
    assert syn20[6] < baseline[6] - 0.1  # legit answered fraction falls


def test_sharded_hierarchy_scales_out(benchmark):
    from repro.dns import DNS_PORT, Message, Name, RRType
    from repro.hierarchy import ShardedHierarchyEmulation
    from repro.netsim import EventLoop, Network
    from repro.trace import RecursiveWorkload, make_hierarchy_zones
    from repro.zonegen import unique_questions

    def run_sharded():
        zones = make_hierarchy_zones(4, 6)
        trace = RecursiveWorkload(duration=30, total_queries=400,
                                  zones=zones).generate()
        loop = EventLoop()
        network = Network(loop)
        emulation = ShardedHierarchyEmulation(network, zones, shards=4)
        stub = network.add_host("stub", "10.80.0.1")
        results = {}

        def callback_for(key):
            def callback(_s, wire, _a, _p):
                results[key] = Message.from_wire(wire).rcode.name
            return callback

        questions = unique_questions(trace)[:60]
        for index, (qname, qtype) in enumerate(questions):
            sock = stub.bind_udp("10.80.0.1", 0,
                                 callback_for((qname, qtype)))
            sock.sendto(Message.make_query(qname, qtype,
                                           msg_id=index + 1).to_wire(),
                        emulation.recursive_address, DNS_PORT)
        loop.run(max_time=120)
        return emulation, results, questions

    emulation, results, questions = benchmark.pedantic(
        run_sharded, rounds=1, iterations=1)
    per_shard = emulation.queries_per_shard()
    print(f"\nshards={emulation.shards}, per-shard queries={per_shard}, "
          f"answered={len(results)}/{len(questions)}")
    assert len(results) == len(questions)
    assert all(rcode in ("NOERROR", "NXDOMAIN")
               for rcode in results.values())
    assert all(count > 0 for count in per_shard)  # load spread out
    assert emulation.recursive_proxy.unroutable == 0
