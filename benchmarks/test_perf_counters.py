"""Hot-path micro-benchmark: response-wire cache + codec fast paths.

Replays a Zipf-skewed synthetic trace (the B-Root-like shape where a
small hot set of names dominates the stream) through the simulated
pipeline twice — with the response-wire cache enabled and disabled —
and records wall-clock rates, the cache hit rate, and the perf-counter
snapshot into ``BENCH_hotpath.json`` (see ``--bench-json`` in
conftest).  The assertions gate the PR's acceptance criteria: the
cached fast path must beat the pre-optimization baseline by >= 1.5x and
the Zipf trace must hit the cache > 90% of the time.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once

from repro.experiments.fig6_timing import wildcard_example_zone
from repro.experiments.topology import build_evaluation_topology
from repro.perf import PerfCounters
from repro.replay import ReplayConfig, SimReplayEngine
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.trace import zipf_trace

# Fast-path wall-clock q/s measured on this machine immediately before
# the hot-path pass (20 k-query Zipf replay, same harness as below).
# The acceptance bar is >= 1.5x this figure.
PRE_PR_BASELINE_QPS = 4373.0

# The same measurement after the PR-2 wire cache + codec fast paths
# (committed BENCH_hotpath.json as of PR 5).  The sharded/zero-copy PR
# must double it again from batching + zero-copy alone.
PR5_BASELINE_QPS = 9843.2

QUERY_COUNT = 20000

# Quantize fast-replay send times so same-instant bursts coalesce into
# batched sends (the datagram batch path under measurement).  250 us at
# the 200 k q/s replay rate is ~50 records per window.
BATCH_WINDOW = 2.5e-4


def _replay_zipf(cached: bool):
    """One fast-rate Zipf replay; returns wall-clock + counter facts."""
    testbed = build_evaluation_topology()
    perf = PerfCounters()
    server = AuthoritativeServer.single_view([wildcard_example_zone()])
    if not cached:
        server.wire_cache = None
    server.perf = perf
    HostedDnsServer(testbed.server_host, server, perf=perf)
    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(track_timing=False, fast_replay_rate=200000.0,
                     batch_window=BATCH_WINDOW),
        perf=perf)
    trace = zipf_trace(QUERY_COUNT, server="10.0.0.2")
    started = time.perf_counter()
    result = engine.replay(trace, extra_time=5.0)
    wall = time.perf_counter() - started
    assert len(result) == QUERY_COUNT
    assert result.answered_fraction() == 1.0
    return {
        "wall_s": wall,
        "qps": QUERY_COUNT / wall,
        "cache": (server.wire_cache.counters()
                  if server.wire_cache is not None else None),
        "hit_rate": (server.wire_cache.hit_rate()
                     if server.wire_cache is not None else None),
        "perf": perf.snapshot(),
    }


@pytest.mark.benchmark
def test_hotpath_fast_replay_rate(benchmark, bench_json_record):
    cached = run_once(benchmark, _replay_zipf, True)
    uncached = _replay_zipf(False)

    speedup_vs_baseline = cached["qps"] / PRE_PR_BASELINE_QPS
    speedup_vs_pr5 = cached["qps"] / PR5_BASELINE_QPS
    speedup_vs_uncached = uncached["wall_s"] / cached["wall_s"]
    print()
    print(f"fast path: {cached['qps']:.0f} q/s cached, "
          f"{uncached['qps']:.0f} q/s uncached, "
          f"{PR5_BASELINE_QPS:.0f} q/s PR-5 baseline, "
          f"{PRE_PR_BASELINE_QPS:.0f} q/s pre-cache baseline")
    print(f"cache hit rate: {cached['hit_rate']:.3f}  "
          f"({cached['cache']})")

    bench_json_record(
        "hotpath_zipf_replay",
        queries=QUERY_COUNT,
        batch_window=BATCH_WINDOW,
        fastpath_qps=round(cached["qps"], 1),
        uncached_qps=round(uncached["qps"], 1),
        baseline_qps_pre_pr=PRE_PR_BASELINE_QPS,
        baseline_qps_pr5=PR5_BASELINE_QPS,
        speedup_vs_baseline=round(speedup_vs_baseline, 3),
        speedup_vs_pr5=round(speedup_vs_pr5, 3),
        speedup_vs_uncached=round(speedup_vs_uncached, 3),
        cache_hit_rate=round(cached["hit_rate"], 4),
        cache=cached["cache"],
        perf=cached["perf"],
    )

    # Acceptance criteria for the hot-path pass.
    assert cached["hit_rate"] > 0.90
    assert speedup_vs_baseline >= 1.5
    # This PR's bar: batching + zero-copy double the PR-5 single-core
    # figure on the same workload.
    assert speedup_vs_pr5 >= 2.0
    # The cache alone (codec fast paths held equal) must still pay.
    assert speedup_vs_uncached > 1.2
    # Zero-copy accounting: every cache hit was served as a WireView
    # over the cached buffer, decoding only on misses.
    perf = cached["perf"]
    assert perf["server.zero_copy_hits"] == perf["server.wire_cache_hits"]
    assert perf["hosting.decodes"] == perf["server.wire_cache_misses"]


@pytest.mark.benchmark
def test_hotpath_counters_observe_replay(benchmark, bench_json_record):
    # The perf registry must see the whole pipeline: scheduled queries,
    # loop events, hosting decodes, and cache traffic, with wall-time
    # phases that make events/sec derivable.
    facts = run_once(benchmark, _replay_zipf, True)
    perf = facts["perf"]
    assert perf["replay.queries_scheduled"] == QUERY_COUNT
    # Batched sends/deliveries mean far fewer loop events than queries.
    assert perf["replay.events_processed"] > 0
    assert perf["hosting.queries"] == QUERY_COUNT
    hits = perf["server.wire_cache_hits"]
    misses = perf["server.wire_cache_misses"]
    assert hits + misses == QUERY_COUNT
    # The zero-copy fast path serves hits without Message.from_wire:
    # decodes happen only on misses.
    assert perf["hosting.decodes"] == misses
    assert perf["server.zero_copy_hits"] == hits
    assert perf["replay.run_s"] > 0.0
    assert perf["replay.schedule_s"] > 0.0
    bench_json_record("hotpath_counters", **{
        key: value for key, value in perf.items()
        if not key.endswith("_s")})
