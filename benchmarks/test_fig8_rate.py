"""Figure 8: per-second rate difference between replay and original."""

from conftest import run_once

from repro.experiments import fig8_rate


def test_fig8_query_rate_accuracy(benchmark, bench_scale):
    output = run_once(benchmark, fig8_rate.run, bench_scale, trials=5)
    print()
    print(output.render())
    assert len(output.rows) == 5
    for row in output.rows:
        _trial, seconds, tight, loose, worst = row
        assert seconds >= 30
        # Paper: 95-99 % of seconds within ±0.1 %.  At the sampled rate a
        # single query is >0.1 % of a second's count, so quantization
        # loosens the tight bound; the ±2 % envelope must hold broadly.
        assert tight > 0.5
        assert loose > 0.85
        assert abs(worst) < 0.10
    mean_tight = sum(row[2] for row in output.rows) / len(output.rows)
    assert mean_tight > 0.65
