"""Multi-process replay scale-out benchmark (Fig. 9's deployment claim).

Replays the same saturation burst through the thread topology (one
GIL-bound process) and the multi-process topology, and records the
aggregate q/s of each plus their ratio in ``BENCH_multiproc.json``.

The ≥1.5x speedup assertion needs real cores: on a host with fewer than
four CPUs the process mode pays fork/IPC overhead with no parallelism to
win, so the assertion is gated on ``os.cpu_count()`` — the measured
ratio and the cpu count are recorded unconditionally so the JSON reads
honestly either way.
"""

import os
import time

from conftest import run_once

from repro.experiments.fig9_throughput import _measure_topology

DISTRIBUTORS = 2
QUERIERS_PER = 2
QUERY_COUNT = 3000
SPEEDUP_FLOOR = 1.5
MIN_CPUS_FOR_SPEEDUP = 4


def _sweep():
    measurements = {}
    for topology in ("threads", "processes"):
        started = time.monotonic()
        qps, answered, sent = _measure_topology(
            topology, QUERY_COUNT, DISTRIBUTORS, QUERIERS_PER)
        measurements[topology] = {
            "qps": qps,
            "answered_fraction": answered,
            "queries_sent": sent,
            "wall_seconds": time.monotonic() - started,
        }
    return measurements


def test_multiproc_scaleout(benchmark, bench_json_record):
    measurements = run_once(benchmark, _sweep)
    threads, processes = measurements["threads"], measurements["processes"]
    cpus = os.cpu_count() or 1
    ratio = processes["qps"] / max(threads["qps"], 1e-9)
    skip_reason = (None if cpus >= MIN_CPUS_FOR_SPEEDUP else
                   f"host has {cpus} cpu(s) < {MIN_CPUS_FOR_SPEEDUP}: "
                   f"speedup assertion not run")
    bench_json_record(
        "multiproc_scaleout",
        cpu_count=cpus,
        skip_reason=skip_reason,
        distributors=DISTRIBUTORS,
        queriers_per_distributor=QUERIERS_PER,
        query_count=QUERY_COUNT,
        threads_qps=threads["qps"],
        processes_qps=processes["qps"],
        speedup=ratio,
        speedup_floor=SPEEDUP_FLOOR,
        speedup_asserted=cpus >= MIN_CPUS_FOR_SPEEDUP,
        threads_answered=threads["answered_fraction"],
        processes_answered=processes["answered_fraction"],
    )
    print(f"\nthreads:   {threads['qps']:>10,.0f} q/s "
          f"(answered {threads['answered_fraction']:.3f})")
    print(f"processes: {processes['qps']:>10,.0f} q/s "
          f"(answered {processes['answered_fraction']:.3f})")
    print(f"speedup:   {ratio:.2f}x on {cpus} cpu(s)")

    # Correctness holds regardless of core count.
    for name, row in measurements.items():
        assert row["queries_sent"] == QUERY_COUNT, name
        assert row["answered_fraction"] > 0.9, name
    if cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert ratio >= SPEEDUP_FLOOR, (
            f"process topology only {ratio:.2f}x over threads "
            f"on {cpus} cpus")
