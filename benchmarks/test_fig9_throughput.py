"""Figure 9: single-host fast-replay throughput."""

from conftest import run_once

from repro.experiments import fig9_throughput


def test_fig9_single_host_throughput(benchmark, bench_scale):
    output = run_once(benchmark, fig9_throughput.run, bench_scale,
                      live_duration=2.0, sim_queries=30000)
    print()
    print(output.render())
    rows = {row[0]: row for row in output.rows}

    live = rows["live loopback"]
    # The honest Python-vs-87k-C++ comparison: report, and require the
    # replay path at least to keep up with a sane floor.
    assert live[2] > 5000  # q/s over real sockets
    assert live[1] > 10000  # queries actually sent

    sim = rows["simulated fast-path"]
    # In simulated time the engine sustains its configured fast rate.
    assert sim[2] > 50000
