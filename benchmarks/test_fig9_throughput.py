"""Figure 9: single-host fast-replay throughput."""

from conftest import run_once

from repro.experiments import fig9_throughput


def test_fig9_single_host_throughput(benchmark, bench_scale):
    output = run_once(benchmark, fig9_throughput.run, bench_scale,
                      live_duration=2.0, sim_queries=30000)
    print()
    print(output.render())
    rows = {row[0]: row for row in output.rows}

    live = rows["live loopback"]
    # The honest Python-vs-87k-C++ comparison: report, and require the
    # replay path at least to keep up with a sane floor.
    assert live[2] > 5000  # q/s over real sockets
    assert live[1] > 10000  # queries actually sent

    sim = rows["simulated fast-path"]
    # In simulated time the engine sustains its configured fast rate.
    assert sim[2] > 50000


def test_fig9_fast_replay_leaves_nothing_unanswered():
    # Satellite check: the fast path is lossless too — no query may be
    # silently stranded at drain time.
    from repro.experiments.fig6_timing import wildcard_example_zone
    from repro.experiments.topology import build_evaluation_topology
    from repro.replay import ReplayConfig, SimReplayEngine
    from repro.server import AuthoritativeServer, HostedDnsServer
    from repro.trace import fixed_interval_trace, make_root_zone

    testbed = build_evaluation_topology()
    HostedDnsServer(testbed.server_host,
                    AuthoritativeServer.single_view(
                        [wildcard_example_zone(), make_root_zone(30)]))
    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(track_timing=False, fast_replay_rate=100000.0))
    trace = fixed_interval_trace(0.001, 5.0, name="syn-fast")
    result = engine.replay(trace, extra_time=5.0)
    assert len(result) == len(trace.records)
    assert result.unanswered() == 0
