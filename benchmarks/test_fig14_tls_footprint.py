"""Figure 14: all-TLS server memory and connection footprint."""

from conftest import run_once

from repro.experiments import fig13_14_footprint


def test_fig14_tls_footprint(benchmark, bench_scale_long):
    output = run_once(benchmark, fig13_14_footprint.run, "tls",
                      bench_scale_long, timeouts=(5.0, 20.0, 40.0))
    print()
    print(output.render())
    rows = {row[0]: row for row in output.rows}

    # Paper: ~18 GB at the 20 s timeout — TCP's footprint plus ~30 %
    # of per-session TLS state; connection counts match Fig 13.
    mem_20 = rows[20.0][1]
    assert 11.0 < mem_20 < 26.0, mem_20
    assert rows[20.0][3] > 35_000

    # Monotone growth with timeout.
    memories = [rows[t][1] for t in (5.0, 20.0, 40.0)]
    assert memories == sorted(memories)

    # TLS process memory exceeds the UDP baseline by a wide margin.
    assert rows["original/20"][2] < rows[20.0][2]


def test_fig14_tls_exceeds_tcp_memory(benchmark, bench_scale_long):
    def both():
        tcp = fig13_14_footprint.run("tcp", bench_scale_long,
                                     timeouts=(20.0,),
                                     include_baseline=False)
        tls = fig13_14_footprint.run("tls", bench_scale_long,
                                     timeouts=(20.0,),
                                     include_baseline=False)
        return tcp, tls

    tcp_output, tls_output = benchmark.pedantic(both, rounds=1, iterations=1)
    tcp_mem = tcp_output.rows[0][1]
    tls_mem = tls_output.rows[0][1]
    print(f"\nTCP 20s: {tcp_mem:.1f} GiB, TLS 20s: {tls_mem:.1f} GiB "
          f"(paper: 15 GB vs 18 GB, ~+20-30 %)")
    ratio = tls_mem / tcp_mem
    assert 1.05 < ratio < 1.5, ratio
