#!/usr/bin/env python3
"""Guard the committed benchmark baselines against silent regressions.

CI regenerates ``BENCH_hotpath.json`` / ``BENCH_multiproc.json`` /
``BENCH_recovery.json`` (clean vs crash-recovered replay q/s) on every
run; this script diffs a fresh run against the committed baseline
and fails when any throughput figure fell more than ``--tolerance``
(default 20%) below it — wide enough to ride out shared-runner noise,
tight enough to catch a real hot-path slip.

Comparisons are honest about hardware: a record whose assertion was
self-gated off (``skip_reason`` set — e.g. a scale-out figure measured
on a 1-CPU host) is reported but never compared, and records measured
on hosts with different core counts are declared incomparable rather
than diffed.  Throughput keys are the scalar fields containing ``qps``
(``fastpath_qps``, ``aggregate_qps_concurrent``, ...) minus the
``baseline_*`` constants; higher is better, so only downward moves can
fail the guard.

Usage::

    python benchmarks/check_regression.py \
        --baseline .bench-baseline/BENCH_hotpath.json \
        --candidate BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_TOLERANCE = 0.20


def _is_rate(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def throughput_keys(record: Dict) -> List[str]:
    """Scalar higher-is-better rate fields of one benchmark record."""
    return sorted(
        key for key, value in record.items()
        if "qps" in key
        and not key.startswith("baseline_")
        and _is_rate(value))


def compare(baseline: Dict[str, Dict], candidate: Dict[str, Dict],
            tolerance: float) -> Tuple[List[str], List[str]]:
    """Diff two benchmark documents; returns (report lines, failures)."""
    lines: List[str] = []
    failures: List[str] = []
    for name, base in sorted(baseline.items()):
        fresh = candidate.get(name)
        if fresh is None:
            failures.append(f"{name}: record missing from candidate run")
            continue
        if not isinstance(base, dict) or not isinstance(fresh, dict):
            # Top-level metadata (a version string, a timestamp) is not
            # a measurement record; never diff it.
            lines.append(f"  {name}: not a measurement record, skipped")
            continue
        skip = base.get("skip_reason") or fresh.get("skip_reason")
        if skip:
            lines.append(f"  {name}: not compared ({skip})")
            continue
        base_cpus, fresh_cpus = base.get("cpu_count"), fresh.get("cpu_count")
        if base_cpus != fresh_cpus:
            lines.append(f"  {name}: not comparable — baseline ran on "
                         f"{base_cpus} cpu(s), this run on {fresh_cpus}")
            continue
        for key in throughput_keys(base):
            if not _is_rate(fresh.get(key)):
                # Absent, null (a self-gated measurement recorded its
                # key anyway), or otherwise non-numeric: the figure is
                # gone either way.
                failures.append(f"{name}.{key}: dropped from candidate")
                continue
            floor = base[key] * (1.0 - tolerance)
            verdict = "ok" if fresh[key] >= floor else "REGRESSED"
            line = (f"  {name}.{key}: {fresh[key]:,.1f} vs baseline "
                    f"{base[key]:,.1f} (floor {floor:,.1f}) {verdict}")
            lines.append(line)
            if verdict != "ok":
                failures.append(line.strip())
    for name in sorted(set(candidate) - set(baseline)):
        lines.append(f"  {name}: new record (no baseline yet)")
    return lines, failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed benchmark JSON")
    parser.add_argument("--candidate", required=True, type=Path,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop (default 0.20)")
    options = parser.parse_args(argv)

    try:
        baseline = json.loads(options.baseline.read_text())
        candidate = json.loads(options.candidate.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not isinstance(baseline, dict) or not isinstance(candidate, dict):
        print("error: benchmark documents must be JSON objects",
              file=sys.stderr)
        return 2
    lines, failures = compare(baseline, candidate, options.tolerance)

    print(f"{options.candidate} vs {options.baseline} "
          f"(tolerance {options.tolerance:.0%}):")
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
