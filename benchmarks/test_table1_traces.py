"""Table 1: regenerate the trace inventory."""

from conftest import run_once

from repro.experiments import table1


def test_table1_trace_inventory(benchmark, bench_scale):
    output = run_once(benchmark, table1.run, bench_scale)
    print()
    print(output.render())
    names = {row[0] for row in output.rows}
    assert {"B-Root-16", "B-Root-17a", "B-Root-17b", "Rec-17",
            "syn-0", "syn-1", "syn-2", "syn-3", "syn-4"} <= names
    by_name = {row[0]: row for row in output.rows}
    # Synthetic interarrivals are exact (Table 1's defining column).
    for name, interval in (("syn-0", 1.0), ("syn-1", 0.1), ("syn-2", 0.01),
                           ("syn-3", 0.001), ("syn-4", 0.0001)):
        assert abs(by_name[name][2] - interval) < interval * 0.01
    # Rec-17's ~0.18 s mean interarrival shape.
    assert 0.05 < by_name["Rec-17"][2] < 0.5
