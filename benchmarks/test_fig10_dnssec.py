"""Figure 10: response bandwidth vs ZSK size and DO-bit fraction."""

from conftest import run_once

from repro.experiments import fig10_dnssec


def test_fig10_dnssec_bandwidth(benchmark, bench_scale):
    output = run_once(benchmark, fig10_dnssec.run, bench_scale)
    print()
    print(output.render())
    rows = {(row[0], row[1], row[2]): row[3] for row in output.rows}

    base = rows[("72.3%", 2048, "normal")]
    full_do = rows[("100%", 2048, "normal")]
    small_key = rows[("72.3%", 1024, "normal")]
    rollover = rows[("72.3%", 2048, "rollover")]

    # Paper: +31 % going from 72.3 % to 100 % DO at the 2048-bit ZSK.
    do_increase = full_do / base - 1
    assert 0.12 < do_increase < 0.55, do_increase

    # Paper: +32 % going from 1024- to 2048-bit ZSK.
    key_increase = base / small_key - 1
    assert 0.15 < key_increase < 0.55, key_increase

    # Rollover publishes an extra ZSK: never cheaper than normal.
    assert rollover >= base * 0.999

    # Ordering across the six bars matches the figure.
    assert rows[("100%", 1024, "normal")] > small_key
    assert rows[("100%", 2048, "normal")] > rows[("100%", 1024, "normal")]

    # Future work (§5.1): the 4096-bit ZSK rows extend the sweep; the
    # step up from 2048 should be at least as large as 1024→2048.
    if ("100%", 4096, "normal") in rows:
        assert rows[("100%", 4096, "normal")] > full_do * 1.15
