#!/usr/bin/env python3
"""Study a root server under denial-of-service attack.

One of the paper's motivating questions (§1): "How does [a] current
server operate under the stress of a Denial-of-Service attack?"  This
example replays legitimate all-TCP root traffic while an attacker
floods the server, and compares what each attack shape actually breaks:

* a spoofed **UDP query flood** burns CPU — at 20x the normal rate the
  offered load exceeds the 48-core budget — but leaves connections and
  legitimate clients untouched;
* a **SYN flood** barely uses CPU but fills the connection table with
  half-open entries until legitimate TCP clients' SYNs are dropped.

Run:  python examples/dos_study.py
"""

from repro.experiments import Scale
from repro.experiments.dos_attack import run_attack

SCALE = Scale("example", rate=60.0, duration=30.0, monitor_period=10.0)
TABLE_LIMIT = 150_000


def main() -> None:
    print(f"legitimate workload: all-TCP B-Root-like at {SCALE.rate:.0f} "
          f"q/s (scaled 1/{SCALE.report_factor:.0f}); connection table "
          f"capped at {TABLE_LIMIT:,}\n")
    header = (f"{'scenario':16s} {'CPU %':>8s} {'half-open':>10s} "
              f"{'SYN drops':>11s} {'legit answered':>15s}")
    print(header)
    print("-" * len(header))
    for attack, multiplier in [("none", 0.0), ("udp-flood", 5.0),
                               ("udp-flood", 20.0), ("syn-flood", 5.0),
                               ("syn-flood", 20.0)]:
        result = run_attack(SCALE, attack, multiplier,
                            connection_table_limit=TABLE_LIMIT)
        label = "baseline" if multiplier == 0 else \
            f"{attack} x{multiplier:g}"
        cpu = (f"{result.cpu_percent:.1f}" if result.cpu_percent <= 100
               else ">100")
        print(f"{label:16s} {cpu:>8s} {result.half_open:>10,d} "
              f"{result.syn_drops:>11,d} "
              f"{result.legit_answered * 100:>14.1f}%")

    print("\ntakeaway: the two attacks exhaust different resources — "
          "query floods exhaust CPU, SYN floods exhaust connection "
          "state — so defenses must differ too.")


if __name__ == "__main__":
    main()
