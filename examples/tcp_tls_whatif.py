#!/usr/bin/env python3
"""What if all root DNS traffic used TCP or TLS? (§5.2)

Takes one B-Root-like trace, replays it three ways — as captured
(97 % UDP), mutated to all-TCP, and mutated to all-TLS — and reports the
paper's §5.2 metrics: server memory, connection counts, CPU, and client
latency.  This is the experiment the paper uses to argue an all-TCP DNS
is feasible on commodity hardware.

Run:  python examples/tcp_tls_whatif.py
"""

from repro.experiments import RootRunConfig, Scale, gib, run_root_replay
from repro.trace import quartile_summary

SCALE = Scale("example", rate=80.0, duration=120.0, monitor_period=20.0)


def main() -> None:
    print(f"workload: B-Root-like, {SCALE.rate:.0f} q/s for "
          f"{SCALE.duration:.0f}s (client-sampled 1/"
          f"{SCALE.report_factor:.0f} of the real trace; counts below "
          "are scaled back to full-trace equivalents)\n")

    header = (f"{'protocol':10s} {'mem (GiB)':>10s} {'ESTAB':>8s} "
              f"{'TIME_WAIT':>10s} {'CPU %':>6s} {'median lat':>11s} "
              f"{'p95 lat':>9s}")
    print(header)
    print("-" * len(header))

    for protocol in ("original", "tcp", "tls"):
        output = run_root_replay(RootRunConfig(
            scale=SCALE, protocol=protocol, tcp_timeout=20.0,
            client_rtt=0.020))
        samples = output.steady_samples() or output.monitor.samples
        last = samples[-1]
        latencies = output.result.latencies()
        stats = quartile_summary(latencies)
        print(f"{protocol:10s} {gib(last.memory_total):10.1f} "
              f"{last.established:8d} {last.time_wait:10d} "
              f"{output.cpu_utilization_scaled() * 100:6.1f} "
              f"{stats['median'] * 1e3:9.1f}ms {stats['p95'] * 1e3:7.1f}ms")

    print("\npaper (B-Root-17a, 20s timeout): UDP ~2 GB / TCP ~15 GB / "
          "TLS ~18 GB; CPU ~10 % original, ~5 % TCP, ~9-10 % TLS; "
          "TCP median latency close to UDP thanks to connection reuse")


if __name__ == "__main__":
    main()
