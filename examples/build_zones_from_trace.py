#!/usr/bin/env python3
"""Rebuild the DNS hierarchy from a captured trace (§2.3).

The zone constructor's one-time fetch: take the unique queries of a
recursive trace, resolve them against the (simulated) Internet with a
cold cache, harvest every authoritative response at the recursive's
upstream interface, and reverse the responses into reusable zone files.
The rebuilt zones are then written as standard master files and verified
by replaying the trace's queries against an emulation built on them.

Run:  python examples/build_zones_from_trace.py
"""

import pathlib
import tempfile

from repro.dns import DNS_PORT, Message, Rcode, write_zone
from repro.hierarchy import HierarchyEmulation
from repro.netsim import EventLoop, Network
from repro.trace import RecursiveWorkload, make_hierarchy_zones, summarize
from repro.zonegen import build_zones_from_trace, unique_questions


def main() -> None:
    # The "real Internet" (normally unknown to the experimenter).
    real_zones = make_hierarchy_zones(tld_count=3, slds_per_tld=5)

    # A captured recursive trace (Rec-17-like).
    trace = RecursiveWorkload(duration=60, total_queries=600,
                              zones=real_zones, seed=5).generate()
    print("captured trace:", summarize(trace).row())
    questions = unique_questions(trace)
    print(f"unique (name, type) pairs to fetch: {len(questions)}")

    # One-time fetch + harvest (§2.3).
    library = build_zones_from_trace(trace, real_zones)
    report = library.report
    print(f"\nrebuilt {report.zones_built} zones from "
          f"{report.responses} captured responses "
          f"({report.records_seen} records)")
    print(f"  recovered SOAs: {len(report.soa_recovered)}, "
          f"apex NS sets: {len(report.apex_ns_recovered)}, "
          f"conflicting replies dropped: {report.conflicts_dropped}")

    # The zones are ordinary master files, reusable across experiments.
    out_dir = pathlib.Path(tempfile.mkdtemp(prefix="ldplayer-zones-"))
    for zone in library.zone_list():
        filename = (zone.origin.to_text().rstrip(".") or "root") + ".zone"
        (out_dir / filename).write_text(write_zone(zone))
    print(f"\nwrote {len(library)} zone files to {out_dir}")

    # Verify: an emulation on the REBUILT zones answers the trace.
    loop = EventLoop()
    network = Network(loop)
    emulation = HierarchyEmulation(network, library.zone_list())
    stub = network.add_host("stub", "10.42.0.1")
    results = {}

    def callback_for(key):
        def callback(_s, wire, _a, _p):
            results[key] = Message.from_wire(wire).rcode
        return callback

    for index, (qname, qtype) in enumerate(questions):
        sock = stub.bind_udp("10.42.0.1", 0, callback_for((qname, qtype)))
        sock.sendto(
            Message.make_query(qname, qtype, msg_id=index + 1).to_wire(),
            emulation.recursive_address, DNS_PORT)
    loop.run(max_time=240)

    ok = sum(1 for rcode in results.values() if rcode == Rcode.NOERROR)
    print(f"replayed {len(questions)} unique queries against the rebuilt "
          f"hierarchy: {ok} NOERROR, "
          f"{sum(1 for r in results.values() if r == Rcode.NXDOMAIN)} "
          f"NXDOMAIN, {len(questions) - len(results)} unanswered")


if __name__ == "__main__":
    main()
