#!/usr/bin/env python3
"""Replay a synthetic trace through injected faults and watch recovery.

The paper's testbed is a clean LAN; real replay campaigns are not.  This
study runs a fixed-interval synthetic trace (Table 1) against the
Figure 5 topology while a :class:`FaultPlan` abuses the network:

* 5 % packet loss across the middle of the run,
* a 30 ms delay spike,
* a burst of packet duplication (exercising duplicate-response
  accounting),
* a 2 s server crash/restart.

The queriers carry a :class:`RetryPolicy` (timeout + exponential
backoff), so lost queries are re-sent, connections reopened, and the
run completes anyway.  The printed failure/recovery counters show how.

Run:  python examples/fault_injection_study.py
"""

from repro.experiments.fig6_timing import wildcard_example_zone
from repro.experiments.report import render_failure_counts
from repro.experiments.topology import build_evaluation_topology
from repro.netsim import FaultInjector, FaultPlan, RetryPolicy
from repro.replay import QuerierConfig, ReplayConfig, SimReplayEngine
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.trace import fixed_interval_trace, make_root_zone, summarize


def main() -> None:
    # A syn-trace: one query every 20 ms for 40 s (Table 1 shape).
    trace = fixed_interval_trace(0.02, 40.0, name="syn-faulted", seed=7)
    print("input trace:", summarize(trace).row())

    testbed = build_evaluation_topology()
    HostedDnsServer(testbed.server_host,
                    AuthoritativeServer.single_view(
                        [wildcard_example_zone(), make_root_zone(30)]))

    # The abuse schedule.  Times are sim seconds from run start.
    plan = (FaultPlan()
            .loss_burst(start=5.0, duration=20.0, rate=0.05)
            .delay_spike(start=12.0, duration=5.0, extra_delay=0.03)
            .duplication(start=20.0, duration=5.0, rate=0.2)
            .server_outage(start=30.0, duration=2.0, host="server"))
    injector = FaultInjector(testbed.network, plan, seed=11)
    print(f"installed {len(plan)} fault windows")

    # The recovery budget: 0.5 s first timeout, doubling, 4 re-sends.
    retry = RetryPolicy(udp_timeout=0.5, backoff=2.0, max_timeout=4.0,
                        max_retries=4)
    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(querier=QuerierConfig(retry=retry)))
    result = engine.replay(trace, extra_time=20.0)

    total = len(result)
    answered = total - result.unanswered()
    print(f"\nreplayed {total} queries: {answered} answered "
          f"({100.0 * answered / total:.2f}%), "
          f"{result.unanswered()} unanswered")

    print("\nfailure/recovery counters:")
    print(render_failure_counts(result))

    print("\ninjector counters:")
    for key, value in injector.counters().items():
        print(f"  {key:<22}{value}")


if __name__ == "__main__":
    main()
