#!/usr/bin/env python3
"""Replay a B-Root-like trace and verify replay fidelity (§4).

Generates a scaled root-server workload, replays it with the distributed
query engine (controller → distributors → queriers) against an
authoritative root server, and reports the §4.2 accuracy metrics:
send-time error quartiles (Fig 6), inter-arrival fidelity (Fig 7), and
per-second rate error (Fig 8).

Run:  python examples/replay_root_trace.py
"""

from repro.experiments import build_evaluation_topology
from repro.replay import ReplayConfig, SimReplayEngine, TimerJitterModel
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.trace import (BRootWorkload, QueryMutator, make_root_zone,
                         per_second_rates, quartile_summary, retarget,
                         summarize)


def main() -> None:
    workload = BRootWorkload(duration=30.0, mean_rate=300,
                             client_count=9000, seed=2024)
    trace = workload.generate()
    print("trace:", summarize(trace).row())

    testbed = build_evaluation_topology()
    server = HostedDnsServer(
        testbed.server_host,
        AuthoritativeServer.single_view([make_root_zone(40)]))

    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(client_instances=4, queriers_per_instance=6,
                     jitter=TimerJitterModel(None, seed=7)))
    trace = QueryMutator([retarget(testbed.server_address)]).apply(trace)
    result = engine.replay(trace)

    print(f"\nreplayed {len(result)} queries, "
          f"{result.answered_fraction() * 100:.1f}% answered, "
          f"{engine.total_sockets()} client sockets, "
          f"{engine.open_connections()} open TCP connections")

    errors = result.error_summary(skip_seconds=2.0)
    print("\nFig 6 — send-time error (ms): "
          f"p25={errors['p25'] * 1e3:+.2f} "
          f"median={errors['median'] * 1e3:+.2f} "
          f"p75={errors['p75'] * 1e3:+.2f} "
          f"(paper: quartiles within a few ms)")

    original_gaps = sorted(
        b.timestamp - a.timestamp
        for a, b in zip(trace.records, trace.records[1:]))
    replayed_gaps = sorted(result.interarrivals())
    orig = quartile_summary(original_gaps)
    repl = quartile_summary(replayed_gaps)
    print("Fig 7 — inter-arrival medians (ms): "
          f"original={orig['median'] * 1e3:.2f} "
          f"replayed={repl['median'] * 1e3:.2f}")

    original_rates = dict(per_second_rates(trace))
    replayed_rates = dict(result.per_second_rates())
    diffs = [(replayed_rates.get(second, 0) - rate) / rate
             for second, rate in original_rates.items() if rate]
    within = sum(1 for d in diffs if abs(d) <= 0.001) / len(diffs)
    print(f"Fig 8 — seconds with rate within ±0.1%: {within * 100:.0f}% "
          "(paper: 95-99%)")

    stats = server.engine.stats
    print(f"\nserver saw {stats.queries} queries "
          f"({stats.queries_by_transport}), {stats.referrals} referrals, "
          f"{stats.nxdomain} NXDOMAIN")


if __name__ == "__main__":
    main()
