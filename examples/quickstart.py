#!/usr/bin/env python3
"""Quickstart: emulate a DNS hierarchy on one server and query it.

This walks the core LDplayer idea end to end in ~60 lines:

1. build a small root/TLD/SLD zone hierarchy,
2. deploy the meta-DNS-server emulation — ONE authoritative server
   instance hosting every zone behind split-horizon views, with the
   recursive resolver and the two address-rewriting proxies (§2.4),
3. send stub queries and watch correct answers come back, exactly as if
   each zone lived on its own server.

Run:  python examples/quickstart.py
"""

from repro.dns import DNS_PORT, Message, Name, RRType
from repro.hierarchy import HierarchyEmulation
from repro.netsim import EventLoop, Network
from repro.trace import make_hierarchy_zones


def main() -> None:
    # A hierarchy of 1 root + 4 TLDs + 24 SLD zones.
    zones = make_hierarchy_zones(tld_count=4, slds_per_tld=6)
    print(f"built {len(zones)} zones "
          f"({sum(z.record_count() for z in zones)} records)")

    loop = EventLoop()
    network = Network(loop)
    emulation = HierarchyEmulation(network, zones)
    print(f"meta-DNS-server hosts {emulation.zone_count()} zones behind "
          f"{emulation.view_count()} split-horizon views on ONE host")

    stub = network.add_host("stub", "10.99.0.1")
    answers = []

    def on_reply(_sock, wire, _addr, _port):
        answers.append(Message.from_wire(wire))

    sock = stub.bind_udp("10.99.0.1", 0, on_reply)
    queries = [
        ("host0.domain000.com.", RRType.A),
        ("www.domain001.net.", RRType.A),       # CNAME -> host0
        ("does-not-exist.domain000.com.", RRType.A),
    ]
    for index, (qname, qtype) in enumerate(queries):
        message = Message.make_query(Name.from_text(qname), qtype,
                                     msg_id=index + 1)
        sock.sendto(message.to_wire(), emulation.recursive_address,
                    DNS_PORT)

    loop.run(max_time=30)

    for query, answer in zip(queries, answers):
        print(f"\n--- {query[0]} {query[1].name} -> {answer.rcode.name}")
        for rr in answer.answer:
            print(f"    {rr.to_text()}")

    print(f"\nproxies rewrote "
          f"{emulation.recursive_proxy.stats.packets_rewritten} queries / "
          f"{emulation.authoritative_proxy.stats.packets_rewritten} replies; "
          f"resolver sent {emulation.resolver.stats.upstream_queries} "
          f"upstream queries while walking the emulated hierarchy")


if __name__ == "__main__":
    main()
