#!/usr/bin/env python3
"""Scale out the meta-server and move zones with AXFR.

Two of the paper's stated extensions, demonstrated together:

1. **Sharding** (§2.2/§3 future work): the zone set is partitioned
   across several meta-DNS-server instances; the recursive side's
   partitioning proxy routes each query to the shard hosting the
   emulated nameserver it was addressed to.
2. **Zone transfer** (§2.3 "we can often acquire the zone from its
   manager"): a new secondary pulls a zone over AXFR and serves it.

Run:  python examples/scale_out_and_transfer.py
"""

from repro.dns import DNS_PORT, Message, Name, RRType
from repro.hierarchy import ShardedHierarchyEmulation
from repro.netsim import EventLoop, Network
from repro.server import AuthoritativeServer, HostedDnsServer, axfr_fetch
from repro.trace import make_hierarchy_zones


def main() -> None:
    zones = make_hierarchy_zones(tld_count=4, slds_per_tld=6)
    loop = EventLoop()
    network = Network(loop)

    emulation = ShardedHierarchyEmulation(network, zones, shards=3)
    print(f"{len(zones)} zones partitioned over {emulation.shards} "
          f"meta-server shards; forwarding table has "
          f"{len(emulation.forwarding)} nameserver addresses")

    # Resolve through the sharded hierarchy.
    stub = network.add_host("stub", "10.44.0.1")
    answers = []
    sock = stub.bind_udp("10.44.0.1", 0,
                         lambda s, wire, a, p: answers.append(
                             Message.from_wire(wire)))
    for index, qname in enumerate(("host0.domain000.com.",
                                   "host1.domain002.net.",
                                   "www.domain003.org.")):
        sock.sendto(Message.make_query(Name.from_text(qname), RRType.A,
                                       msg_id=index + 1).to_wire(),
                    emulation.recursive_address, DNS_PORT)
    loop.run(max_time=60)
    for answer in answers:
        question = answer.question[0]
        print(f"  {question.name} -> {answer.rcode.name}, "
              f"{len(answer.answer)} answer records")
    print("per-shard query counts:", emulation.queries_per_shard())

    # Pull one zone from its manager with AXFR and stand up a
    # secondary.  (Not from a meta-server shard: the emulation's
    # authoritative proxy diverts every port-53 response toward the
    # recursive server — exactly as designed — so transfers come from
    # the zone's real primary, as §2.3 describes.)
    target = Name.from_text("domain000.com.")
    zone_to_transfer = next(z for z in zones if z.origin == target)
    manager_host = network.add_host("zone-manager", "10.44.0.100")
    HostedDnsServer(manager_host,
                    AuthoritativeServer.single_view([zone_to_transfer]))

    secondary_host = network.add_host("secondary", "10.44.0.53")
    transferred = []
    axfr_fetch(secondary_host, "10.44.0.100", target, transferred.append)
    loop.run(max_time=loop.now + 10)
    zone = transferred[0]
    print(f"\nAXFR of {target} from its manager: "
          f"{zone.record_count()} records, serial "
          f"{zone.soa.rdatas[0].serial}")

    HostedDnsServer(secondary_host, AuthoritativeServer.single_view([zone]))
    verify = []
    sock2 = stub.bind_udp("10.44.0.1", 0,
                          lambda s, wire, a, p: verify.append(
                              Message.from_wire(wire)))
    sock2.sendto(Message.make_query(Name.from_text("host0.domain000.com."),
                                    RRType.A, msg_id=9).to_wire(),
                 "10.44.0.53", DNS_PORT)
    loop.run(max_time=loop.now + 5)
    print(f"secondary answers: {verify[0].rcode.name} "
          f"({verify[0].answer[0].rdata.to_text()})")


if __name__ == "__main__":
    main()
