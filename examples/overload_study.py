#!/usr/bin/env python3
"""Study graceful degradation under a reflection flood.

A follow-up to ``dos_study.py``: that example shows what an attack
breaks; this one shows what the overload-control subsystem saves.  The
attacker runs a *reflection* flood — every spoofed source sits in one
victim /24 and the queries cycle a small pool of amplifying qnames —
which is exactly the shape response-rate-limiting (RRL) was designed
to catch.  We replay the same legitimate all-TCP workload against an
undefended server and against one with RRL + early-drop enabled, at
increasing flood intensities, and compare:

* **atk answered** — the amplification actually delivered to the
  victim.  RRL should crush this (slipping an occasional TC=1 stub so
  real clients behind the /24 can retry over TCP).
* **CPU** — early-drop sheds recognised flood queries at admission,
  before the expensive resolution path runs.
* **legit answered** — the defense must not harm legitimate clients.

Run:  python examples/overload_study.py
"""

from repro.experiments import Scale
from repro.experiments.dos_attack import run_attack
from repro.server import OverloadConfig, RrlConfig

SCALE = Scale("example", rate=60.0, duration=30.0, monitor_period=10.0)

DEFENSE = OverloadConfig(
    rrl=RrlConfig(responses_per_second=2.0, window=2.0, slip=2))


def shed_summary(counts):
    interesting = {"rrl.early_drops": "early", "rrl.dropped": "rrl",
                   "rrl.slipped": "slip"}
    parts = [f"{short}={counts[name]:,}"
             for name, short in interesting.items() if counts.get(name)]
    return " ".join(parts) if parts else "-"


def main() -> None:
    print(f"legitimate workload: all-TCP B-Root-like at {SCALE.rate:.0f} "
          f"q/s (scaled 1/{SCALE.report_factor:.0f}); attack: reflection "
          f"flood toward one /24\n")
    header = (f"{'scenario':22s} {'CPU %':>7s} {'atk answered':>13s} "
              f"{'legit answered':>15s}  shed (responses suppressed)")
    print(header)
    print("-" * len(header))
    for multiplier in (5.0, 20.0):
        for defended in (False, True):
            result = run_attack(
                SCALE, "udp-flood", multiplier,
                overload=DEFENSE if defended else None,
                attack_profile="reflection")
            label = (f"x{multiplier:g} "
                     + ("defended (RRL)" if defended else "undefended"))
            cpu = (f"{result.cpu_percent:.1f}"
                   if result.cpu_percent <= 100 else ">100")
            attack = (f"{result.attack_answered * 100:.1f}%"
                      if result.attack_answered is not None else "n/a")
            print(f"{label:22s} {cpu:>7s} {attack:>13s} "
                  f"{result.legit_answered * 100:>14.1f}% "
                  f" {shed_summary(result.shed_counts)}")

    print("\ntakeaway: RRL turns the server from an amplifier into a "
          "dead end — suppressed responses never reach the victim and "
          "early-drop refunds the CPU — while legitimate TCP clients "
          "are answered as if there were no attack at all.")


if __name__ == "__main__":
    main()
