#!/usr/bin/env python3
"""What if every query asked for DNSSEC? (§5.1, Figure 10)

Replays one root trace against root zones signed with different ZSK
sizes, first with the 2016 DO-bit mix (72.3 %) and then with the DO bit
forced on every query, and reports response bandwidth.  The paper found
+31 % traffic going to 100 % DO and +32 % going from a 1024- to a
2048-bit ZSK.

Run:  python examples/dnssec_whatif.py
"""

from repro.experiments import Scale
from repro.experiments.fig10_dnssec import CONFIGS, measure

SCALE = Scale("example", rate=80.0, duration=60.0, monitor_period=10.0)


def main() -> None:
    print("replaying the same trace against differently-signed root "
          "zones (the query mutator flips the DO bit per run)...\n")
    points = measure(SCALE)

    print(f"{'DO':>6s} {'ZSK':>6s} {'state':>9s} {'median Mb/s':>12s} "
          f"{'p25':>8s} {'p75':>8s}")
    medians = {}
    for point in points:
        medians[(point.do_label, point.zsk_bits, point.rollover)] = \
            point.mbps["median"]
        print(f"{point.do_label:>6s} {point.zsk_bits:6d} "
              f"{'rollover' if point.rollover else 'normal':>9s} "
              f"{point.mbps['median']:12.1f} {point.mbps['p25']:8.1f} "
              f"{point.mbps['p75']:8.1f}")

    base = medians[("72.3%", 2048, False)]
    full = medians[("100%", 2048, False)]
    small = medians[("72.3%", 1024, False)]
    print(f"\n72.3% -> 100% DO at 2048-bit ZSK: "
          f"{(full / base - 1) * 100:+.0f}%  (paper: +31%)")
    print(f"1024 -> 2048-bit ZSK at 72.3% DO:  "
          f"{(base / small - 1) * 100:+.0f}%  (paper: +32%)")


if __name__ == "__main__":
    main()
