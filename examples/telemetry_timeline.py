#!/usr/bin/env python3
"""Capture a faulty replay as a Chrome-loadable timeline.

Runs the fault-injection study's scenario — a fixed-interval synthetic
trace replayed through loss, delay, duplication, and a server outage —
with the full observability stack attached: per-query lifecycle spans,
latency/size histograms, and the periodic load sampler.  The run writes
three artifacts next to the script:

* ``telemetry_timeline.json`` — Trace Event Format; open it in
  ``chrome://tracing`` or https://ui.perfetto.dev to scrub through
  every query's dispatch → transmit → admission → response (or
  timeout/retry/giveup) on per-actor lanes, with fault verdicts pinned
  to the packets they hit and load counters along the bottom.
* ``telemetry_histograms.json`` — log-bucketed latency/size histograms
  with p50/p90/p99.
* ``telemetry_timeseries.csv`` — the sampler's qps/queue/cache columns,
  one row per tick.

Run:  python examples/telemetry_timeline.py
"""

from pathlib import Path

from repro.experiments.fig6_timing import wildcard_example_zone
from repro.experiments.report import render_telemetry
from repro.experiments.topology import build_evaluation_topology
from repro.netsim import FaultInjector, FaultPlan, RetryPolicy
from repro.replay import QuerierConfig, ReplayConfig, SimReplayEngine
from repro.server import AuthoritativeServer, HostedDnsServer
from repro.telemetry import (Telemetry, TelemetryConfig,
                             write_chrome_trace, write_histograms_json,
                             write_timeseries_csv)
from repro.trace import fixed_interval_trace, make_root_zone

OUT_DIR = Path(__file__).resolve().parent


def main() -> None:
    trace = fixed_interval_trace(0.02, 40.0, name="syn-faulted", seed=7)

    # Everything on: spans for every query, histograms, 2 s sampling.
    telemetry = Telemetry(TelemetryConfig(trace=True, metrics=True,
                                          timeseries_period=2.0))

    testbed = build_evaluation_topology()
    HostedDnsServer(testbed.server_host,
                    AuthoritativeServer.single_view(
                        [wildcard_example_zone(), make_root_zone(30)]),
                    telemetry=telemetry)

    plan = (FaultPlan()
            .loss_burst(start=5.0, duration=20.0, rate=0.05)
            .delay_spike(start=12.0, duration=5.0, extra_delay=0.03)
            .duplication(start=20.0, duration=5.0, rate=0.2)
            .server_outage(start=30.0, duration=2.0, host="server"))
    FaultInjector(testbed.network, plan, seed=11)

    retry = RetryPolicy(udp_timeout=0.5, backoff=2.0, max_timeout=4.0,
                        max_retries=4)
    engine = SimReplayEngine(
        testbed.network,
        ReplayConfig(querier=QuerierConfig(retry=retry)),
        telemetry=telemetry)
    result = engine.replay(trace, extra_time=20.0)
    telemetry.stop()

    answered = len(result) - result.unanswered()
    print(f"replayed {len(result)} queries: {answered} answered, "
          f"{result.retries} retries, {result.gave_up} gave up")
    print(f"span coverage: {telemetry.coverage(result):.3f}")
    print()
    print(render_telemetry(telemetry))

    timeline = OUT_DIR / "telemetry_timeline.json"
    write_chrome_trace(str(timeline), telemetry)
    write_histograms_json(str(OUT_DIR / "telemetry_histograms.json"),
                          telemetry.metrics)
    write_timeseries_csv(str(OUT_DIR / "telemetry_timeseries.csv"),
                         telemetry.sampler)
    print(f"\nwrote {timeline}")
    print("open it in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
